//! End-to-end tests of the serve runtime: fairness, deadlines, fuel,
//! cancellation, shutdown draining, and multi-strategy submission.

use std::time::Duration;

use segstack_baselines::Strategy;
use segstack_serve::{JobError, Request, Runtime, RuntimeConfig};

/// A compute-bound program taking a few thousand procedure calls.
fn fib(n: u32) -> String {
    format!("(let fib ((n {n})) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")
}

const DIVERGE: &str = "(let loop () (loop))";

#[test]
fn round_robin_is_fair_across_equal_jobs() {
    // One worker interleaving four identical jobs: round-robin over
    // engine quanta must grant each job the same number of quanta (the
    // timer counts procedure calls, so this is fully deterministic).
    let rt =
        Runtime::start(RuntimeConfig::with_workers(1).quantum(500).max_inflight(8).queue_depth(16));
    let handles: Vec<_> = (0..4).map(|_| rt.submit(Request::new(fib(18))).unwrap()).collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    for o in &outcomes {
        assert_eq!(o.result.as_deref(), Ok("2584"), "job {} failed", o.id);
        assert!(o.quanta > 1, "job {} should need several quanta", o.id);
    }
    let quanta: Vec<u64> = outcomes.iter().map(|o| o.quanta).collect();
    let spread = quanta.iter().max().unwrap() - quanta.iter().min().unwrap();
    assert!(spread <= 1, "equal jobs diverged by {spread} quanta: {quanta:?}");
    rt.shutdown();
}

#[test]
fn deadline_cancels_divergent_job_mid_computation() {
    let rt = Runtime::start(RuntimeConfig::with_workers(1).quantum(1_000));
    let doomed = rt.submit(Request::new(DIVERGE).deadline(Duration::from_millis(40))).unwrap();
    let outcome = doomed.wait();
    assert_eq!(outcome.result.unwrap_err(), JobError::DeadlineExceeded);
    // The loop never returns, so the only way to stop it is the engine
    // timer preempting it inside the computation.
    assert!(outcome.quanta >= 1, "must have been preempted mid-computation");

    // The worker that hosted the divergent job is still healthy.
    let after = rt.submit(Request::new("(* 6 7)")).unwrap().wait();
    assert_eq!(after.result.unwrap(), "42");

    let snap = rt.shutdown();
    assert_eq!(snap.total().deadline_exceeded, 1);
    assert_eq!(snap.total().completed, 1);
}

#[test]
fn fuel_budget_cancels_divergent_job() {
    let rt = Runtime::start(RuntimeConfig::with_workers(1).quantum(500));
    let doomed = rt.submit(Request::new(DIVERGE).fuel(2_000)).unwrap();
    let outcome = doomed.wait();
    assert_eq!(outcome.result.unwrap_err(), JobError::FuelExhausted);
    assert!(outcome.ticks >= 2_000, "spent {} ticks", outcome.ticks);
    // Worker survives here too.
    assert_eq!(rt.submit(Request::new("(+ 1 1)")).unwrap().wait().result.unwrap(), "2");
    rt.shutdown();
}

#[test]
fn default_fuel_applies_when_request_sets_none() {
    let rt = Runtime::start(RuntimeConfig::with_workers(1).quantum(500).default_fuel(1_500));
    let outcome = rt.submit(Request::new(DIVERGE)).unwrap().wait();
    assert_eq!(outcome.result.unwrap_err(), JobError::FuelExhausted);
    rt.shutdown();
}

#[test]
fn handle_cancel_stops_job_at_next_preemption_point() {
    let rt = Runtime::start(RuntimeConfig::with_workers(1).quantum(500));
    let handle = rt.submit(Request::new(DIVERGE)).unwrap();
    handle.cancel();
    let outcome = handle.wait();
    assert_eq!(outcome.result.unwrap_err(), JobError::Cancelled);
    let snap = rt.shutdown();
    assert_eq!(snap.total().cancelled, 1);
}

#[test]
fn shutdown_drains_queue_before_returning() {
    // More jobs than workers * max_inflight, then shut down immediately:
    // every job must still reach a real outcome (no Lost results).
    let rt = Runtime::start(
        RuntimeConfig::with_workers(2).quantum(2_000).max_inflight(2).queue_depth(64),
    );
    let handles: Vec<_> = (0..24).map(|_| rt.submit(Request::new(fib(12))).unwrap()).collect();
    let snap = rt.shutdown();
    assert_eq!(snap.total().completed, 24);
    assert_eq!(snap.queued, 0);
    for h in handles {
        assert_eq!(h.wait().result.as_deref(), Ok("144"));
    }
}

#[test]
fn errors_are_reported_and_do_not_poison_workers() {
    let rt = Runtime::start(RuntimeConfig::with_workers(1));
    let unread = rt.submit(Request::new("(unclosed")).unwrap().wait();
    assert!(matches!(unread.result, Err(JobError::Eval(_))), "{:?}", unread.result);
    let unbound = rt.submit(Request::new("(no-such-procedure 1)")).unwrap().wait();
    assert!(matches!(unbound.result, Err(JobError::Eval(_))), "{:?}", unbound.result);
    let ok = rt.submit(Request::new("(+ 2 3)")).unwrap().wait();
    assert_eq!(ok.result.unwrap(), "5");
    let snap = rt.shutdown();
    assert_eq!(snap.total().eval_errors, 2);
    assert_eq!(snap.total().completed, 1);
}

#[test]
fn every_strategy_serves_jobs() {
    let rt = Runtime::start(RuntimeConfig::with_workers(2));
    let handles: Vec<_> = Strategy::ALL
        .iter()
        .map(|&s| rt.submit(Request::new(fib(10)).strategy(s)).unwrap())
        .collect();
    for h in handles {
        assert_eq!(h.wait().result.as_deref(), Ok("55"));
    }
    rt.shutdown();
}

#[test]
fn call_cc_heavy_jobs_survive_preemption() {
    // A generator-driven sum: captures continuations on every yield, so
    // preemption interleaves with first-class continuation use.
    let program = "(begin \
       (define (gen-sum n) \
         (let ((g (make-generator (lambda (yield) \
                    (let loop ((i 0)) (when (< i n) (yield i) (loop (+ i 1)))))))) \
           (let loop ((acc 0)) \
             (let ((v (g))) \
               (if (eq? v 'done) acc (loop (+ acc v))))))) \
       (gen-sum 200))";
    let rt = Runtime::start(RuntimeConfig::with_workers(1).quantum(300));
    let outcome = rt.submit(Request::new(program)).unwrap().wait();
    assert_eq!(outcome.result.as_deref(), Ok("19900"));
    assert!(outcome.quanta > 1, "should span quanta, got {}", outcome.quanta);
    rt.shutdown();
}

#[test]
fn try_submit_reports_queue_full_and_hands_request_back() {
    // Stall the single worker with a divergent (but cancellable) job so
    // the tiny queue fills up behind it.
    let rt = Runtime::start(
        RuntimeConfig::with_workers(1).quantum(100_000).max_inflight(1).queue_depth(1),
    );
    let blocker = rt.submit(Request::new(DIVERGE)).unwrap();
    // Give the worker time to claim the blocker, then fill the queue.
    let filler = loop {
        match rt.try_submit(Request::new("(+ 1 2)")) {
            Ok(h) if rt.metrics().queued == 1 => break h,
            Ok(h) => {
                // Worker claimed it before the queue registered as full;
                // wait it out and try again.
                let _ = h.wait();
            }
            // The worker may not have claimed the blocker yet, leaving
            // the depth-1 queue momentarily full; give it a beat.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    };
    let bounced = rt.try_submit(Request::new("(+ 3 4)"));
    match bounced {
        Err(segstack_serve::SubmitError::QueueFull(req)) => {
            assert_eq!(req.program, "(+ 3 4)");
        }
        Err(other) => panic!("expected QueueFull, got {other}"),
        Ok(_) => panic!("expected QueueFull, got a handle"),
    }
    blocker.cancel();
    assert_eq!(filler.wait().result.unwrap(), "3");
    rt.shutdown();
}

#[test]
fn drop_aborts_unbounded_divergent_jobs() {
    // Dropping the runtime (no graceful shutdown) must not hang even
    // though the in-flight job would never finish on its own.
    let rt = Runtime::start(RuntimeConfig::with_workers(1).quantum(1_000));
    let doomed = rt.submit(Request::new(DIVERGE)).unwrap();
    // Let the worker actually start the job before tearing down.
    while rt.metrics().total().admitted == 0 {
        std::thread::yield_now();
    }
    drop(rt);
    assert_eq!(doomed.wait().result.unwrap_err(), JobError::Cancelled);
}

#[test]
fn snapshot_json_is_well_formed_and_complete() {
    let rt = Runtime::start(RuntimeConfig::with_workers(2));
    for _ in 0..4 {
        rt.submit(Request::new(fib(10))).unwrap().wait();
    }
    let snap = rt.shutdown();
    let json = snap.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"total\":"));
    assert_eq!(json.matches("\"admitted\":").count(), 3, "{json}");
    assert_eq!(snap.total().completed, 4);
}

#[test]
fn traced_runtime_exports_a_valid_chrome_timeline() {
    use segstack_core::trace::{chrome_trace_json, flame_summary, validate_chrome_trace};

    let rt =
        Runtime::start(RuntimeConfig::with_workers(2).quantum(500).max_inflight(4).tracing(true));
    let handles: Vec<_> = (0..6)
        .map(|i| {
            // A mix of plain compute and continuation-heavy work so the
            // trace carries capture/reinstate events inside quanta.
            let program = if i % 2 == 0 {
                fib(16)
            } else {
                "(let loop ((n 200) (acc 0))
                   (if (= n 0) acc
                       (loop (- n 1) (+ acc (call/cc (lambda (k) (k 1)))))))"
                    .to_string()
            };
            rt.submit(Request::new(program)).unwrap()
        })
        .collect();
    for h in handles {
        assert!(h.wait().result.is_ok());
    }
    let (snapshot, traces) = rt.shutdown_traced();

    // Service counters and histograms reflect the run.
    let total = snapshot.total();
    assert_eq!(total.completed, 6);
    assert_eq!(total.latency.count(), 6, "one latency sample per job");
    assert_eq!(total.quantum_nanos.count(), total.quanta, "one sample per quantum");

    // Every worker that ran drained exactly one trace; the export is a
    // valid, properly nested Chrome trace document.
    assert!(!traces.is_empty() && traces.len() <= 2);
    let doc = chrome_trace_json(&traces);
    let stats = validate_chrome_trace(&doc).expect("serve trace must validate");
    assert_eq!(stats.tracks, traces.len());
    assert!(stats.spans >= total.quanta as usize, "every quantum is a span");
    assert_eq!(stats.async_spans, 6, "every job opens and closes an async span");
    assert!(doc.contains("\"name\":\"quantum\""), "{doc:.300}");
    assert!(doc.contains("\"queue_depth\""));

    // The flame summary names the worker tracks.
    let flame = flame_summary(&traces);
    assert!(flame.contains("worker-"), "{flame}");
}

#[test]
fn untraced_runtime_returns_no_traces() {
    let rt = Runtime::start(RuntimeConfig::with_workers(1));
    rt.submit(Request::new(fib(10))).unwrap().wait();
    let (snapshot, traces) = rt.shutdown_traced();
    assert_eq!(snapshot.total().completed, 1);
    assert!(traces.is_empty());
}
