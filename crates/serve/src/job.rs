//! Requests, job outcomes, and the join handle returned by `submit`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use segstack_baselines::Strategy;

/// One unit of work: a Scheme program plus its service contract.
#[derive(Clone, Debug)]
pub struct Request {
    /// The program source (one or more top-level forms).
    pub program: String,
    /// Control-stack strategy the program runs on.
    pub strategy: Strategy,
    /// Cap on timer ticks (procedure calls) across all quanta; `None`
    /// falls back to the runtime's default fuel cap.
    pub fuel: Option<u64>,
    /// Wall-clock budget from submission; the job is cancelled at the
    /// first preemption point past the deadline.
    pub deadline: Option<Duration>,
}

impl Request {
    /// A request with the default strategy (segmented) and no limits
    /// beyond the runtime's defaults.
    pub fn new(program: impl Into<String>) -> Self {
        Request {
            program: program.into(),
            strategy: Strategy::Segmented,
            fuel: None,
            deadline: None,
        }
    }

    /// Selects the control-stack strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Caps total timer ticks for the job.
    pub fn fuel(mut self, ticks: u64) -> Self {
        self.fuel = Some(ticks);
        self
    }

    /// Sets the wall-clock deadline, measured from submission.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Why a job did not produce a value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The handle's `cancel` was called before the job finished.
    Cancelled,
    /// The wall-clock deadline passed; the job was preempted
    /// mid-computation and discarded.
    DeadlineExceeded,
    /// The tick budget ran out.
    FuelExhausted,
    /// The program raised a runtime/compile error.
    Eval(String),
    /// The runtime was torn down before the job produced an outcome.
    Lost,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "cancelled"),
            JobError::DeadlineExceeded => write!(f, "deadline exceeded"),
            JobError::FuelExhausted => write!(f, "fuel exhausted"),
            JobError::Eval(e) => write!(f, "evaluation error: {e}"),
            JobError::Lost => write!(f, "runtime shut down before completion"),
        }
    }
}

/// What happened to a finished job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's id (as returned by the handle).
    pub id: u64,
    /// The printed result value, or the failure.
    pub result: Result<String, JobError>,
    /// Quanta the job was granted.
    pub quanta: u64,
    /// Timer ticks (procedure calls) the job consumed.
    pub ticks: u64,
    /// Wall-clock time from submission to outcome.
    pub latency: Duration,
}

/// State shared between a handle and the worker running the job.
#[derive(Debug, Default)]
pub(crate) struct JobFlags {
    cancelled: AtomicBool,
}

impl JobFlags {
    pub(crate) fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

/// The scheduler-side record of a submitted job.
pub(crate) struct JobSpec {
    pub id: u64,
    pub program: String,
    pub strategy: Strategy,
    /// Remaining tick budget (`None` = unlimited).
    pub fuel: Option<u64>,
    /// Absolute deadline (`None` = none).
    pub deadline: Option<Instant>,
    pub submitted: Instant,
    pub flags: Arc<JobFlags>,
    pub outcome_tx: SyncSender<JobOutcome>,
}

/// Await, poll, or cancel one submitted job.
pub struct JoinHandle {
    pub(crate) id: u64,
    pub(crate) flags: Arc<JobFlags>,
    pub(crate) outcome_rx: Receiver<JobOutcome>,
}

impl JoinHandle {
    /// The job's id (unique within its runtime).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. The worker honours it at the next
    /// preemption point; the outcome will be [`JobError::Cancelled`]
    /// unless the job finished first.
    pub fn cancel(&self) {
        self.flags.cancel();
    }

    /// Blocks until the job's outcome arrives.
    pub fn wait(self) -> JobOutcome {
        let id = self.id;
        self.outcome_rx.recv().unwrap_or_else(|_| lost(id))
    }

    /// Blocks up to `timeout`; `None` if the outcome has not arrived yet
    /// (the handle remains usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        match self.outcome_rx.recv_timeout(timeout) {
            Ok(outcome) => Some(outcome),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(lost(self.id)),
        }
    }

    /// Non-blocking poll for the outcome.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.wait_timeout(Duration::ZERO)
    }
}

fn lost(id: u64) -> JobOutcome {
    JobOutcome { id, result: Err(JobError::Lost), quanta: 0, ticks: 0, latency: Duration::ZERO }
}
