//! Per-worker service counters, aggregated into a runtime-wide snapshot.
//!
//! Each worker owns a [`WorkerMetrics`] record behind its own mutex
//! (shared-nothing in the hot path: a worker only ever touches its own).
//! A snapshot merges them — service counters added field-wise, the
//! engines' cost-model counters merged losslessly via
//! [`Metrics::merge`] — and renders as a table or a JSON document.

use std::fmt;
use std::time::Duration;

use segstack_core::Metrics;

/// Service counters for one worker (or, merged, the whole runtime).
#[derive(Clone, Debug, Default)]
pub struct WorkerMetrics {
    /// Jobs admitted from the shared queue.
    pub admitted: u64,
    /// Jobs that produced a value.
    pub completed: u64,
    /// Jobs that raised an evaluation error.
    pub eval_errors: u64,
    /// Jobs cancelled via their handle.
    pub cancelled: u64,
    /// Jobs cancelled for missing their deadline.
    pub deadline_exceeded: u64,
    /// Jobs cancelled for exhausting their tick budget.
    pub fuel_exhausted: u64,
    /// Quanta granted across all jobs.
    pub quanta: u64,
    /// Timer ticks (procedure calls) consumed across all jobs.
    pub ticks: u64,
    /// Nanoseconds spent inside job quanta (excludes queue idle time).
    pub busy_nanos: u64,
    /// Control-stack cost counters from this worker's engines.
    pub core: Metrics,
}

impl WorkerMetrics {
    /// Jobs that reached *any* outcome.
    pub fn finished(&self) -> u64 {
        self.completed
            + self.eval_errors
            + self.cancelled
            + self.deadline_exceeded
            + self.fuel_exhausted
    }

    /// Field-wise merge of another record into this one.
    pub fn merge(&mut self, other: &WorkerMetrics) {
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.eval_errors += other.eval_errors;
        self.cancelled += other.cancelled;
        self.deadline_exceeded += other.deadline_exceeded;
        self.fuel_exhausted += other.fuel_exhausted;
        self.quanta += other.quanta;
        self.ticks += other.ticks;
        self.busy_nanos += other.busy_nanos;
        self.core.merge(&other.core);
    }

    /// A single-line JSON object for this record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"admitted\":{},\"completed\":{},\"eval_errors\":{},\"cancelled\":{},\
             \"deadline_exceeded\":{},\"fuel_exhausted\":{},\"quanta\":{},\"ticks\":{},\
             \"busy_nanos\":{},\"core\":{}}}",
            self.admitted,
            self.completed,
            self.eval_errors,
            self.cancelled,
            self.deadline_exceeded,
            self.fuel_exhausted,
            self.quanta,
            self.ticks,
            self.busy_nanos,
            self.core.to_json()
        )
    }
}

impl fmt::Display for WorkerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted={} completed={} errors={} cancelled={} deadline={} fuel={} \
             quanta={} ticks={} busy={:?}",
            self.admitted,
            self.completed,
            self.eval_errors,
            self.cancelled,
            self.deadline_exceeded,
            self.fuel_exhausted,
            self.quanta,
            self.ticks,
            Duration::from_nanos(self.busy_nanos),
        )
    }
}

/// A point-in-time view of the whole runtime.
#[derive(Clone, Debug)]
pub struct RuntimeSnapshot {
    /// One record per worker, in worker-index order.
    pub workers: Vec<WorkerMetrics>,
    /// Jobs currently waiting in the shared queue.
    pub queued: usize,
}

impl RuntimeSnapshot {
    /// All worker records merged into one.
    pub fn total(&self) -> WorkerMetrics {
        let mut total = WorkerMetrics::default();
        for w in &self.workers {
            total.merge(w);
        }
        total
    }

    /// A JSON document: the merged totals plus each worker's record.
    pub fn to_json(&self) -> String {
        let workers: Vec<String> = self.workers.iter().map(WorkerMetrics::to_json).collect();
        format!(
            "{{\"queued\":{},\"total\":{},\"workers\":[{}]}}",
            self.queued,
            self.total().to_json(),
            workers.join(",")
        )
    }
}

impl fmt::Display for RuntimeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queued: {}", self.queued)?;
        writeln!(f, "total:  {}", self.total())?;
        for (i, w) in self.workers.iter().enumerate() {
            writeln!(f, "w{i}:     {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_service_and_core_counters() {
        let mut a = WorkerMetrics { completed: 2, ticks: 100, ..Default::default() };
        a.core.captures = 5;
        let mut b = WorkerMetrics { completed: 3, cancelled: 1, ..Default::default() };
        b.core.captures = 7;
        a.merge(&b);
        assert_eq!(a.completed, 5);
        assert_eq!(a.cancelled, 1);
        assert_eq!(a.ticks, 100);
        assert_eq!(a.core.captures, 12);
        assert_eq!(a.finished(), 6);
    }

    #[test]
    fn snapshot_json_embeds_every_worker() {
        let snap = RuntimeSnapshot {
            workers: vec![
                WorkerMetrics { completed: 1, ..Default::default() },
                WorkerMetrics { completed: 2, ..Default::default() },
            ],
            queued: 3,
        };
        let json = snap.to_json();
        assert!(json.contains("\"queued\":3"));
        assert!(json.contains("\"completed\":3"), "totals merged: {json}");
        assert_eq!(json.matches("\"core\":").count(), 3, "{json}");
    }
}
