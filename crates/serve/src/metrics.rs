//! Per-worker service counters, aggregated into a runtime-wide snapshot.
//!
//! Each worker owns a [`WorkerMetrics`] record behind its own mutex
//! (shared-nothing in the hot path: a worker only ever touches its own).
//! A snapshot merges them — service counters added field-wise, the
//! engines' cost-model counters merged losslessly via
//! [`Metrics::merge`] — and renders as a table or a JSON document.

use std::fmt;
use std::time::Duration;

use segstack_core::trace::Histogram;
use segstack_core::Metrics;

/// Service counters for one worker (or, merged, the whole runtime).
#[derive(Clone, Debug, Default)]
pub struct WorkerMetrics {
    /// Jobs admitted from the shared queue.
    pub admitted: u64,
    /// Jobs that produced a value.
    pub completed: u64,
    /// Jobs that raised an evaluation error.
    pub eval_errors: u64,
    /// Jobs cancelled via their handle.
    pub cancelled: u64,
    /// Jobs cancelled for missing their deadline.
    pub deadline_exceeded: u64,
    /// Jobs cancelled for exhausting their tick budget.
    pub fuel_exhausted: u64,
    /// Quanta granted across all jobs.
    pub quanta: u64,
    /// Timer ticks (procedure calls) consumed across all jobs.
    pub ticks: u64,
    /// Nanoseconds spent inside job quanta (excludes queue idle time).
    pub busy_nanos: u64,
    /// End-to-end job latency in nanoseconds (submit → outcome), one
    /// sample per finished job, any outcome.
    pub latency: Histogram,
    /// Wall-clock nanoseconds per granted quantum.
    pub quantum_nanos: Histogram,
    /// Control-stack cost counters from this worker's engines.
    pub core: Metrics,
}

impl WorkerMetrics {
    /// Jobs that reached *any* outcome.
    pub fn finished(&self) -> u64 {
        self.completed
            + self.eval_errors
            + self.cancelled
            + self.deadline_exceeded
            + self.fuel_exhausted
    }

    /// Field-wise merge of another record into this one. Saturating:
    /// long-lived deployments legitimately approach `u64::MAX` in
    /// `busy_nanos`/`ticks`, and a snapshot must never panic.
    pub fn merge(&mut self, other: &WorkerMetrics) {
        self.admitted = self.admitted.saturating_add(other.admitted);
        self.completed = self.completed.saturating_add(other.completed);
        self.eval_errors = self.eval_errors.saturating_add(other.eval_errors);
        self.cancelled = self.cancelled.saturating_add(other.cancelled);
        self.deadline_exceeded = self.deadline_exceeded.saturating_add(other.deadline_exceeded);
        self.fuel_exhausted = self.fuel_exhausted.saturating_add(other.fuel_exhausted);
        self.quanta = self.quanta.saturating_add(other.quanta);
        self.ticks = self.ticks.saturating_add(other.ticks);
        self.busy_nanos = self.busy_nanos.saturating_add(other.busy_nanos);
        self.latency.merge(&other.latency);
        self.quantum_nanos.merge(&other.quantum_nanos);
        self.core.merge(&other.core);
    }

    /// A single-line JSON object for this record.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"admitted\":{},\"completed\":{},\"eval_errors\":{},\"cancelled\":{},\
             \"deadline_exceeded\":{},\"fuel_exhausted\":{},\"quanta\":{},\"ticks\":{},\
             \"busy_nanos\":{},\"latency_nanos\":{},\"quantum_nanos\":{},\"core\":{}}}",
            self.admitted,
            self.completed,
            self.eval_errors,
            self.cancelled,
            self.deadline_exceeded,
            self.fuel_exhausted,
            self.quanta,
            self.ticks,
            self.busy_nanos,
            hist_json(&self.latency),
            hist_json(&self.quantum_nanos),
            self.core.to_json()
        )
    }
}

/// A histogram readout as a JSON object (counts plus percentiles).
fn hist_json(h: &Histogram) -> String {
    let s = h.summary();
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        s.count, s.p50, s.p90, s.p99, s.max
    )
}

impl fmt::Display for WorkerMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admitted={} completed={} errors={} cancelled={} deadline={} fuel={} \
             quanta={} ticks={} busy={:?} lat_p50={:?} lat_p99={:?}",
            self.admitted,
            self.completed,
            self.eval_errors,
            self.cancelled,
            self.deadline_exceeded,
            self.fuel_exhausted,
            self.quanta,
            self.ticks,
            Duration::from_nanos(self.busy_nanos),
            Duration::from_nanos(self.latency.percentile(0.50)),
            Duration::from_nanos(self.latency.percentile(0.99)),
        )
    }
}

/// A point-in-time view of the whole runtime.
#[derive(Clone, Debug)]
pub struct RuntimeSnapshot {
    /// One record per worker, in worker-index order.
    pub workers: Vec<WorkerMetrics>,
    /// Jobs currently waiting in the shared queue.
    pub queued: usize,
}

impl RuntimeSnapshot {
    /// All worker records merged into one.
    pub fn total(&self) -> WorkerMetrics {
        let mut total = WorkerMetrics::default();
        for w in &self.workers {
            total.merge(w);
        }
        total
    }

    /// A JSON document: the merged totals plus each worker's record.
    pub fn to_json(&self) -> String {
        let workers: Vec<String> = self.workers.iter().map(WorkerMetrics::to_json).collect();
        format!(
            "{{\"queued\":{},\"total\":{},\"workers\":[{}]}}",
            self.queued,
            self.total().to_json(),
            workers.join(",")
        )
    }
}

impl fmt::Display for RuntimeSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "queued: {}", self.queued)?;
        writeln!(f, "total:  {}", self.total())?;
        for (i, w) in self.workers.iter().enumerate() {
            writeln!(f, "w{i}:     {w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_service_and_core_counters() {
        let mut a = WorkerMetrics { completed: 2, ticks: 100, ..Default::default() };
        a.core.captures = 5;
        let mut b = WorkerMetrics { completed: 3, cancelled: 1, ..Default::default() };
        b.core.captures = 7;
        a.merge(&b);
        assert_eq!(a.completed, 5);
        assert_eq!(a.cancelled, 1);
        assert_eq!(a.ticks, 100);
        assert_eq!(a.core.captures, 12);
        assert_eq!(a.finished(), 6);
    }

    #[test]
    fn snapshot_json_embeds_every_worker() {
        let snap = RuntimeSnapshot {
            workers: vec![
                WorkerMetrics { completed: 1, ..Default::default() },
                WorkerMetrics { completed: 2, ..Default::default() },
            ],
            queued: 3,
        };
        let json = snap.to_json();
        assert!(json.contains("\"queued\":3"));
        assert!(json.contains("\"completed\":3"), "totals merged: {json}");
        assert_eq!(json.matches("\"core\":").count(), 3, "{json}");
    }

    #[test]
    fn merge_saturates_near_u64_max() {
        // A long-lived worker's nanosecond and tick counters can sit near
        // the top of the range; merging a snapshot must clamp, not panic.
        let mut a = WorkerMetrics {
            busy_nanos: u64::MAX - 10,
            ticks: u64::MAX - 1,
            quanta: u64::MAX,
            ..Default::default()
        };
        let b = WorkerMetrics { busy_nanos: 100, ticks: 5, quanta: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.busy_nanos, u64::MAX);
        assert_eq!(a.ticks, u64::MAX);
        assert_eq!(a.quanta, u64::MAX);
    }

    #[test]
    fn snapshot_json_parses_and_round_trips_the_merge() {
        use segstack_core::trace::json;

        let mut w0 = WorkerMetrics { completed: 4, busy_nanos: 1_000, ..Default::default() };
        w0.latency.record(1_500);
        w0.latency.record(3_000);
        w0.quantum_nanos.record(500);
        w0.core.captures = 7;
        let mut w1 = WorkerMetrics { completed: 1, eval_errors: 2, ..Default::default() };
        w1.latency.record(9_000);
        let snap = RuntimeSnapshot { workers: vec![w0, w1], queued: 5 };

        let parsed = json::parse(&snap.to_json()).expect("snapshot JSON must parse");
        assert_eq!(parsed.get("queued").and_then(|v| v.as_u64()), Some(5));
        let total = parsed.get("total").expect("total present");
        // The merged totals equal the per-worker sums.
        assert_eq!(total.get("completed").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(
            total.get("core").and_then(|c| c.get("captures")).and_then(|v| v.as_u64()),
            Some(7)
        );
        let lat = total.get("latency_nanos").expect("latency histogram present");
        assert_eq!(lat.get("count").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(lat.get("max").and_then(|v| v.as_u64()), Some(9_000));
        let workers = parsed.get("workers").and_then(|v| v.as_array()).unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(
            workers[1].get("latency_nanos").and_then(|l| l.get("max")).and_then(|v| v.as_u64()),
            Some(9_000)
        );
    }
}
