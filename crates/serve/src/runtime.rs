//! The runtime: configuration, worker pool, submission, shutdown.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle as ThreadHandle;
use std::time::Instant;

use segstack_core::trace::OwnerTrace;

use crate::job::{JobFlags, JobSpec, JoinHandle, Request};
use crate::metrics::{RuntimeSnapshot, WorkerMetrics};
use crate::queue::{Bounded, PushError};
use crate::worker::Worker;

/// Tuning knobs for a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// OS-thread workers, each owning its own Scheme engines.
    pub workers: usize,
    /// Capacity of the shared submission queue (admission control).
    pub queue_depth: usize,
    /// Timer ticks (procedure calls) per engine quantum. Smaller quanta
    /// preempt sooner; larger quanta amortise re-entry cost.
    pub quantum: u64,
    /// Fuel cap applied to requests that do not set their own; `None`
    /// means unlimited by default.
    pub default_fuel: Option<u64>,
    /// Jobs a worker interleaves at once. Above this, jobs wait in the
    /// shared queue where any worker can claim them.
    pub max_inflight: usize,
    /// Records a per-worker event trace (job spans, quantum timeline,
    /// capture/reinstate/relink events, queue-depth gauges). Retrieve it
    /// with [`Runtime::shutdown_traced`] and render it with
    /// [`segstack_core::trace::chrome_trace_json`].
    pub tracing: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            workers: 2,
            queue_depth: 256,
            quantum: 10_000,
            default_fuel: None,
            max_inflight: 8,
            tracing: false,
        }
    }
}

impl RuntimeConfig {
    /// A config with `workers` workers and defaults elsewhere.
    pub fn with_workers(workers: usize) -> Self {
        RuntimeConfig { workers: workers.max(1), ..Default::default() }
    }

    /// Sets the submission-queue depth.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the engine quantum in timer ticks.
    pub fn quantum(mut self, ticks: u64) -> Self {
        self.quantum = ticks.max(1);
        self
    }

    /// Sets the default per-job fuel cap.
    pub fn default_fuel(mut self, ticks: u64) -> Self {
        self.default_fuel = Some(ticks);
        self
    }

    /// Sets how many jobs one worker interleaves.
    pub fn max_inflight(mut self, jobs: usize) -> Self {
        self.max_inflight = jobs.max(1);
        self
    }

    /// Turns per-worker event tracing on or off (default off).
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }
}

/// Shared tracing state handed to every worker: the common epoch that
/// aligns all timelines, and the collector workers drain their rings
/// into when they exit.
#[derive(Clone)]
pub(crate) struct TraceShared {
    pub epoch: Instant,
    pub collector: Arc<Mutex<Vec<OwnerTrace>>>,
}

/// Why a submission was rejected.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at capacity (the request is handed back).
    QueueFull(Request),
    /// The runtime has shut down (the request is handed back).
    ShutDown(Request),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue full"),
            SubmitError::ShutDown(_) => write!(f, "runtime shut down"),
        }
    }
}

/// A pool of shared-nothing evaluation workers behind a bounded queue.
///
/// # Examples
///
/// ```
/// use segstack_serve::{Request, Runtime, RuntimeConfig};
///
/// let rt = Runtime::start(RuntimeConfig::with_workers(2));
/// let handle = rt.submit(Request::new("(+ 1 2)")).unwrap();
/// assert_eq!(handle.wait().result.unwrap(), "3");
/// rt.shutdown();
/// ```
pub struct Runtime {
    injector: Arc<Bounded<JobSpec>>,
    threads: Vec<ThreadHandle<()>>,
    metrics: Vec<Arc<Mutex<WorkerMetrics>>>,
    config: RuntimeConfig,
    next_id: AtomicU64,
    abort: Arc<AtomicBool>,
    traces: Arc<Mutex<Vec<OwnerTrace>>>,
}

impl Runtime {
    /// Spawns the worker pool and returns the running runtime.
    pub fn start(config: RuntimeConfig) -> Self {
        let injector = Arc::new(Bounded::new(config.queue_depth));
        let abort = Arc::new(AtomicBool::new(false));
        let traces = Arc::new(Mutex::new(Vec::new()));
        let tracing = config
            .tracing
            .then(|| TraceShared { epoch: Instant::now(), collector: traces.clone() });
        let mut threads = Vec::new();
        let mut metrics = Vec::new();
        for i in 0..config.workers.max(1) {
            let cell = Arc::new(Mutex::new(WorkerMetrics::default()));
            let worker = Worker {
                injector: injector.clone(),
                metrics: cell.clone(),
                config: config.clone(),
                abort: abort.clone(),
                index: i,
                tracing: tracing.clone(),
            };
            metrics.push(cell);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("segstack-worker-{i}"))
                    .spawn(move || worker.run())
                    .expect("spawn worker thread"),
            );
        }
        Runtime { injector, threads, metrics, config, next_id: AtomicU64::new(0), abort, traces }
    }

    /// Submits a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] if the runtime closed while waiting.
    pub fn submit(&self, request: Request) -> Result<JoinHandle, SubmitError> {
        let (spec, handle) = self.prepare(request);
        match self.injector.push(spec) {
            Ok(()) => Ok(handle),
            Err(PushError::Closed(spec) | PushError::Full(spec)) => {
                Err(SubmitError::ShutDown(respec(spec)))
            }
        }
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when at capacity, [`SubmitError::ShutDown`]
    /// after shutdown. Both hand the request back.
    pub fn try_submit(&self, request: Request) -> Result<JoinHandle, SubmitError> {
        let (spec, handle) = self.prepare(request);
        match self.injector.try_push(spec) {
            Ok(()) => Ok(handle),
            Err(PushError::Full(spec)) => Err(SubmitError::QueueFull(respec(spec))),
            Err(PushError::Closed(spec)) => Err(SubmitError::ShutDown(respec(spec))),
        }
    }

    fn prepare(&self, request: Request) -> (JobSpec, JoinHandle) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let flags = Arc::new(JobFlags::default());
        let (outcome_tx, outcome_rx) = sync_channel(1);
        let now = Instant::now();
        let spec = JobSpec {
            id,
            program: request.program,
            strategy: request.strategy,
            fuel: request.fuel.or(self.config.default_fuel),
            deadline: request.deadline.map(|d| now + d),
            submitted: now,
            flags: flags.clone(),
            outcome_tx,
        };
        (spec, JoinHandle { id, flags, outcome_rx })
    }

    /// A point-in-time metrics snapshot across all workers.
    pub fn metrics(&self) -> RuntimeSnapshot {
        RuntimeSnapshot {
            workers: self
                .metrics
                .iter()
                .map(|m| m.lock().expect("metrics poisoned").clone())
                .collect(),
            queued: self.injector.len(),
        }
    }

    /// The config this runtime was started with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Graceful shutdown: stops accepting work, lets the workers drain
    /// the queue and every in-flight job, joins them, and returns the
    /// final metrics snapshot.
    ///
    /// Jobs keep their service contracts during the drain, so a
    /// divergent job with no fuel cap or deadline will hold shutdown
    /// open; cancel it (or drop the runtime, which aborts instead of
    /// draining) to force progress.
    pub fn shutdown(self) -> RuntimeSnapshot {
        self.shutdown_traced().0
    }

    /// [`Runtime::shutdown`], additionally returning the per-worker event
    /// traces drained as each worker exited (one [`OwnerTrace`] per
    /// worker that ran, in exit order). Empty unless the runtime was
    /// started with [`RuntimeConfig::tracing`]. Render with
    /// [`segstack_core::trace::chrome_trace_json`] or
    /// [`segstack_core::trace::flame_summary`].
    pub fn shutdown_traced(mut self) -> (RuntimeSnapshot, Vec<OwnerTrace>) {
        self.injector.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let snapshot = self.metrics();
        let traces = std::mem::take(&mut *self.traces.lock().expect("trace collector poisoned"));
        (snapshot, traces)
    }
}

impl Drop for Runtime {
    /// Dropping without [`Runtime::shutdown`] aborts: queued and
    /// in-flight jobs resolve to [`crate::JobError::Cancelled`] at the
    /// next preemption point, then the workers are joined.
    fn drop(&mut self) {
        self.abort.store(true, Ordering::Relaxed);
        self.injector.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Rebuilds the user-facing request from a bounced spec so submit errors
/// hand the work back intact.
fn respec(spec: JobSpec) -> Request {
    Request { program: spec.program, strategy: spec.strategy, fuel: spec.fuel, deadline: None }
}
