//! A bounded multi-producer multi-consumer queue with close semantics.
//!
//! Built on `Mutex` + two `Condvar`s so the crate stays dependency-free.
//! The bound is the runtime's admission control: when the queue is full,
//! producers either block (`push`) or get the item back (`try_push`).
//! `close` wakes everyone; consumers drain what remains, then see `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push did not enqueue.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity (the item is handed back).
    Full(T),
    /// The queue was closed (the item is handed back).
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues without blocking.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues, blocking while the queue is full. Fails only if the
    /// queue closes first.
    pub fn push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if s.closed {
                return Err(PushError::Closed(item));
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = self.not_full.wait(s).expect("queue poisoned");
        }
    }

    /// Dequeues, blocking while the queue is empty and open. `None`
    /// means closed *and* drained — the consumer should exit.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue poisoned");
        }
    }

    /// Dequeues without blocking; `None` means currently empty (or
    /// closed and drained).
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        let item = s.items.pop_front();
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: producers fail from now on, consumers drain the
    /// backlog and then see `None`.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently enqueued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the backlog is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_push_pop_fifo() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_unblocks_on_pop() {
        let q = Arc::new(Bounded::new(1));
        q.try_push(0u32).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.push(1).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(1));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(Bounded::new(8));
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    q.push(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        let mut want: Vec<u64> =
            (0..4u64).flat_map(|p| (0..100u64).map(move |i| p * 1000 + i)).collect();
        want.sort_unstable();
        assert_eq!(all, want);
    }
}
