//! The worker loop: one OS thread, one set of Scheme engines, many jobs.
//!
//! A worker owns its engines outright — the VM is `Rc`-based and not
//! `Send`, so nothing about a running program ever crosses a thread
//! boundary. The only shared state is the injector queue (job intake),
//! the per-worker metrics cell, and each job's cancellation flag +
//! outcome channel.
//!
//! Scheduling is round-robin over the worker's in-flight jobs: each
//! iteration grants the front job one engine quantum, then rotates it to
//! the back. Preemption happens *inside* the running program — the
//! engine timer fires mid-computation and capture reifies the rest of
//! the job as a continuation — so a hostile `(let loop () (loop))`
//! cannot hold the worker hostage for longer than one quantum.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use segstack_baselines::Strategy;
use segstack_control::{Control, EngineJob, Step};
use segstack_core::trace::{EventKind, RingSink};

use crate::job::{JobError, JobOutcome, JobSpec};
use crate::metrics::WorkerMetrics;
use crate::queue::Bounded;
use crate::runtime::{RuntimeConfig, TraceShared};

/// One job admitted onto this worker.
struct Active {
    spec: JobSpec,
    engine_job: EngineJob,
}

/// The worker's optional recording ring (shared with its engines).
type Ring = Option<Rc<RefCell<RingSink>>>;

/// Everything a worker thread needs.
pub(crate) struct Worker {
    pub injector: Arc<Bounded<JobSpec>>,
    pub metrics: Arc<Mutex<WorkerMetrics>>,
    pub config: RuntimeConfig,
    /// Set when the runtime is dropped without a graceful `shutdown`:
    /// in-flight and queued jobs are cancelled at the next preemption
    /// point instead of being run to completion.
    pub abort: Arc<AtomicBool>,
    /// This worker's index (trace track id and thread name suffix).
    pub index: usize,
    /// Shared tracing state (epoch + drained-trace collector), when the
    /// runtime was started with tracing on.
    pub tracing: Option<TraceShared>,
}

impl Worker {
    /// The thread body: admit, rotate, step, report — until the injector
    /// closes and every in-flight job has an outcome. A traced worker
    /// drains its ring into the runtime's collector on every exit path.
    pub fn run(self) {
        // Every engine on this worker shares one ring; the shared epoch
        // aligns all workers' timelines on one time base.
        let ring: Ring =
            self.tracing.as_ref().map(|t| Rc::new(RefCell::new(RingSink::with_epoch(t.epoch))));
        self.run_loop(&ring);
        if let (Some(ring), Some(t)) = (ring, &self.tracing) {
            let trace = ring
                .borrow_mut()
                .take_trace(format!("worker-{}", self.index), self.index as u64 + 1);
            t.collector.lock().expect("trace collector poisoned").push(trace);
        }
    }

    fn run_loop(&self, ring: &Ring) {
        // Kits are built lazily per strategy: most deployments use one or
        // two strategies, and prelude compilation is the expensive part.
        let mut kits: Vec<(Strategy, Control)> = Vec::new();
        let mut active: VecDeque<Active> = VecDeque::new();

        loop {
            // An aborting runtime does not drain: everything still in
            // flight or queued is cancelled so the thread can be joined
            // even if a job is divergent with no fuel or deadline.
            if self.abort.load(Ordering::Relaxed) {
                for slot in active.drain(..) {
                    self.finish(ring, &slot, Err(JobError::Cancelled), |m| m.cancelled += 1);
                }
                while let Some(spec) = self.injector.try_pop() {
                    self.report(ring, &spec, 0, 0, Err(JobError::Cancelled), |m| {
                        m.cancelled += 1;
                    });
                }
                return;
            }

            // Admission: top up the local run set from the shared queue.
            // Block only when idle; never block while jobs are in flight.
            while active.len() < self.config.max_inflight {
                let next = if active.is_empty() {
                    match self.injector.pop() {
                        Some(spec) => Some(spec),
                        // Closed and drained: nothing in flight, so done.
                        None => return,
                    }
                } else {
                    self.injector.try_pop()
                };
                let Some(spec) = next else { break };
                self.admit(ring, spec, &mut kits, &mut active);
            }

            let Some(mut slot) = active.pop_front() else { continue };

            // Pre-quantum policy checks (cheap, no engine involvement).
            if slot.spec.flags.is_cancelled() {
                self.finish(ring, &slot, Err(JobError::Cancelled), |m| m.cancelled += 1);
                continue;
            }
            if past_deadline(&slot.spec) {
                self.finish(ring, &slot, Err(JobError::DeadlineExceeded), |m| {
                    m.deadline_exceeded += 1;
                });
                continue;
            }

            // Grant one quantum on the kit for this job's strategy.
            let kit = kit_for(ring, &mut kits, slot.spec.strategy).expect("kit built at admission");
            let quantum = self.config.quantum;
            emit(ring, EventKind::QuantumBegin, slot.spec.id, self.index as u64);
            let start = Instant::now();
            let step = kit.step_job(&mut slot.engine_job, quantum);
            let busy = start.elapsed().as_nanos() as u64;
            emit(ring, EventKind::QuantumEnd, slot.spec.id, busy);
            {
                let mut m = self.metrics.lock().expect("metrics poisoned");
                m.quanta = m.quanta.saturating_add(1);
                m.busy_nanos = m.busy_nanos.saturating_add(busy);
                m.quantum_nanos.record(busy);
                m.core.merge(kit.metrics());
            }
            kit.engine().reset_metrics();

            match step {
                Ok(Step::Done { value, .. }) => {
                    self.finish(ring, &slot, Ok(value.to_string()), |m| m.completed += 1);
                }
                Ok(Step::Expired) => {
                    self.add_ticks(quantum);
                    if out_of_fuel(&slot) {
                        self.finish(ring, &slot, Err(JobError::FuelExhausted), |m| {
                            m.fuel_exhausted += 1;
                        });
                    } else if past_deadline(&slot.spec) {
                        // The deadline passed *during* the quantum: the
                        // engine timer preempted the program mid-flight
                        // and we discard the captured remainder.
                        self.finish(ring, &slot, Err(JobError::DeadlineExceeded), |m| {
                            m.deadline_exceeded += 1;
                        });
                    } else {
                        active.push_back(slot);
                    }
                }
                Err(e) => {
                    self.add_ticks(quantum);
                    self.finish(ring, &slot, Err(JobError::Eval(e.to_string())), |m| {
                        m.eval_errors += 1;
                    });
                }
            }
        }
    }

    fn add_ticks(&self, ticks: u64) {
        let mut m = self.metrics.lock().expect("metrics poisoned");
        m.ticks = m.ticks.saturating_add(ticks);
    }

    /// Builds (or reuses) the kit, spawns the engine, and enqueues the
    /// job locally. Spawn failures are reported as outcomes immediately.
    fn admit(
        &self,
        ring: &Ring,
        spec: JobSpec,
        kits: &mut Vec<(Strategy, Control)>,
        active: &mut VecDeque<Active>,
    ) {
        self.metrics.lock().expect("metrics poisoned").admitted += 1;
        if let Some(r) = ring {
            // Backdate the enqueue instant to submission time so the job's
            // async span covers its whole queue wait on the timeline.
            let mut r = r.borrow_mut();
            let queued_at = spec
                .submitted
                .checked_duration_since(r.epoch())
                .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
            r.record_at(queued_at, EventKind::JobEnqueue, spec.id, 0);
            r.record_now(EventKind::JobAdmit, spec.id, strategy_index(spec.strategy));
            let depth = self.injector.len() as u64;
            r.record_now(EventKind::QueueDepth, depth, 0);
        }
        let kit = match kit_for(ring, kits, spec.strategy) {
            Ok(kit) => kit,
            Err(e) => {
                self.report(ring, &spec, 0, 0, Err(JobError::Eval(e)), |m| m.eval_errors += 1);
                return;
            }
        };
        match kit.spawn_job(&spec.program) {
            Ok(engine_job) => active.push_back(Active { spec, engine_job }),
            Err(e) => {
                self.report(ring, &spec, 0, 0, Err(JobError::Eval(e.to_string())), |m| {
                    m.eval_errors += 1;
                });
            }
        }
    }

    fn finish(
        &self,
        ring: &Ring,
        slot: &Active,
        result: Result<String, JobError>,
        count: impl FnOnce(&mut WorkerMetrics),
    ) {
        // Completed jobs settle their exact tick usage here (expired
        // quanta were already charged whole as they happened).
        if result.is_ok() {
            let mut m = self.metrics.lock().expect("metrics poisoned");
            m.ticks =
                m.ticks.saturating_add(slot.engine_job.ticks_used().saturating_sub(
                    slot.engine_job.quanta().saturating_sub(1) * self.config.quantum,
                ));
        }
        self.report(
            ring,
            &slot.spec,
            slot.engine_job.quanta(),
            slot.engine_job.ticks_used(),
            result,
            count,
        );
    }

    fn report(
        &self,
        ring: &Ring,
        spec: &JobSpec,
        quanta: u64,
        ticks: u64,
        result: Result<String, JobError>,
        count: impl FnOnce(&mut WorkerMetrics),
    ) {
        let latency = spec.submitted.elapsed();
        let latency_nanos = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        {
            let mut m = self.metrics.lock().expect("metrics poisoned");
            count(&mut m);
            m.latency.record(latency_nanos);
        }
        emit(ring, outcome_kind(&result), spec.id, latency_nanos);
        // Queue-depth gauge on drain: one job just left the system.
        emit(ring, EventKind::QueueDepth, self.injector.len() as u64, 0);
        // A dropped handle is fine; the outcome just goes unobserved.
        let _ =
            spec.outcome_tx.try_send(JobOutcome { id: spec.id, result, quanta, ticks, latency });
    }
}

/// Records one event if this worker is traced.
fn emit(ring: &Ring, kind: EventKind, a: u64, b: u64) {
    if let Some(r) = ring {
        r.borrow_mut().record_now(kind, a, b);
    }
}

/// The job-outcome event kind for a result.
fn outcome_kind(result: &Result<String, JobError>) -> EventKind {
    match result {
        Ok(_) => EventKind::JobComplete,
        Err(JobError::Cancelled) => EventKind::JobCancelled,
        Err(JobError::DeadlineExceeded) => EventKind::JobDeadline,
        Err(JobError::FuelExhausted) => EventKind::JobFuel,
        Err(_) => EventKind::JobError,
    }
}

/// The strategy's position in [`Strategy::ALL`], as an event payload.
fn strategy_index(strategy: Strategy) -> u64 {
    Strategy::ALL.iter().position(|s| *s == strategy).unwrap_or(0) as u64
}

fn past_deadline(spec: &JobSpec) -> bool {
    spec.deadline.is_some_and(|d| Instant::now() >= d)
}

fn out_of_fuel(slot: &Active) -> bool {
    slot.spec.fuel.is_some_and(|cap| slot.engine_job.ticks_used() >= cap)
}

/// Finds or builds the kit for a strategy. Building loads the prelude
/// and the control libraries, so it happens at most once per strategy
/// per worker. Traced workers hand every kit a clone of their ring, so
/// engine-level events land on the worker's own timeline.
fn kit_for<'k>(
    ring: &Ring,
    kits: &'k mut Vec<(Strategy, Control)>,
    strategy: Strategy,
) -> Result<&'k mut Control, String> {
    if let Some(i) = kits.iter().position(|(s, _)| *s == strategy) {
        return Ok(&mut kits[i].1);
    }
    let kit = match ring {
        Some(r) => Control::with_trace_sink(strategy, r.clone()),
        None => Control::new(strategy),
    }
    .map_err(|e| format!("engine construction: {e}"))?;
    kits.push((strategy, kit));
    Ok(&mut kits.last_mut().expect("just pushed").1)
}
