//! # segstack-serve
//!
//! A shared-nothing multi-worker evaluation runtime built on the paper's
//! engine abstraction (Dybvig & Hieb, "Engines from Continuations"; §4–§5
//! of *Representing Control in the Presence of First-Class Continuations*).
//!
//! A [`Runtime`] owns a pool of OS-thread workers. Each worker holds its
//! own `segstack_scheme::Engine` — the VM is `Rc`-based and deliberately
//! not `Send`, so nothing about a running program ever crosses a thread
//! boundary. Requests enter a bounded MPMC queue; workers interleave
//! several jobs each, granting engine quanta round-robin. Preemption is
//! *continuation capture*: the engine timer (one tick per procedure call)
//! fires mid-computation and the rest of the job is reified as a
//! continuation, so a divergent `(let loop () (loop))` yields the worker
//! after one quantum and can be cancelled on its fuel or wall-clock
//! budget without poisoning anything.
//!
//! ```
//! use std::time::Duration;
//! use segstack_serve::{JobError, Request, Runtime, RuntimeConfig};
//!
//! let rt = Runtime::start(RuntimeConfig::with_workers(2).quantum(1_000));
//! let ok = rt.submit(Request::new("(let fib ((n 20)) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))")).unwrap();
//! let bad = rt.submit(Request::new("(let loop () (loop))").deadline(Duration::from_millis(50))).unwrap();
//! assert_eq!(ok.wait().result.unwrap(), "6765");
//! assert_eq!(bad.wait().result.unwrap_err(), JobError::DeadlineExceeded);
//! rt.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod job;
mod metrics;
mod queue;
mod runtime;
mod worker;

pub use job::{JobError, JobOutcome, JoinHandle, Request};
pub use metrics::{RuntimeSnapshot, WorkerMetrics};
pub use queue::{Bounded, PushError};
pub use runtime::{Runtime, RuntimeConfig, SubmitError};
