//! Counter-based regression gates for the reinstatement fast path.
//!
//! Wall-clock comparisons live in the harness (E16/E17) and depend on the
//! host; these tests pin the *architecture-independent* counters the fast
//! path is about, so a regression that silently sends one-shot
//! reinstatements back down the copy path fails `cargo test` anywhere.

use std::rc::Rc;

use segstack_baselines::Strategy;
use segstack_core::{sim, Config, ControlStack, SegmentedStack, TestCode, TestSlot};
use segstack_scheme::{CheckPolicy, Engine};

/// The E17 core shape: a uniquely-owned one-shot tower reinstated from a
/// detached machine must relink every round and copy exactly zero slots.
#[test]
fn unshared_one_shot_reinstatement_copies_nothing() {
    let depth = 512usize;
    let rounds = 50u64;
    let slots = depth * 8 + 4096;
    let cfg =
        Config::builder().segment_slots(slots).frame_bound(64).copy_bound(slots).build().unwrap();
    let code = Rc::new(TestCode::new());
    let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
    sim::push_frames(&mut stack, &code, depth, 8);
    stack.metrics_mut().reset();
    for _ in 0..rounds {
        sim::push_frames(&mut stack, &code, 1, 8);
        let k = stack.capture_one_shot();
        stack.reset();
        stack.reinstate(&k).expect("reinstate");
    }
    let m = stack.metrics();
    assert_eq!(m.slots_copied, 0, "the relink fast path must copy no slots");
    assert_eq!(m.reinstates_relinked, rounds, "every reinstatement must take the fast path");
    assert!(m.slots_copy_avoided >= rounds * (depth as u64) * 8, "avoided-copy accounting");
}

/// The same tower reinstated through a *kept* multi-shot handle must take
/// the copy path — if this ever relinks, the multi-shot contract broke.
#[test]
fn shared_multi_shot_reinstatement_takes_the_copy_path() {
    let depth = 512usize;
    let slots = depth * 8 + 4096;
    let cfg =
        Config::builder().segment_slots(slots).frame_bound(64).copy_bound(slots).build().unwrap();
    let code = Rc::new(TestCode::new());
    let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
    sim::push_frames(&mut stack, &code, depth, 8);
    stack.metrics_mut().reset();
    let k = stack.capture();
    stack.reset();
    stack.reinstate(&k).expect("first reinstate");
    stack.reinstate(&k).expect("multi-shot handles reinstate repeatedly");
    let m = stack.metrics();
    assert_eq!(m.reinstates_relinked, 0, "a borrowed multi-shot handle must never relink");
    assert!(m.slots_copied >= 2 * (depth as u64) * 8, "both reinstatements copy the image");
}

/// Scheme-level gate: the E16 ping-pong under `%call/1cc` on the segmented
/// engine must relink nearly every switch, and total slot traffic must stay
/// a small constant (setup only) instead of scaling with `switches x
/// copy_bound` as the copy path does.
#[test]
fn pingpong_one_shot_switches_relink_with_constant_copy_traffic() {
    let cfg =
        Config::builder().segment_slots(2048).frame_bound(64).copy_bound(128).build().unwrap();
    let (spacer, rounds) = (600u32, 500u64);
    let src = segstack_bench::workloads::pingpong("%call/1cc", spacer, rounds as u32);
    let mut e =
        Engine::builder().strategy(Strategy::Segmented).config(cfg.clone()).build().unwrap();
    e.reset_metrics();
    let v = e.eval(&src).expect("pingpong");
    assert_eq!(v.to_string(), rounds.to_string());
    let m = e.metrics();
    let switches = 2 * rounds; // one capture+jump per side per round
    assert!(
        m.reinstates_relinked >= switches - 50,
        "steady-state switches must relink: {} of ~{switches}",
        m.reinstates_relinked
    );
    // Setup (digging both sides in) pays bounded overflow/underflow copies;
    // steady-state switches pay none. The ceiling is deliberately generous
    // but far below the copy path's switches * copy_bound (= 128000 here).
    assert!(
        m.slots_copied < 20_000,
        "one-shot ping-pong copied {} slots; copy traffic must not scale with switches",
        m.slots_copied
    );
    // The multi-shot run of the identical workload must cost at least the
    // copy bound per switch on this segment geometry — the gap is the point.
    let src_cc = segstack_bench::workloads::pingpong("%call/cc", spacer, rounds as u32);
    let mut e2 = Engine::builder().strategy(Strategy::Segmented).config(cfg).build().unwrap();
    e2.reset_metrics();
    e2.eval(&src_cc).expect("pingpong cc");
    assert!(
        e2.metrics().slots_copied > m.slots_copied * 4,
        "copy-path ping-pong ({}) should dwarf relink ping-pong ({})",
        e2.metrics().slots_copied,
        m.slots_copied
    );
}

/// Segment-allocation ceiling: steady-state relinking must recycle the two
/// side buffers (adopt one, retire the other to the pool) instead of
/// allocating fresh segments per switch.
#[test]
fn pingpong_one_shot_does_not_thrash_the_allocator() {
    let cfg =
        Config::builder().segment_slots(2048).frame_bound(64).copy_bound(128).build().unwrap();
    let src = segstack_bench::workloads::pingpong("%call/1cc", 600, 500);
    let mut e = Engine::builder().strategy(Strategy::Segmented).config(cfg).build().unwrap();
    e.reset_metrics();
    e.eval(&src).expect("pingpong");
    let m = e.metrics();
    assert!(
        m.segments_allocated < 40,
        "1000 one-shot switches allocated {} fresh segments; switches must reuse \
         the side buffers",
        m.segments_allocated
    );
}

/// A bounded helper chain: `loop` is unbounded (self-recursive) but each
/// iteration's non-tail `(sumsq ...)` call — and sumsq's two `(sq ...)`
/// calls — have provably finite-height callees.
const HELPER_CHAIN: &str = "
    (define (sq x) (* x x))
    (define (sumsq a b) (+ (sq a) (sq b)))
    (define (loop i acc)
      (if (= i 0) acc (loop (- i 1) (+ acc (sumsq i 3)))))
    (loop 10000 0)";

/// Interprocedural elision gate: on a bounded helper chain the analysis
/// must convert the per-iteration closure-call checks into elisions,
/// strictly reducing `checks_executed` against plain `elide`, without
/// changing the result.
#[test]
fn interproc_elision_removes_checks_on_bounded_helper_chains() {
    let mut base = Engine::builder().check_policy(CheckPolicy::Elide).build().unwrap();
    base.reset_metrics();
    let want = base.eval(HELPER_CHAIN).unwrap().to_string();
    let mb = base.metrics().clone();
    assert_eq!(mb.checks_elided_interproc, 0, "flag off must not elide interprocedurally");

    let mut e = Engine::builder()
        .check_policy(CheckPolicy::Elide)
        .interprocedural_elision(true)
        .build()
        .unwrap();
    e.reset_metrics();
    let got = e.eval(HELPER_CHAIN).unwrap().to_string();
    assert_eq!(got, want, "elision must not change results");
    let m = e.metrics().clone();
    // One sumsq site per iteration; the sq sites inside sumsq are direct
    // leaf elisions either way. 10k iterations set the floor.
    assert!(
        m.checks_elided_interproc >= 10_000,
        "interproc elisions: {}",
        m.checks_elided_interproc
    );
    assert!(
        m.checks_executed + 10_000 <= mb.checks_executed,
        "checks must drop by at least the interproc sites: {} vs {}",
        m.checks_executed,
        mb.checks_executed
    );
    // Interproc elisions are a subset of all elisions by definition.
    assert!(m.checks_elided_interproc <= m.checks_elided);
}

/// Inline-cache gate: a hot global-recursion workload must run almost
/// entirely out of the caches, and the fused call superinstructions must
/// carry the traffic.
#[test]
fn inline_caches_hit_in_steady_state() {
    let mut e = Engine::new().unwrap();
    e.reset_metrics();
    e.eval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 20)").unwrap();
    let m = e.metrics().clone();
    assert!(m.ic_hits > 10_000, "ic hits: {}", m.ic_hits);
    assert!(m.ic_misses < m.ic_hits / 100, "ic misses: {} vs hits {}", m.ic_misses, m.ic_hits);
    assert!(
        m.superinstructions_dispatched > m.ic_hits,
        "fused ops must carry the hot path: {} vs {}",
        m.superinstructions_dispatched,
        m.ic_hits
    );
}

/// Invalidation gate: redefining or assigning a cached global operator
/// must miss (and refill) on the next dispatch, never serve the stale
/// callee.
#[test]
fn inline_caches_invalidate_on_global_redefinition() {
    let mut e = Engine::new().unwrap();
    e.eval("(define (f) 1) (define (caller) (f))").unwrap();
    assert_eq!(e.eval_to_string("(caller)").unwrap(), "1");
    assert_eq!(e.eval_to_string("(caller)").unwrap(), "1"); // warm the cache
    let warm_misses = e.metrics().ic_misses;
    e.eval("(define (f) 2)").unwrap();
    assert_eq!(e.eval_to_string("(caller)").unwrap(), "2", "stale cache served");
    assert!(
        e.metrics().ic_misses > warm_misses,
        "redefinition must force a miss: {} vs {}",
        e.metrics().ic_misses,
        warm_misses
    );
}
