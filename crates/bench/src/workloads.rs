//! The Scheme workload corpus used by the experiments.
//!
//! "Typical" programs (call-intensive, no continuations) drive the claims
//! about ordinary procedure-call cost; "continuation-intensive" programs
//! drive the capture/reinstate claims.

/// Doubly recursive Fibonacci — the canonical call-intensive benchmark.
pub fn fib(n: u32) -> String {
    format!("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib {n})")
}

/// Takeuchi's function — deep non-tail recursion.
pub fn tak(x: i32, y: i32, z: i32) -> String {
    format!(
        "(define (tak x y z)
           (if (not (< y x)) z
               (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
         (tak {x} {y} {z})"
    )
}

/// Deep non-tail summation: every level pushes a frame.
pub fn deep_sum(n: u32) -> String {
    format!("(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum {n})")
}

/// A tight tail loop: the "leaf routines and tight tail-recursive loops
/// need not check for overflow" case.
pub fn tail_loop(n: u32) -> String {
    format!("(define (loop n acc) (if (= n 0) acc (loop (- n 1) (+ acc 1)))) (loop {n} 0)")
}

/// Continuation-intensive tak: a continuation is captured at every level
/// and every result is delivered by invoking one.
pub fn ctak(x: i32, y: i32, z: i32) -> String {
    format!(
        "(define (ctak x y z) (call/cc (lambda (k) (ctak-aux k x y z))))
         (define (ctak-aux k x y z)
           (if (not (< y x))
               (k z)
               (call/cc (lambda (k)
                 (ctak-aux k
                   (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))
                   (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))
                   (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))))
         (ctak {x} {y} {z})"
    )
}

/// The paper's §4 looper: tail-position capture in a tail loop.
pub fn looper(n: u32) -> String {
    format!(
        "(define (looper n) (if (= n 0) 'done (call/cc (lambda (k) (looper (- n 1))))))
         (looper {n})"
    )
}

/// Merge sort over an LCG-generated list.
pub fn sort(n: u32) -> String {
    format!(
        "(define (make-list-lcg n seed)
           (let loop ((i n) (s seed) (acc '()))
             (if (= i 0)
                 acc
                 (let ((next (modulo (+ (* s 1103515245) 12345) 2147483648)))
                   (loop (- i 1) next (cons (modulo next 1000) acc))))))
         (define (merge a b)
           (cond ((null? a) b)
                 ((null? b) a)
                 ((<= (car a) (car b)) (cons (car a) (merge (cdr a) b)))
                 (else (cons (car b) (merge a (cdr b))))))
         (define (split lst)
           (if (or (null? lst) (null? (cdr lst)))
               (cons lst '())
               (let ((rest (split (cddr lst))))
                 (cons (cons (car lst) (car rest))
                       (cons (cadr lst) (cdr rest))))))
         (define (merge-sort lst)
           (if (or (null? lst) (null? (cdr lst)))
               lst
               (let ((halves (split lst)))
                 (merge (merge-sort (car halves)) (merge-sort (cdr halves))))))
         (fold-left + 0 (merge-sort (make-list-lcg {n} 42)))"
    )
}

/// Symbolic differentiation of a nested product.
pub fn deriv(levels: u32) -> String {
    format!(
        "(define (deriv exp var)
           (cond ((number? exp) 0)
                 ((symbol? exp) (if (eq? exp var) 1 0))
                 ((eq? (car exp) '+)
                  (list '+ (deriv (cadr exp) var) (deriv (caddr exp) var)))
                 ((eq? (car exp) '*)
                  (list '+
                        (list '* (cadr exp) (deriv (caddr exp) var))
                        (list '* (deriv (cadr exp) var) (caddr exp))))
                 (else (error \"unknown operator\"))))
         (define (nest exp n)
           (if (= n 0) exp (nest (list '* exp (list '+ 'x n)) (- n 1))))
         (define d (deriv (nest 'x {levels}) 'x))
         (length d)"
    )
}

/// Plain-recursion n-queens (no continuations).
pub fn queens_plain(n: u32) -> String {
    format!(
        "(define (safe? row placed dist)
           (cond ((null? placed) #t)
                 ((= (car placed) row) #f)
                 ((= (abs (- (car placed) row)) dist) #f)
                 (else (safe? row (cdr placed) (+ dist 1)))))
         (define (count-queens n)
           (define (try col placed)
             (if (= col n)
                 1
                 (let loop ((row 0) (acc 0))
                   (if (= row n)
                       acc
                       (loop (+ row 1)
                             (if (safe? row placed 1)
                                 (+ acc (try (+ col 1) (cons row placed)))
                                 acc))))))
           (try 0 '()))
         (count-queens {n})"
    )
}

/// A re-entrant generator drained `rounds` times over a `width`-element
/// list: continuation-heavy with multi-shot reinstatement.
pub fn generator_drain(width: u32, rounds: u32) -> String {
    format!(
        "(define (make-gen lst)
           (define return #f)
           (define resume #f)
           (define (start)
             (for-each (lambda (x)
                         (call/cc (lambda (r) (set! resume r) (return x))))
                       lst)
             (return 'done))
           (lambda ()
             (call/cc (lambda (k)
               (set! return k)
               (if resume (resume #f) (start))))))
         (define (drain g acc)
           (let ((v (g)))
             (if (eq? v 'done) acc (drain g (+ acc v)))))
         (let loop ((i 0) (acc 0))
           (if (= i {rounds})
               acc
               (loop (+ i 1) (drain (make-gen (iota {width})) acc))))"
    )
}

/// Captures one continuation at recursion depth `depth`, discarding it,
/// `rounds` times — the capture-cost probe for E2/E5.
pub fn capture_at_depth(depth: u32, rounds: u32) -> String {
    format!(
        "(define (grab i)
           (if (= i 0) 0 (begin (%call/cc (lambda (k) k)) (grab (- i 1)))))
         (define (deep n thunk) (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))
         (deep {depth} (lambda () (grab {rounds})))"
    )
}

/// Captures once at depth `depth` and reinstates the continuation
/// `rounds` times — the reinstatement-cost probe for E3/E6.
pub fn reinstate_at_depth(depth: u32, rounds: u32) -> String {
    format!(
        "(define k #f)
         (define count 0)
         (define (deep n)
           (if (= n 0) (call/cc (lambda (c) (set! k c) 0)) (+ 1 (deep (- n 1)))))
         (deep {depth})
         (set! count (+ count 1))
         (if (< count {rounds}) (k 0) count)"
    )
}

/// Coroutine ping-pong for E16: two sides, each parked `spacer` non-tail
/// frames deep in its own region of the stack, pass control back and forth
/// `rounds` times. Every switch captures a fresh continuation of the
/// suspending side with `cap` (`"%call/cc"` or `"%call/1cc"`) and jumps to
/// the other side's saved one, so each continuation is reinstated exactly
/// once — the shape where one-shot capture lets the segmented stack relink
/// the suspended side's segment chain instead of copying it.
pub fn pingpong(cap: &str, spacer: u32, rounds: u32) -> String {
    format!(
        "(define k-a #f)
         (define k-b #f)
         (define k-exit #f)
         (define count 0)
         (define (dig n thunk) (if (= n 0) (thunk) (+ 1 (dig (- n 1) thunk))))
         (define (b-loop)
           ({cap} (lambda (k) (set! k-b k) (k-a 0)))
           (b-loop))
         (define (a-loop)
           (if (< count {rounds})
               (begin
                 (set! count (+ count 1))
                 ({cap} (lambda (k) (set! k-a k) (k-b 0)))
                 (a-loop))
               (k-exit count)))
         (%call/cc
           (lambda (k)
             (set! k-exit k)
             (dig {spacer}
               (lambda ()
                 ({cap} (lambda (k2)
                          (set! k-a k2)
                          (dig {spacer} (lambda () (b-loop)))))
                 (a-loop)))))"
    )
}

/// A tail loop whose body is a `let`-shaped LCG step: every iteration is a
/// direct application of a lambda whose body only calls primitives — the
/// shape the `stable_primitive_bindings` analysis (E8) turns check-free.
pub fn lcg_let_loop(n: u32) -> String {
    format!(
        "(define (step s)
           (let ((t (modulo (+ (* s 1103515245) 12345) 2147483648)))
             (modulo t 1000)))
         (define (loop i s) (if (= i 0) s (loop (- i 1) (step s))))
         (loop {n} 42)"
    )
}

/// A bounded helper chain driven from a tail loop: every iteration makes a
/// non-tail call to `sumsq`, which makes two non-tail calls to the leaf
/// `sq` — the exact shape the interprocedural bounded-depth analysis
/// proves check-free (transitive Figure 8 reserve), which single-body leaf
/// elision cannot reach.
pub fn nested_helper(n: u32) -> String {
    format!(
        "(define (sq x) (* x x))
         (define (sumsq a b) (+ (sq a) (sq b)))
         (define (loop i acc)
           (if (= i 0) acc (loop (- i 1) (+ acc (sumsq i 3)))))
         (loop {n} 0)"
    )
}

/// The Boyer-style rewriting theorem prover over `n` theorem instances:
/// the classic symbol/list-intensive Gabriel workload shape.
pub fn boyer(n: u32) -> String {
    let base = include_str!("../../../tests/programs/boyer.scm");
    // Strip the file's own driver expression (the final `(list …)` form)
    // and substitute a parameterised one.
    let cut = base.rfind("(list (run-boyer").expect("driver present");
    format!("{}\n(car (run-boyer {n}))", &base[..cut])
}

/// The boundary "bouncing" probe for E9: parks the stack `depth` frames
/// deep, then runs `iters` call+return pairs across that point.
pub fn boundary_loop(depth: u32, iters: u32) -> String {
    format!(
        "(define (leaf x) (+ x 1))
         (define (cross i acc)
           (if (= i 0) acc (cross (- i 1) (modulo (+ acc (leaf acc)) 1000))))
         (define (park d i)
           (if (= d 0) (cross i 0) (+ 0 (park (- d 1) i))))
         (park {depth} {iters})"
    )
}

#[cfg(test)]
mod tests {
    use segstack_scheme::Engine;

    fn eval(src: &str) -> String {
        let mut e = Engine::builder().max_steps(500_000_000).build().unwrap();
        e.eval_to_string(src).unwrap()
    }

    #[test]
    fn workloads_produce_expected_values() {
        assert_eq!(eval(&super::fib(15)), "610");
        assert_eq!(eval(&super::tak(12, 8, 4)), "5");
        assert_eq!(eval(&super::deep_sum(1000)), "500500");
        assert_eq!(eval(&super::tail_loop(10000)), "10000");
        assert_eq!(eval(&super::ctak(12, 8, 4)), "5");
        assert_eq!(eval(&super::looper(1000)), "done");
        assert_eq!(eval(&super::sort(100)), eval(&super::sort(100)));
        assert_eq!(eval(&super::queens_plain(6)), "4");
        assert_eq!(eval(&super::capture_at_depth(50, 10)), "50");
        assert_eq!(eval(&super::boyer(2)), "122");
        assert_eq!(eval(&super::reinstate_at_depth(100, 5)), "5");
        assert_eq!(eval(&super::generator_drain(10, 3)), "135");
        assert_eq!(eval(&super::pingpong("%call/cc", 20, 50)), "50");
        assert_eq!(eval(&super::pingpong("%call/1cc", 20, 50)), "50");
        assert_eq!(eval(&super::lcg_let_loop(100)), eval(&super::lcg_let_loop(100)));
        let d = eval(&super::deriv(5));
        assert_eq!(d, "3");
        assert_eq!(eval(&super::boundary_loop(10, 100)), eval(&super::boundary_loop(10, 100)));
    }
}
