//! # segstack-bench
//!
//! The benchmark harness reproducing every experiment of *Representing
//! Control in the Presence of First-Class Continuations* (see DESIGN.md §4
//! for the experiment index E1–E14, each mapped to a paper figure or
//! claim).
//!
//! Two entry points:
//!
//! * `cargo run -p segstack-bench --release --bin harness [e01 e09 ...]` —
//!   prints every experiment table (or just the selected ones), with both
//!   wall-clock times and architecture-independent counters.
//! * `cargo bench -p segstack-bench` — Criterion microbenchmarks of the key
//!   comparisons, with statistical rigor.
//! * `cargo run -p segstack-bench --release --bin loadgen -- --workers 4` —
//!   drives a mixed workload through the `segstack-serve` runtime and
//!   reports throughput, latency percentiles and fairness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod serve_load;
pub mod table;
pub mod workloads;
