//! The experiment suite: one function per table/figure of DESIGN.md §4.
//!
//! Every experiment reports wall-clock time *and* architecture-independent
//! counters (slots copied, frames allocated, checks executed), so the
//! paper's comparative claims are checked both ways. Absolute times depend
//! on the host; the *shape* — who wins, by what factor, where crossovers
//! fall — is the reproduction target.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use segstack_baselines::Strategy;
use segstack_core::trace::{OwnerTrace, RingSink};
use segstack_core::{sim, Config, ControlStack, Metrics, SegmentedStack, TestCode, TestSlot};
use segstack_scheme::{CheckPolicy, Engine, Value};

use crate::table::{fmt_ns, fmt_ratio, Table};
use crate::workloads as w;

/// Result of one measured run.
#[derive(Clone, Debug)]
pub struct Run {
    /// Wall-clock nanoseconds for the measured phase.
    pub nanos: f64,
    /// Counters accumulated during the measured phase.
    pub metrics: Metrics,
    /// Printed result value (for validation).
    pub value: String,
}

/// Builds an engine for an experiment.
pub fn engine(strategy: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder()
        .strategy(strategy)
        .config(cfg.clone())
        .check_policy(policy)
        .build()
        .expect("engine construction")
}

/// Evaluates `setup` unmeasured, then measures `src`.
pub fn measure(e: &mut Engine, setup: &str, src: &str) -> Run {
    if !setup.is_empty() {
        e.eval(setup).expect("setup");
    }
    e.reset_metrics();
    let start = Instant::now();
    let v = e.eval(src).expect("measured program");
    let nanos = start.elapsed().as_nanos() as f64;
    Run { nanos, metrics: e.metrics().clone(), value: v.to_string() }
}

/// Measures `src` on a fresh engine per strategy.
pub fn measure_on(strategy: Strategy, cfg: &Config, src: &str) -> Run {
    let mut e = engine(strategy, cfg, CheckPolicy::Elide);
    // Warm once: compiles a separate chunk; run-time state (globals) from
    // the warm run is discarded by using a fresh engine.
    let mut warm = engine(strategy, cfg, CheckPolicy::Elide);
    warm.eval(src).expect("warmup");
    measure(&mut e, "", src)
}

fn cfg_default() -> Config {
    Config::default()
}

/// E1 — ordinary procedure calls across all strategies (Fig 1 vs Fig 3;
/// §1: heap allocation slows ordinary calls).
pub fn e01_calls() -> Table {
    let mut t = Table::new(
        "E1: ordinary call/return cost by strategy",
        "heap allocation makes ordinary calls slower; the segmented stack keeps the \
         traditional stack's cheap call interface (§1, §2, Fig 1-3)",
        &["workload", "strategy", "time", "ns/call-op", "heap frames", "slots copied"],
    );
    let workloads = [
        ("fib 22", w::fib(22)),
        ("tak 16 10 4", w::tak(16, 10, 4)),
        ("tail-loop 300k", w::tail_loop(300_000)),
    ];
    for (name, src) in &workloads {
        for s in Strategy::ALL {
            let r = measure_on(s, &cfg_default(), src);
            let ops = r.metrics.call_interface_ops().max(1) as f64;
            t.row([
                name.to_string(),
                s.to_string(),
                fmt_ns(r.nanos),
                format!("{:.1}", r.nanos / ops),
                r.metrics.heap_frames_allocated.to_string(),
                r.metrics.slots_copied.to_string(),
            ]);
        }
    }
    t.note(
        "the heap model allocates a frame per call AND per tail call; stack-based \
            strategies allocate none",
    );
    t
}

/// E2 — capture cost as a function of stack depth (Fig 2 vs Fig 5).
pub fn e02_capture_depth() -> Table {
    let mut t = Table::new(
        "E2: continuation capture cost vs. stack depth",
        "naive copying makes capture O(stack depth); segmented/heap/hybrid capture is \
         O(1) (Fig 2 vs Fig 5)",
        &["depth", "strategy", "ns/capture-cycle", "slots copied/cycle"],
    );
    let rounds = 2_000u32;
    for depth in [10u32, 100, 500, 2000] {
        for s in Strategy::ALL {
            let src = w::capture_at_depth(depth, rounds);
            let r = measure_on(s, &cfg_default(), &src);
            let caps = r.metrics.captures.max(1) as f64;
            t.row([
                depth.to_string(),
                s.to_string(),
                format!("{:.0}", r.nanos / caps),
                format!("{:.1}", r.metrics.slots_copied as f64 / caps),
            ]);
        }
    }
    t.note(
        "a cycle is capture + return past the seal; segmented pays a bounded \
            underflow copy per cycle while copy/cache pay the whole stack depth",
    );
    t
}

/// The reinstatement-latency probe: capture once at depth, then jump back
/// and forth `rounds` times without ever unwinding the deep stack.
fn reinstate_latency(depth: u32, rounds: u32) -> String {
    format!(
        "(define k-deep #f)
         (define k-top #f)
         (define count 0)
         (define (deep n)
           (if (= n 0)
               (begin (%call/cc (lambda (c) (set! k-deep c))) (k-top 0))
               (+ 1 (deep (- n 1)))))
         (%call/cc (lambda (c) (set! k-top c) (deep {depth})))
         (set! count (+ count 1))
         (if (< count {rounds}) (k-deep 0) count)"
    )
}

/// E3 — reinstatement cost as a function of continuation size (Fig 6-7).
pub fn e03_reinstate_size() -> Table {
    let mut t = Table::new(
        "E3: reinstatement cost vs. continuation size (segmented, copy bound 128)",
        "reinstatement copies at most the copy bound; larger saved segments are split \
         first, so cost is flat in continuation size (§4, Fig 6-7)",
        &["depth", "strategy", "ns/reinstate", "slots copied/reinstate", "splits"],
    );
    let rounds = 2_000u32;
    for depth in [50u32, 200, 1000, 4000] {
        for s in [Strategy::Segmented, Strategy::Copy, Strategy::Heap, Strategy::Incremental] {
            let src = reinstate_latency(depth, rounds);
            let r = measure_on(s, &cfg_default(), &src);
            let n = r.metrics.reinstatements.max(1) as f64;
            t.row([
                depth.to_string(),
                s.to_string(),
                format!("{:.0}", r.nanos / n),
                format!("{:.1}", r.metrics.slots_copied as f64 / n),
                r.metrics.splits.to_string(),
            ]);
        }
    }
    t.note(
        "copy reinstates the whole image (linear in depth); segmented copies a \
            bounded prefix and splits the rest lazily; heap shares frames",
    );
    t
}

/// E4 — stack walking via code-stream frame-size words (Fig 4).
pub fn e04_walk() -> Table {
    let mut t = Table::new(
        "E4: stack-walk cost vs. frame count (core, synthetic frames)",
        "walkers recover every frame boundary from return addresses alone, in time \
         linear in the frame count (Fig 4)",
        &["frames", "time/walk", "ns/frame"],
    );
    let code = std::rc::Rc::new(TestCode::new());
    for frames in [16usize, 256, 4096] {
        let cfg =
            Config::builder().segment_slots(frames * 8 + 1024).frame_bound(64).build().unwrap();
        let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
        sim::push_frames(&mut stack, &code, frames, 8);
        let k = stack.capture();
        // Walk the sealed segment through the public walker API.
        let iters = 2_000;
        let start = Instant::now();
        let mut total = 0usize;
        for _ in 0..iters {
            // The capture sealed [0, frames*8); rebuild the walk each time.
            total += k.chain_len();
            total += k.retained_slots();
        }
        let retained_nanos = start.elapsed().as_nanos() as f64 / iters as f64;
        // Direct frame walk over a reconstructed buffer.
        let buf: Vec<TestSlot> = {
            // Reconstruct an equivalent occupied segment for the walker.
            let code2 = TestCode::new();
            let mut b = vec![TestSlot::Empty; frames * 8 + 8];
            b[0] = TestSlot::Ra(segstack_core::ReturnAddress::Exit);
            let mut fbase = 0usize;
            let mut prev = None;
            for _ in 0..frames {
                if let Some(ra) = prev {
                    b[fbase] = TestSlot::Ra(segstack_core::ReturnAddress::Code(ra));
                }
                prev = Some(code2.ret_point(8));
                fbase += 8;
            }
            let start = Instant::now();
            let mut n = 0usize;
            for _ in 0..iters {
                n += segstack_core::walker::frames(&b, 0, fbase, prev.unwrap(), &code2).len();
            }
            let nanos = start.elapsed().as_nanos() as f64 / iters as f64;
            t.row([frames.to_string(), fmt_ns(nanos), format!("{:.1}", nanos / frames as f64)]);
            let _ = n;
            let _ = retained_nanos;
            b
        };
        let _ = (buf, total);
    }
    t.note(
        "linear in frames with a small per-frame constant: one displacement \
            lookup and one slot read per frame",
    );
    t
}

/// E5 — capture microbenchmark across all strategies at fixed depth.
pub fn e05_capture_all() -> Table {
    let mut t = Table::new(
        "E5: capture at depth 1000, all strategies",
        "capture is O(1) for segmented/heap/hybrid, O(n) for copy, and a cache flush \
         for the stack cache (Fig 5, §2)",
        &["strategy", "ns/capture", "slots copied/capture", "heap slots/capture"],
    );
    let src = w::capture_at_depth(1000, 2000);
    for s in Strategy::ALL {
        let r = measure_on(s, &cfg_default(), &src);
        let caps = r.metrics.captures.max(1) as f64;
        t.row([
            s.to_string(),
            format!("{:.0}", r.nanos / caps),
            format!("{:.1}", r.metrics.slots_copied as f64 / caps),
            format!("{:.1}", r.metrics.heap_slots_allocated as f64 / caps),
        ]);
    }
    t
}

/// E6 — reinstatement microbenchmark across all strategies.
pub fn e06_reinstate_all() -> Table {
    let mut t = Table::new(
        "E6: reinstate a depth-1000 continuation, all strategies",
        "reinstatement is bounded for segmented (copy bound), O(n) for copy, block \
         refill for cache, O(1) for heap/hybrid (Fig 6, §6)",
        &["strategy", "ns/reinstate", "slots copied/reinstate"],
    );
    let src = reinstate_latency(1000, 2000);
    for s in Strategy::ALL {
        let r = measure_on(s, &cfg_default(), &src);
        let n = r.metrics.reinstatements.max(1) as f64;
        t.row([
            s.to_string(),
            format!("{:.0}", r.nanos / n),
            format!("{:.1}", r.metrics.slots_copied as f64 / n),
        ]);
    }
    t
}

/// E7 — the copy-bound parameter sweep (§4: "determined only by
/// experimentation").
pub fn e07_copybound_sweep() -> Table {
    let mut t = Table::new(
        "E7: copy-bound sweep (segmented)",
        "small bounds split often; huge bounds copy too much per reinstatement; the \
         best value sits in between and can only be found by experiment (§4)",
        &["copy bound", "workload", "time", "splits", "slots copied"],
    );
    for bound in [4usize, 16, 64, 128, 512, 2048] {
        let cfg = Config::builder()
            .segment_slots(16 * 1024)
            .frame_bound(64)
            .copy_bound(bound)
            .build()
            .unwrap();
        for (name, src) in [
            ("ctak 14 10 4", w::ctak(14, 10, 4)),
            ("reinstate d=2000", reinstate_latency(2000, 2000)),
            ("deep-sum 60k", w::deep_sum(60_000)),
        ] {
            let r = measure_on(Strategy::Segmented, &cfg, &src);
            t.row([
                bound.to_string(),
                name.to_string(),
                fmt_ns(r.nanos),
                r.metrics.splits.to_string(),
                r.metrics.slots_copied.to_string(),
            ]);
        }
    }
    t
}

/// E8 — overflow-check cost and elision (Fig 8, §5).
pub fn e08_overflow_checks() -> Table {
    let mut t = Table::new(
        "E8: overflow-check policies (segmented)",
        "explicit checks are one register compare per call; leaves and tail loops \
         never check; static elision removes more (Fig 8, §5)",
        &["workload", "policy", "time", "checks executed", "checks elided"],
    );
    // `Never` is only sound when the segment outruns the recursion.
    let big = Config::builder().segment_slots(4 * 1024 * 1024).frame_bound(64).build().unwrap();
    for (name, src) in [
        ("fib 22", w::fib(22)),
        ("tak 16 10 4", w::tak(16, 10, 4)),
        ("tail-loop 300k", w::tail_loop(300_000)),
        ("leaf-heavy sort 600", w::sort(600)),
        ("lcg-let-loop 300k", w::lcg_let_loop(300_000)),
    ] {
        for (label, policy, stable) in [
            ("always", CheckPolicy::Always, false),
            ("elide", CheckPolicy::Elide, false),
            ("elide+stable", CheckPolicy::Elide, true),
            ("never", CheckPolicy::Never, false),
        ] {
            let mut e = Engine::builder()
                .strategy(Strategy::Segmented)
                .config(big.clone())
                .check_policy(policy)
                .stable_primitive_bindings(stable)
                .build()
                .expect("engine construction");
            let r = measure(&mut e, "", &src);
            t.row([
                name.to_string(),
                label.to_string(),
                fmt_ns(r.nanos),
                r.metrics.checks_executed.to_string(),
                r.metrics.checks_elided.to_string(),
            ]);
        }
    }
    t.note(
        "primitive applications never push frames, so they are check-free leaf \
            calls by construction; tail calls never check in any policy",
    );
    t.note(
        "elide+stable adds the stable-primitive-bindings promise: direct \
            applications of lambdas (`let` bodies) that only call primitives are \
            proven to fit the two-frame reserve and drop their checks too",
    );
    t
}

/// E9 — the overflow/underflow "bouncing" phenomenon (§2).
pub fn e09_bouncing() -> Table {
    let mut t = Table::new(
        "E9: boundary loop — stack cache bouncing vs. segmented recovery",
        "a loop straddling the cache boundary makes the worst case the average case \
         for the stack-cache model; the segmented stack settles into a new segment \
         (§2, §5)",
        &["park depth", "strategy", "time", "overflows", "underflows", "slots copied"],
    );
    let cfg = Config::builder().segment_slots(512).frame_bound(48).copy_bound(32).build().unwrap();
    let iters = 20_000u32;
    // Find the parking depth that puts the crossing loop exactly on the
    // cache boundary: the shallowest depth at which one iteration already
    // overflows the cache.
    let boundary = (1u32..200)
        .find(|&d| {
            let mut e = engine(Strategy::Cache, &cfg, CheckPolicy::Elide);
            let r = measure(&mut e, "", &w::boundary_loop(d, 2));
            r.metrics.overflows > 0
        })
        .expect("cache boundary within 200 frames");
    for depth in [boundary.saturating_sub(4), boundary.saturating_sub(1), boundary] {
        for s in [Strategy::Cache, Strategy::Segmented] {
            let src = w::boundary_loop(depth, iters);
            let r = measure_on(s, &cfg, &src);
            t.row([
                depth.to_string(),
                s.to_string(),
                fmt_ns(r.nanos),
                r.metrics.overflows.to_string(),
                r.metrics.underflows.to_string(),
                r.metrics.slots_copied.to_string(),
            ]);
        }
    }
    t.note(
        "cache overflow/underflow each copy ~a cacheful; segmented overflow moves \
            only the partial frame and keeps running in the new segment",
    );
    t
}

/// E10 — the looper: tail-recursive capture in constant space (§4).
pub fn e10_looper() -> Table {
    let mut t = Table::new(
        "E10: (looper n) — repeated tail-position capture",
        "capturing on an empty segment reuses the record's link: the control stack \
         must not grow (§4)",
        &["strategy", "time", "captures", "segments/frames allocated", "chain at end"],
    );
    for s in Strategy::ALL {
        let mut e = engine(s, &cfg_default(), CheckPolicy::Elide);
        let r = measure(&mut e, "", &w::looper(200_000));
        let alloc = r.metrics.segments_allocated + r.metrics.heap_frames_allocated;
        t.row([
            s.to_string(),
            fmt_ns(r.nanos),
            r.metrics.captures.to_string(),
            alloc.to_string(),
            e.stack_stats().chain_records.to_string(),
        ]);
    }
    t.note(
        "heap-family strategies allocate per call by design, but the *chain* \
            stays constant for every strategy",
    );
    t
}

/// E11 — memory retained by repeated capture (Danvy's concern, §6).
pub fn e11_repeated_capture() -> Table {
    let mut t = Table::new(
        "E11: memory retained by K captures of one depth-D stack",
        "the naive copy model retains K full copies; the segmented model shares one \
         sealed image across all K; heap/hybrid share the frame list (§6, Danvy)",
        &[
            "strategy",
            "K",
            "D",
            "sum of per-kont reachable slots",
            "heap slots allocated",
            "slots copied",
        ],
    );
    let (k_count, depth) = (25u32, 800u32);
    let src = format!(
        "(define ks '())
         (define (grab i)
           (if (= i 0)
               (length ks)
               (begin (%call/cc (lambda (k) (set! ks (cons k ks)))) (grab (- i 1)))))
         (define (deep n thunk) (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))
         (deep {depth} (lambda () (grab {k_count})))"
    );
    for s in Strategy::ALL {
        let mut e = engine(s, &cfg_default(), CheckPolicy::Elide);
        let r = measure(&mut e, "", &src);
        let retained: usize = match e.global("ks") {
            Some(v) => v
                .list_to_vec()
                .expect("ks is a list")
                .iter()
                .map(|x| match x {
                    Value::Kont(k) => k.retained_slots(),
                    _ => 0,
                })
                .sum(),
            None => 0,
        };
        t.row([
            s.to_string(),
            k_count.to_string(),
            depth.to_string(),
            retained.to_string(),
            r.metrics.heap_slots_allocated.to_string(),
            r.metrics.slots_copied.to_string(),
        ]);
    }
    t.note(
        "per-kont sums double-count shared structure, so they match across \
            strategies; the real memory cost is 'heap slots allocated': copy/cache \
            materialize K full images (Danvy's blowup) while segmented shares the one \
            sealed stack and heap/hybrid share the frame list",
    );
    t
}

/// E12 — continuation-intensive programs: segmented vs. heap (§1: "at worst
/// a constant factor slower").
pub fn e12_cont_intensive() -> Table {
    let mut t = Table::new(
        "E12: continuation-intensive programs, segmented relative to heap",
        "for continuation-intensive programs the segmented stack is at worst a small \
         constant factor slower than the heap model (§1)",
        &["workload", "heap", "segmented", "seg/heap"],
    );
    for (name, src) in [
        ("ctak 14 10 4", w::ctak(14, 10, 4)),
        ("generator drain 50x200", w::generator_drain(50, 200)),
        ("capture@500 x2000", w::capture_at_depth(500, 2000)),
        ("reinstate d=1000 x2000", reinstate_latency(1000, 2000)),
    ] {
        let heap = measure_on(Strategy::Heap, &cfg_default(), &src);
        let seg = measure_on(Strategy::Segmented, &cfg_default(), &src);
        t.row([
            name.to_string(),
            fmt_ns(heap.nanos),
            fmt_ns(seg.nanos),
            fmt_ratio(seg.nanos / heap.nanos),
        ]);
    }
    t
}

/// E13 — typical programs: segmented vs. heap (§1: "significantly faster").
pub fn e13_typical() -> Table {
    let mut t = Table::new(
        "E13: typical (continuation-free) programs, segmented relative to heap",
        "for typical programs the segmented stack is significantly faster than the \
         heap model (§1)",
        &["workload", "heap", "segmented", "seg/heap"],
    );
    for (name, src) in [
        ("fib 22", w::fib(22)),
        ("tak 18 12 6", w::tak(18, 12, 6)),
        ("sort 600", w::sort(600)),
        ("deriv nest-17", w::deriv(17)),
        ("queens 7", w::queens_plain(7)),
        ("boyer 25", w::boyer(25)),
        ("tail-loop 300k", w::tail_loop(300_000)),
    ] {
        let heap = measure_on(Strategy::Heap, &cfg_default(), &src);
        let seg = measure_on(Strategy::Segmented, &cfg_default(), &src);
        t.row([
            name.to_string(),
            fmt_ns(heap.nanos),
            fmt_ns(seg.nanos),
            fmt_ratio(seg.nanos / heap.nanos),
        ]);
    }
    t
}

/// E14 — static frame-size distribution (§6: "99% of all frames are smaller
/// than 30 words").
pub fn e14_frame_sizes() -> Table {
    let mut t = Table::new(
        "E14: static frame sizes of the compiled corpus",
        "Chez's static analysis found 99% of frames smaller than 30 words; our \
         compiled corpus (prelude + control libraries + workloads) is analyzed the \
         same way (§6)",
        &["metric", "slots"],
    );
    let mut e = Engine::new().expect("engine");
    for src in [
        segstack_control::libs::COROUTINES,
        segstack_control::libs::GENERATORS,
        segstack_control::libs::ENGINES,
        segstack_control::libs::AMB,
    ] {
        e.eval(src).expect("control library");
    }
    for src in [
        w::fib(5),
        w::tak(3, 2, 1),
        w::ctak(3, 2, 1),
        w::sort(4),
        w::deriv(2),
        w::queens_plain(4),
        w::generator_drain(2, 1),
        w::deep_sum(5),
        w::tail_loop(5),
        w::looper(2),
    ] {
        e.eval(&src).expect("workload");
    }
    let mut sizes = e.frame_sizes();
    sizes.sort_unstable();
    let n = sizes.len();
    let pct = |p: f64| sizes[(((n - 1) as f64) * p) as usize];
    let under_30 = sizes.iter().filter(|&&s| s < 30).count() as f64 / n as f64 * 100.0;
    t.row(["chunks compiled".into(), n.to_string()]);
    t.row(["median frame".into(), pct(0.5).to_string()]);
    t.row(["p90 frame".into(), pct(0.9).to_string()]);
    t.row(["p99 frame".into(), pct(0.99).to_string()]);
    t.row(["max frame".into(), sizes[n - 1].to_string()]);
    t.row(["% under 30 slots".into(), format!("{under_30:.1}%")]);
    t
}

/// E15 — worker-count scaling of the serve runtime (engines from
/// continuations as a multi-worker service; §4–§5 engine application).
pub fn e15_serve_scaling() -> Table {
    let mut t = Table::new(
        "E15: serve-runtime throughput vs. worker count (mixed 400-job load)",
        "shared-nothing workers with engine-quantum preemption scale aggregate \
         throughput near-linearly until the host runs out of cores; fairness stays \
         flat because quanta are granted round-robin",
        &[
            "workers",
            "strategy",
            "jobs",
            "jobs/s",
            "speedup vs 1",
            "p50 latency",
            "p99 latency",
            "fairness",
        ],
    );
    let (jobs, quantum, seed) = (400usize, 5_000u64, 42u64);
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let r = crate::serve_load::run_load(workers, jobs, quantum, seed);
        assert_eq!(r.failed, 0, "load run must complete cleanly");
        let tput = r.throughput();
        let base_tput = *base.get_or_insert(tput);
        t.row([
            workers.to_string(),
            "(all)".to_string(),
            r.completed.to_string(),
            format!("{tput:.0}"),
            fmt_ratio(tput / base_tput),
            fmt_ns(r.latency_pct(0.50).as_nanos() as f64),
            fmt_ns(r.latency_pct(0.99).as_nanos() as f64),
            format!("{:.2}", r.fairness()),
        ]);
        let wall = r.wall.as_secs_f64().max(1e-9);
        for (name, samples) in r.by_strategy() {
            let p = |q: f64| crate::serve_load::percentile(samples.iter().map(|s| s.latency), q);
            t.row([
                workers.to_string(),
                name,
                samples.len().to_string(),
                format!("{:.0}", samples.len() as f64 / wall),
                String::new(),
                fmt_ns(p(0.50).as_nanos() as f64),
                fmt_ns(p(0.99).as_nanos() as f64),
                String::new(),
            ]);
        }
    }
    t.note(
        "each worker owns its engines outright (the VM is deliberately not \
            Send); the only cross-thread traffic is the bounded admission queue",
    );
    t.note(
        "latency counts queue wait (all 400 jobs are submitted up front), so \
            per-job latency falls with worker count alongside aggregate throughput",
    );
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    t.note(format!(
        "this host exposes {cores} core(s); speedup saturates at min(workers, cores) — \
         a flat curve on a 1-core host measures pure scheduling overhead (~5-10%)"
    ));
    t
}

/// E16 — coroutine ping-pong: multi-shot `%call/cc` vs. one-shot
/// `%call/1cc` switches (the relink fast path at the Scheme level).
pub fn e16_pingpong() -> Table {
    let mut t = Table::new(
        "E16: coroutine ping-pong — %call/cc vs. %call/1cc switches",
        "declaring a switch continuation one-shot lets the segmented stack reinstate \
         it by relinking the suspended side's segment chain; the copy path's \
         per-switch slot traffic disappears",
        &[
            "strategy",
            "capture",
            "time",
            "ns/switch",
            "slots copied/switch",
            "relinked switches",
            "copy slots avoided",
        ],
    );
    // Sides parked deep enough that each lives past a segment boundary.
    let cfg =
        Config::builder().segment_slots(2048).frame_bound(64).copy_bound(128).build().unwrap();
    let (spacer, rounds) = (600u32, 20_000u32);
    for s in Strategy::ALL {
        for cap in ["%call/cc", "%call/1cc"] {
            let src = w::pingpong(cap, spacer, rounds);
            let r = measure_on(s, &cfg, &src);
            let switches = r.metrics.reinstatements.max(1) as f64;
            t.row([
                s.to_string(),
                cap.to_string(),
                fmt_ns(r.nanos),
                format!("{:.0}", r.nanos / switches),
                format!("{:.1}", r.metrics.slots_copied as f64 / switches),
                r.metrics.reinstates_relinked.to_string(),
                r.metrics.slots_copy_avoided.to_string(),
            ]);
        }
    }
    t.note(
        "every strategy accepts %call/1cc (the one-shot contract is checked \
            uniformly); only the segmented machine converts it into zero-copy relinks",
    );
    t
}

/// E17 — reinstatement cost vs. chain depth: the unshared one-shot fast
/// path stays flat while the shared copy path grows linearly (core-level).
pub fn e17_relink_depth() -> Table {
    let mut t = Table::new(
        "E17: reinstate cost vs. continuation depth — relink vs. copy (core)",
        "with a uniquely-owned one-shot target the segmented stack relinks in O(1) \
         and copies nothing at any depth; a shared multi-shot target of the same \
         shape pays a copy linear in depth (copy bound set above the deepest image)",
        &[
            "depth",
            "target",
            "ns/reinstate",
            "slots copied/reinstate",
            "relinked",
            "copy slots avoided",
        ],
    );
    let rounds = 400u32;
    let code = std::rc::Rc::new(TestCode::new());
    for depth in [64usize, 256, 1024, 4096] {
        // One segment holds the whole tower and the copy bound never
        // splits, so the copy path pays the full image every time.
        let slots = depth * 8 + 4096;
        let cfg = Config::builder()
            .segment_slots(slots)
            .frame_bound(64)
            .copy_bound(slots)
            .build()
            .unwrap();
        for one_shot in [true, false] {
            let mut stack = SegmentedStack::<TestSlot>::new(cfg.clone(), code.clone()).unwrap();
            sim::push_frames(&mut stack, &code, depth, 8);
            stack.metrics_mut().reset();
            let start = Instant::now();
            for _ in 0..rounds {
                sim::push_frames(&mut stack, &code, 1, 8);
                let k = if one_shot { stack.capture_one_shot() } else { stack.capture() };
                // Resume from an unrelated context (a scheduler's empty
                // stack): the machine detaches from the sealed tower, so
                // the only remaining handle is the continuation itself.
                stack.reset();
                stack.reinstate(&k).expect("reinstate");
            }
            let nanos = start.elapsed().as_nanos() as f64;
            let m = stack.metrics();
            let n = m.reinstatements.max(1) as f64;
            t.row([
                depth.to_string(),
                if one_shot { "one-shot (unshared)" } else { "multi-shot (shared)" }.to_string(),
                format!("{:.0}", nanos / n),
                format!("{:.1}", m.slots_copied as f64 / n),
                m.reinstates_relinked.to_string(),
                m.slots_copy_avoided.to_string(),
            ]);
        }
    }
    t.note(
        "each round seals the whole tower and reinstates it once; the one-shot \
            handle dies with the reinstatement, so the record is relinked in place — \
            slots copied stays exactly 0 while the shared path scales with depth",
    );
    t
}

/// A1 — ablation: the §4 empty-segment capture rule on vs. off.
pub fn a1_tail_rule() -> Table {
    let mut t = Table::new(
        "A1 (ablation): the empty-segment capture rule, on vs. off",
        "without the rule, every tail-position capture chains a record and the \
         control stack grows without bound — the §4 looper failure",
        &["looper n", "rule", "time", "records allocated", "chain at end"],
    );
    for n in [20_000u32, 100_000] {
        for on in [true, false] {
            let cfg = if on {
                Config::default()
            } else {
                Config::builder().disable_tail_capture_rule().build().unwrap()
            };
            let mut e = engine(Strategy::Segmented, &cfg, CheckPolicy::Elide);
            let r = measure(&mut e, "", &w::looper(n));
            t.row([
                n.to_string(),
                if on { "on (paper)" } else { "off (naive)" }.to_string(),
                fmt_ns(r.nanos),
                r.metrics.stack_records_allocated.to_string(),
                e.stack_stats().chain_records.to_string(),
            ]);
        }
    }
    t.note(
        "with the rule: O(1) records regardless of n; without: one record per \
            capture, linearly growing memory and teardown cost",
    );
    t
}

/// A2 — ablation: segment size.
pub fn a2_segment_size() -> Table {
    let mut t = Table::new(
        "A2 (ablation): segment size vs. overflow frequency",
        "segments are allocated in large chunks to reduce the frequency of stack \
         overflows (§4); small segments trade memory for overflow churn",
        &["segment slots", "workload", "time", "overflows", "slots copied"],
    );
    for slots in [256usize, 1024, 4096, 16 * 1024, 64 * 1024] {
        let cfg =
            Config::builder().segment_slots(slots).frame_bound(64).copy_bound(128).build().unwrap();
        for (name, src) in
            [("deep-sum 60k", w::deep_sum(60_000)), ("ctak 14 10 4", w::ctak(14, 10, 4))]
        {
            let r = measure_on(Strategy::Segmented, &cfg, &src);
            t.row([
                slots.to_string(),
                name.to_string(),
                fmt_ns(r.nanos),
                r.metrics.overflows.to_string(),
                r.metrics.slots_copied.to_string(),
            ]);
        }
    }
    t
}

/// A3 — ablation: segment pooling on vs. off.
pub fn a3_pooling() -> Table {
    let mut t = Table::new(
        "A3 (ablation): segment reuse pool on vs. off",
        "retired segments are pooled so steady-state overflow/underflow cycles do \
         not thrash the allocator (implementation choice; the paper allocates \
         segments from the heap)",
        &["pool", "workload", "time", "fresh segments", "reused segments"],
    );
    for pool in [0usize, 4] {
        let cfg = Config::builder()
            .segment_slots(512)
            .frame_bound(48)
            .copy_bound(32)
            .pool_segments(pool)
            .build()
            .unwrap();
        let src = "(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1)))))
                   (do ((i 0 (+ i 1))) ((= i 200)) (sum 100))";
        let r = measure_on(Strategy::Segmented, &cfg, src);
        t.row([
            if pool == 0 { "off".into() } else { format!("{pool} segments") },
            "200 x (sum 100)".to_string(),
            fmt_ns(r.nanos),
            r.metrics.segments_allocated.to_string(),
            r.metrics.segments_reused.to_string(),
        ]);
    }
    t
}

/// Builds a segmented engine recording into `sink`.
fn traced_engine(cfg: &Config, sink: Rc<RefCell<RingSink>>) -> Engine {
    Engine::builder()
        .strategy(Strategy::Segmented)
        .config(cfg.clone())
        .check_policy(CheckPolicy::Elide)
        .trace_sink(sink)
        .build()
        .expect("traced engine construction")
}

/// E18 — event-tracing overhead: the zero-sized noop sink vs. the
/// recording ring, on the E1 call workloads and the E16 switch workload.
pub fn e18_trace_overhead() -> Table {
    let mut t = Table::new(
        "E18: event-tracing overhead — noop sink vs. recording ring",
        "instrumentation is a zero-cost generic: with the noop sink the hooks \
         compile away entirely, so the default build pays nothing; the recording \
         ring prices every capture/reinstate/overflow/underflow at one ring write",
        &["workload", "sink", "time", "overhead", "events recorded", "events dropped"],
    );
    let e16_cfg =
        Config::builder().segment_slots(2048).frame_bound(64).copy_bound(128).build().unwrap();
    let workloads = [
        ("fib 20 (E1 calls)", w::fib(20), Config::default()),
        ("tail-loop 300k (E1)", w::tail_loop(300_000), Config::default()),
        ("pingpong %call/cc 600x6k (E16)", w::pingpong("%call/cc", 600, 6_000), e16_cfg.clone()),
        ("pingpong %call/1cc 600x20k (E16)", w::pingpong("%call/1cc", 600, 20_000), e16_cfg),
    ];
    let reps = 5;
    for (name, src, cfg) in workloads {
        // One warm pass off the measured engines, then interleaved
        // noop/ring pairs: the host allocator's state drifts over a long
        // harness run, so only a ratio taken *within* a pair isolates the
        // sink cost — the median pair ratio is the reported overhead.
        engine(Strategy::Segmented, &cfg, CheckPolicy::Elide).eval(&src).expect("warmup");
        let sink = Rc::new(RefCell::new(RingSink::new()));
        let mut noop_best = f64::MAX;
        let mut ring_best = f64::MAX;
        let mut ratios = Vec::with_capacity(reps);
        for rep in 0..reps {
            // Alternate which sink runs first within the pair, so any
            // monotone drift inside a pair biases half the ratios up and
            // half down — the median cancels it.
            let run_noop = |_: usize| {
                let mut e = engine(Strategy::Segmented, &cfg, CheckPolicy::Elide);
                measure(&mut e, "", &src)
            };
            let run_ring = |_: usize| {
                sink.borrow_mut().reset();
                let mut e = traced_engine(&cfg, sink.clone());
                measure(&mut e, "", &src)
            };
            let (noop, ring) = if rep % 2 == 0 {
                let n = run_noop(rep);
                (n, run_ring(rep))
            } else {
                let r = run_ring(rep);
                (run_noop(rep), r)
            };
            noop_best = noop_best.min(noop.nanos);
            ring_best = ring_best.min(ring.nanos);
            ratios.push(ring.nanos / noop.nanos);
        }
        ratios.sort_by(f64::total_cmp);
        let overhead = (ratios[reps / 2] - 1.0) * 100.0;
        let (recorded, dropped) = (sink.borrow().total_recorded(), sink.borrow().dropped());
        t.row([
            name.to_string(),
            "noop".to_string(),
            fmt_ns(noop_best),
            "(baseline)".to_string(),
            "0".to_string(),
            "0".to_string(),
        ]);
        t.row([
            name.to_string(),
            "ring".to_string(),
            fmt_ns(ring_best),
            format!("{overhead:+.1}%"),
            recorded.to_string(),
            dropped.to_string(),
        ]);
    }
    t.note(
        "measured on the segmented strategy, where every hook fires; call-only \
            workloads emit few events (overflow/underflow only) while the switch \
            workload writes several events per reinstatement — the worst case",
    );
    t.note(
        "the ring is drop-oldest at fixed capacity, so recording cost is flat: \
            aggregates (counts, histograms) survive any number of drops",
    );
    t.note(
        "overhead is the median of per-pair time ratios (noop and ring measured \
            back-to-back), which cancels allocator drift across a long harness run; \
            times shown are each sink's best rep",
    );
    t
}

/// E19 — the raw-speed overhaul: interprocedural check elision plus the
/// superinstruction/inline-cache dispatch rework, priced against the
/// unsound `never` floor (Fig 8, §5).
///
/// `never` compiles every call check-free, which is only sound here
/// because the segment outruns the recursion; the gap between the best
/// sound policy and `never` is the residual cost of overflow safety.
pub fn e19_interproc_checks() -> Table {
    let mut t = Table::new(
        "E19: interprocedural elision + dispatch overhaul vs the unchecked floor",
        "the bounded-depth call-graph analysis extends the Figure 8 two-frame \
         reserve through whole proven subgraphs, and the fused-dispatch VM \
         (superinstructions, monomorphic inline caches) shrinks the per-call \
         baseline every policy shares",
        &[
            "workload",
            "policy",
            "time",
            "vs never",
            "checks executed",
            "interproc elided",
            "ic hits",
            "ic misses",
        ],
    );
    // `Never` is only sound when the segment outruns the recursion.
    let big = Config::builder().segment_slots(4 * 1024 * 1024).frame_bound(64).build().unwrap();
    let mk = |policy: CheckPolicy, stable: bool, interproc: bool| -> Engine {
        Engine::builder()
            .strategy(Strategy::Segmented)
            .config(big.clone())
            .check_policy(policy)
            .stable_primitive_bindings(stable)
            .interprocedural_elision(interproc)
            .build()
            .expect("engine construction")
    };
    let reps = 5;
    for (name, src) in [
        ("fib 22", w::fib(22)),
        ("tak 16 10 4", w::tak(16, 10, 4)),
        ("lcg-let-loop 300k", w::lcg_let_loop(300_000)),
        ("leaf-heavy sort 600", w::sort(600)),
        ("nested-helper 200k", w::nested_helper(200_000)),
    ] {
        mk(CheckPolicy::Elide, false, false).eval(&src).expect("warmup");
        let mut never_best = f64::MAX;
        let mut never_metrics = Metrics::default();
        for (label, policy, stable, interproc) in [
            ("always", CheckPolicy::Always, false, false),
            ("elide", CheckPolicy::Elide, false, false),
            ("elide+stable", CheckPolicy::Elide, true, false),
            ("elide+stable+interproc", CheckPolicy::Elide, true, true),
        ] {
            // Interleaved pairs (the E18 methodology): the policy under
            // test and the `never` floor run back to back in alternating
            // order, and the reported gap is the median per-pair ratio —
            // allocator drift over the harness run cancels out.
            let mut ratios = Vec::with_capacity(reps);
            let mut best = f64::MAX;
            let mut metrics = Metrics::default();
            for rep in 0..reps {
                let (p, n) = if rep % 2 == 0 {
                    let p = measure(&mut mk(policy, stable, interproc), "", &src);
                    (p, measure(&mut mk(CheckPolicy::Never, false, false), "", &src))
                } else {
                    let n = measure(&mut mk(CheckPolicy::Never, false, false), "", &src);
                    (measure(&mut mk(policy, stable, interproc), "", &src), n)
                };
                assert_eq!(p.value, n.value, "{name}: policies must agree");
                never_best = never_best.min(n.nanos);
                best = best.min(p.nanos);
                ratios.push(p.nanos / n.nanos);
                metrics = p.metrics;
                never_metrics = n.metrics;
            }
            ratios.sort_by(f64::total_cmp);
            let gap = (ratios[reps / 2] - 1.0) * 100.0;
            t.row([
                name.to_string(),
                label.to_string(),
                fmt_ns(best),
                format!("{gap:+.1}%"),
                metrics.checks_executed.to_string(),
                metrics.checks_elided_interproc.to_string(),
                metrics.ic_hits.to_string(),
                metrics.ic_misses.to_string(),
            ]);
        }
        t.row([
            name.to_string(),
            "never".to_string(),
            fmt_ns(never_best),
            "(floor)".to_string(),
            never_metrics.checks_executed.to_string(),
            never_metrics.checks_elided_interproc.to_string(),
            never_metrics.ic_hits.to_string(),
            never_metrics.ic_misses.to_string(),
        ]);
    }
    t.note(
        "vs-never is the median of per-pair time ratios (policy and floor \
            measured back-to-back in alternating order); times shown are each \
            policy's best rep",
    );
    t.note(
        "fib and tak are self-recursive, so their call heights are unbounded \
            and the interprocedural pass proves nothing there — the gap those \
            rows close comes from the shared dispatch overhaul; nested-helper \
            is the shape where only the transitive analysis can drop checks",
    );
    t.note(
        "interproc elided counts non-tail closure calls that skipped the \
            check under the bounded-depth proof; they are a subset of the \
            checks-elided total",
    );
    t
}

/// The harness `--trace-out` body: a canonical continuation-heavy run on
/// a traced segmented engine (one-shot coroutine switches past a segment
/// boundary, then the ctak torture test), drained as one core timeline.
pub fn traced_core_trace() -> Vec<OwnerTrace> {
    let cfg =
        Config::builder().segment_slots(2048).frame_bound(64).copy_bound(128).build().unwrap();
    let sink = Rc::new(RefCell::new(RingSink::new()));
    let mut e = traced_engine(&cfg, sink.clone());
    e.eval(&w::pingpong("%call/1cc", 600, 2_000)).expect("pingpong workload");
    e.eval(&w::ctak(12, 8, 4)).expect("ctak workload");
    let trace = sink.borrow_mut().take_trace("segmented-core", 1);
    vec![trace]
}

/// An experiment's id and generator function.
pub type Experiment = (&'static str, fn() -> Table);

/// Every experiment in order.
pub fn all() -> Vec<Experiment> {
    vec![
        ("e01", e01_calls),
        ("e02", e02_capture_depth),
        ("e03", e03_reinstate_size),
        ("e04", e04_walk),
        ("e05", e05_capture_all),
        ("e06", e06_reinstate_all),
        ("e07", e07_copybound_sweep),
        ("e08", e08_overflow_checks),
        ("e09", e09_bouncing),
        ("e10", e10_looper),
        ("e11", e11_repeated_capture),
        ("e12", e12_cont_intensive),
        ("e13", e13_typical),
        ("e14", e14_frame_sizes),
        ("e15", e15_serve_scaling),
        ("e16", e16_pingpong),
        ("e17", e17_relink_depth),
        ("e18", e18_trace_overhead),
        ("e19", e19_interproc_checks),
        ("a1", a1_tail_rule),
        ("a2", a2_segment_size),
        ("a3", a3_pooling),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke-check the cheap experiments end to end (heavy ones run via the
    /// harness binary / criterion).
    #[test]
    fn frame_size_analysis_runs() {
        let t = e14_frame_sizes();
        assert!(t.rows.iter().any(|r| r[0] == "% under 30 slots"));
    }

    #[test]
    fn walk_experiment_runs() {
        let t = e04_walk();
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn measure_reports_counters() {
        let mut e = engine(Strategy::Segmented, &Config::default(), CheckPolicy::Elide);
        let r = measure(&mut e, "(define (f x) (+ x 1))", "(f 1)");
        assert_eq!(r.value, "2");
        assert!(r.metrics.call_interface_ops() >= 1);
        assert!(r.nanos > 0.0);
    }
}
