//! Plain-text result tables for the experiment harness.

use std::fmt;

/// One experiment's result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id and title, e.g. `"E2: capture cost vs. stack depth"`.
    pub title: String,
    /// The paper claim this experiment checks.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form observations appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn row<I: IntoIterator<Item = String>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.title);
        self.rows.push(cells);
    }

    /// Appends an observation note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders the table as one JSON object (hand-rolled: the workspace
    /// deliberately has no serialization dependency). Cells stay strings —
    /// consumers parse the few numeric columns they care about.
    pub fn to_json(&self) -> String {
        let strs = |items: &[String]| -> String {
            let quoted: Vec<String> =
                items.iter().map(|s| format!("\"{}\"", json_escape(s))).collect();
            format!("[{}]", quoted.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| strs(r)).collect();
        format!(
            "{{\"title\":\"{}\",\"claim\":\"{}\",\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
            json_escape(&self.title),
            json_escape(&self.claim),
            strs(&self.headers),
            rows.join(","),
            strs(&self.notes),
        )
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        writeln!(f, "claim: {}", self.claim)?;
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for width in &w {
            write!(f, "{:-<width$}|", "", width = width + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "note: {n}")?;
        }
        Ok(())
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a nanoseconds-per-op figure compactly.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Formats a ratio like `1.73x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("E0: demo", "demo claim", &["name", "value"]);
        t.row(["segmented".to_string(), "1".to_string()]);
        t.row(["heap".to_string(), "12345".to_string()]);
        t.note("a note");
        let s = t.to_string();
        assert!(s.contains("## E0: demo"));
        assert!(s.contains("| segmented | 1     |"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_bad_rows() {
        let mut t = Table::new("t", "c", &["a", "b"]);
        t.row(["only-one".to_string()]);
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut t = Table::new("E0: \"demo\"", "claim\nline", &["a", "b"]);
        t.row(["x".to_string(), "1".to_string()]);
        t.note("n1");
        let j = t.to_json();
        assert!(j.contains("\"title\":\"E0: \\\"demo\\\"\""));
        assert!(j.contains("\"claim\":\"claim\\nline\""));
        assert!(j.contains("\"headers\":[\"a\",\"b\"]"));
        assert!(j.contains("\"rows\":[[\"x\",\"1\"]]"));
        assert!(j.contains("\"notes\":[\"n1\"]"));
    }

    #[test]
    fn formats_durations_and_ratios() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(4_500.0), "4.50 us");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ratio(1.234), "1.23x");
    }
}
