//! Load generation against the `segstack-serve` runtime.
//!
//! Shared by the `loadgen` binary and experiment E15: builds a
//! deterministic mixed workload (call-intensive, deep-recursive,
//! tail-looping and continuation-heavy jobs across all strategies),
//! drives it through a [`Runtime`], and reduces the outcomes to
//! throughput, latency percentiles and per-strategy fairness.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use segstack_baselines::Strategy;
use segstack_core::rng::SplitMix64;
use segstack_core::trace::OwnerTrace;
// Exact nearest-rank percentile, shared with the histogram module so the
// approximate (bucketed) readouts are checked against the same contract.
pub use segstack_core::trace::percentile;
use segstack_serve::{Request, Runtime, RuntimeConfig, RuntimeSnapshot};

use crate::workloads as w;

/// One workload class of the mix: a name, a program, and the value every
/// run must print (so the load test doubles as a correctness check).
pub struct JobClass {
    /// Short name used in reports ("fib", "ctak", ...).
    pub name: &'static str,
    /// The Scheme program.
    pub program: String,
    /// Expected printed result.
    pub expect: &'static str,
}

/// The four-class mix from the issue: fib / tak / tail-loop /
/// call-cc-heavy.
pub fn job_classes() -> Vec<JobClass> {
    vec![
        JobClass { name: "fib", program: w::fib(18), expect: "2584" },
        JobClass { name: "tak", program: w::tak(12, 8, 4), expect: "5" },
        JobClass { name: "tail-loop", program: w::tail_loop(30_000), expect: "30000" },
        JobClass { name: "ctak", program: w::ctak(12, 8, 4), expect: "5" },
    ]
}

/// One finished job, reduced to what the reports need.
pub struct Sample {
    /// Workload-class name.
    pub class: &'static str,
    /// Strategy the job ran on.
    pub strategy: Strategy,
    /// Submission-to-outcome latency.
    pub latency: Duration,
    /// Engine quanta the job was granted.
    pub quanta: u64,
    /// Timer ticks the job consumed.
    pub ticks: u64,
}

/// The outcome of one load run.
pub struct LoadReport {
    /// Worker count the runtime ran with.
    pub workers: usize,
    /// Jobs submitted (all of them — the generator blocks, never drops).
    pub submitted: usize,
    /// Jobs that returned their expected value.
    pub completed: usize,
    /// Jobs with any other outcome (wrong value, error, cancellation).
    pub failed: usize,
    /// Wall-clock time from first submission to last outcome.
    pub wall: Duration,
    /// Per-job samples, submission order.
    pub samples: Vec<Sample>,
    /// Final runtime metrics.
    pub snapshot: RuntimeSnapshot,
    /// Per-worker event traces (empty unless tracing was requested).
    pub traces: Vec<OwnerTrace>,
}

impl LoadReport {
    /// Aggregate throughput in jobs per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Latency percentile (0.0..=1.0) over all samples.
    pub fn latency_pct(&self, p: f64) -> Duration {
        percentile(self.samples.iter().map(|s| s.latency), p)
    }

    /// Samples grouped by strategy, in `Strategy::ALL` order.
    pub fn by_strategy(&self) -> BTreeMap<String, Vec<&Sample>> {
        let mut m = BTreeMap::new();
        for s in &self.samples {
            m.entry(s.strategy.to_string()).or_insert_with(Vec::new).push(s);
        }
        m
    }

    /// Samples grouped by workload class.
    pub fn by_class(&self) -> BTreeMap<&'static str, Vec<&Sample>> {
        let mut m = BTreeMap::new();
        for s in &self.samples {
            m.entry(s.class).or_insert_with(Vec::new).push(s);
        }
        m
    }

    /// Fairness across strategies: slowest mean latency over fastest.
    /// 1.0 is perfectly fair; large values mean some strategy's jobs
    /// were starved.
    pub fn fairness(&self) -> f64 {
        let means: Vec<f64> = self
            .by_strategy()
            .values()
            .filter(|v| !v.is_empty())
            .map(|v| v.iter().map(|s| s.latency.as_secs_f64()).sum::<f64>() / v.len() as f64)
            .collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        if min <= 0.0 {
            1.0
        } else {
            max / min
        }
    }
}

/// Runs `jobs` mixed jobs through a fresh runtime with `workers` workers.
///
/// Classes and strategies are interleaved round-robin and the submission
/// order is shuffled with `seed`, so every run of the same seed submits
/// the identical job sequence. Submission uses the blocking `submit`, so
/// a full queue applies back-pressure instead of dropping.
pub fn run_load(workers: usize, jobs: usize, quantum: u64, seed: u64) -> LoadReport {
    run_load_traced(workers, jobs, quantum, seed, false)
}

/// [`run_load`] with optional per-worker event tracing; the drained
/// traces land in [`LoadReport::traces`], ready for
/// [`segstack_core::trace::chrome_trace_json`].
pub fn run_load_traced(
    workers: usize,
    jobs: usize,
    quantum: u64,
    seed: u64,
    tracing: bool,
) -> LoadReport {
    let classes = job_classes();
    let mut order: Vec<usize> = (0..jobs).collect();
    let mut rng = SplitMix64::new(seed);
    rng.shuffle(&mut order);

    let rt = Runtime::start(
        RuntimeConfig::with_workers(workers)
            .quantum(quantum)
            .queue_depth(jobs.max(1))
            .tracing(tracing),
    );
    let start = Instant::now();
    let mut handles = Vec::with_capacity(jobs);
    for &i in &order {
        let class = &classes[i % classes.len()];
        let strategy = Strategy::ALL[i % Strategy::ALL.len()];
        let req = Request::new(class.program.clone()).strategy(strategy);
        let handle = rt.submit(req).expect("runtime accepting submissions");
        handles.push((class.name, class.expect, strategy, handle));
    }

    let mut samples = Vec::with_capacity(jobs);
    let mut completed = 0usize;
    let mut failed = 0usize;
    for (class, expect, strategy, handle) in handles {
        let outcome = handle.wait();
        match &outcome.result {
            Ok(v) if v == expect => completed += 1,
            _ => failed += 1,
        }
        samples.push(Sample {
            class,
            strategy,
            latency: outcome.latency,
            quanta: outcome.quanta,
            ticks: outcome.ticks,
        });
    }
    let wall = start.elapsed();
    let (snapshot, traces) = rt.shutdown_traced();
    LoadReport { workers, submitted: jobs, completed, failed, wall, samples, snapshot, traces }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_load_completes_everything() {
        let r = run_load(2, 24, 2_000, 7);
        assert_eq!(r.submitted, 24);
        assert_eq!(r.completed, 24);
        assert_eq!(r.failed, 0);
        assert_eq!(r.snapshot.total().completed, 24);
        assert_eq!(r.by_class().len(), 4);
        assert_eq!(r.by_strategy().len(), Strategy::ALL.len());
        assert!(r.fairness() >= 1.0);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        // Contract check on the re-exported helper: the bench reports
        // depend on exact nearest-rank semantics.
        let v = [1u64, 2, 3, 4].map(Duration::from_secs);
        assert_eq!(percentile(v.iter().copied(), 0.0), Duration::from_secs(1));
        assert_eq!(percentile(v.iter().copied(), 1.0), Duration::from_secs(4));
        assert_eq!(percentile(v.iter().copied(), 0.5), Duration::from_secs(3));
    }

    #[test]
    fn traced_load_collects_worker_timelines() {
        let r = run_load_traced(2, 8, 2_000, 3, true);
        assert_eq!(r.completed, 8);
        assert!(!r.traces.is_empty() && r.traces.len() <= 2, "one trace per worker that ran");
        let doc = segstack_core::trace::chrome_trace_json(&r.traces);
        segstack_core::trace::validate_chrome_trace(&doc).expect("loadgen trace must validate");
    }
}
