//! Runs a Scheme program on every control-stack strategy and prints a
//! comparison table: the experiment harness, pointed at *your* workload.
//!
//! ```sh
//! cargo run -p segstack-bench --release --bin compare -- path/to/prog.scm
//! cargo run -p segstack-bench --release --bin compare -- -e '(+ 1 2)'
//! ```
//!
//! Options:
//!
//! * `-e EXPR` — evaluate an expression instead of a file
//! * `--segment N`, `--copy-bound N`, `--frame-bound N` — stack configuration
//! * `--repeat N` — run the program N times per strategy (default 1)

use std::time::Instant;

use segstack_baselines::Strategy;
use segstack_bench::table::{fmt_ns, Table};
use segstack_core::Config;
use segstack_scheme::Engine;

struct Args {
    source: String,
    label: String,
    segment: usize,
    copy_bound: usize,
    frame_bound: usize,
    repeat: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut source = None;
    let mut label = String::new();
    let mut segment = 16 * 1024;
    let mut copy_bound = 128;
    let mut frame_bound = 64;
    let mut repeat = 1;
    while let Some(a) = args.next() {
        let mut take = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "-e" => {
                let expr = take("-e")?;
                label = expr.clone();
                source = Some(expr);
            }
            "--segment" => segment = take("--segment")?.parse().map_err(|e| format!("{e}"))?,
            "--copy-bound" => {
                copy_bound = take("--copy-bound")?.parse().map_err(|e| format!("{e}"))?
            }
            "--frame-bound" => {
                frame_bound = take("--frame-bound")?.parse().map_err(|e| format!("{e}"))?
            }
            "--repeat" => repeat = take("--repeat")?.parse().map_err(|e| format!("{e}"))?,
            "-h" | "--help" => {
                return Err("usage: compare [options] FILE.scm | -e EXPR".into());
            }
            path => {
                label = path.to_string();
                source = Some(
                    std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read {path}: {e}"))?,
                );
            }
        }
    }
    let source = source.ok_or("usage: compare [options] FILE.scm | -e EXPR")?;
    Ok(Args { source, label, segment, copy_bound, frame_bound, repeat })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let cfg = match Config::builder()
        .segment_slots(args.segment)
        .copy_bound(args.copy_bound)
        .frame_bound(args.frame_bound)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bad configuration: {e}");
            std::process::exit(2);
        }
    };

    let mut t = Table::new(
        format!("strategy comparison: {}", args.label),
        format!(
            "segment={} copy-bound={} frame-bound={} repeat={}",
            args.segment, args.copy_bound, args.frame_bound, args.repeat
        ),
        &[
            "strategy",
            "time",
            "result",
            "captures",
            "reinstates",
            "overflows",
            "slots copied",
            "heap frames",
        ],
    );
    let mut baseline: Option<f64> = None;
    for s in Strategy::ALL {
        let mut engine = match Engine::builder().strategy(s).config(cfg.clone()).build() {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{s}: {e}");
                continue;
            }
        };
        // Warm once to compile and populate globals, then measure.
        let warm = engine.eval(&args.source);
        engine.reset_metrics();
        let start = Instant::now();
        let mut result = warm.map(|v| v.to_string()).unwrap_or_else(|e| format!("error: {e}"));
        for _ in 0..args.repeat {
            match engine.eval(&args.source) {
                Ok(v) => result = v.to_string(),
                Err(e) => {
                    result = format!("error: {e}");
                    break;
                }
            }
        }
        let nanos = start.elapsed().as_nanos() as f64 / args.repeat.max(1) as f64;
        if baseline.is_none() {
            baseline = Some(nanos);
        }
        let m = engine.metrics();
        if result.len() > 24 {
            result.truncate(21);
            result.push_str("...");
        }
        t.row([
            format!("{s}{}", if Some(nanos) == baseline { " (ref)" } else { "" }),
            format!("{} ({:.2}x)", fmt_ns(nanos), nanos / baseline.expect("set above")),
            result,
            m.captures.to_string(),
            m.reinstatements.to_string(),
            m.overflows.to_string(),
            m.slots_copied.to_string(),
            m.heap_frames_allocated.to_string(),
        ]);
    }
    println!("{t}");
}
