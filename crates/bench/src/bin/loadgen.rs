//! Load generator for the `segstack-serve` runtime.
//!
//! Drives a mixed workload (fib / tak / tail-loop / ctak across every
//! control-stack strategy) through a worker pool and reports throughput,
//! latency percentiles and per-strategy fairness.
//!
//! ```text
//! cargo run --release -p segstack-bench --bin loadgen -- --workers 4
//! ```
//!
//! Flags: `--workers N` (default 4), `--jobs N` (default 1000),
//! `--quantum TICKS` (default 5000), `--seed N` (default 42),
//! `--json` (append the runtime metrics snapshot as JSON),
//! `--trace-out PATH` (record per-worker event traces and write a
//! Chrome/Perfetto trace-event JSON timeline to PATH).

use segstack_bench::serve_load::{percentile, run_load_traced, LoadReport};
use segstack_core::trace::{chrome_trace_json, flame_summary, validate_chrome_trace};

struct Args {
    workers: usize,
    jobs: usize,
    quantum: u64,
    seed: u64,
    json: bool,
    trace_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args =
        Args { workers: 4, jobs: 1000, quantum: 5_000, seed: 42, json: false, trace_out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut num = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(&format!("{name} needs a number")))
        };
        match flag.as_str() {
            "--workers" => args.workers = num("--workers") as usize,
            "--jobs" => args.jobs = num("--jobs") as usize,
            "--quantum" => args.quantum = num("--quantum"),
            "--seed" => args.seed = num("--seed"),
            "--json" => args.json = true,
            "--trace-out" => {
                args.trace_out = Some(it.next().unwrap_or_else(|| die("--trace-out needs a path")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--workers N] [--jobs N] [--quantum TICKS] [--seed N] \
                     [--json] [--trace-out PATH]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}

fn ms(d: std::time::Duration) -> String {
    format!("{:.2}ms", d.as_secs_f64() * 1e3)
}

fn print_report(r: &LoadReport, quantum: u64) {
    println!("# segstack-serve loadgen");
    println!(
        "workers={} jobs={} quantum={} wall={:.2}s",
        r.workers,
        r.submitted,
        quantum,
        r.wall.as_secs_f64()
    );
    println!(
        "completed={} failed={} drops=0 throughput={:.0} jobs/s",
        r.completed,
        r.failed,
        r.throughput()
    );
    println!(
        "latency p50={} p99={} fairness(max/min mean latency across strategies)={:.2}",
        ms(r.latency_pct(0.50)),
        ms(r.latency_pct(0.99)),
        r.fairness()
    );

    println!("\n## per strategy");
    println!(
        "{:<12} {:>5} {:>10} {:>10} {:>10} {:>12}",
        "strategy", "jobs", "p50", "p99", "mean", "ticks/job"
    );
    for (name, samples) in r.by_strategy() {
        let mean = samples.iter().map(|s| s.latency.as_secs_f64()).sum::<f64>()
            / samples.len().max(1) as f64;
        let ticks = samples.iter().map(|s| s.ticks).sum::<u64>() / samples.len().max(1) as u64;
        println!(
            "{:<12} {:>5} {:>10} {:>10} {:>9.2}ms {:>12}",
            name,
            samples.len(),
            ms(percentile(samples.iter().map(|s| s.latency), 0.50)),
            ms(percentile(samples.iter().map(|s| s.latency), 0.99)),
            mean * 1e3,
            ticks
        );
    }

    println!("\n## per workload class");
    println!(
        "{:<12} {:>5} {:>10} {:>10} {:>12} {:>12}",
        "class", "jobs", "p50", "p99", "quanta/job", "ticks/job"
    );
    for (name, samples) in r.by_class() {
        let quanta = samples.iter().map(|s| s.quanta).sum::<u64>() / samples.len().max(1) as u64;
        let ticks = samples.iter().map(|s| s.ticks).sum::<u64>() / samples.len().max(1) as u64;
        println!(
            "{:<12} {:>5} {:>10} {:>10} {:>12} {:>12}",
            name,
            samples.len(),
            ms(percentile(samples.iter().map(|s| s.latency), 0.50)),
            ms(percentile(samples.iter().map(|s| s.latency), 0.99)),
            quanta,
            ticks
        );
    }

    let total = r.snapshot.total();
    println!(
        "\nruntime: admitted={} completed={} quanta={} ticks={} busy={:.2}s across {} workers",
        total.admitted,
        total.completed,
        total.quanta,
        total.ticks,
        std::time::Duration::from_nanos(total.busy_nanos).as_secs_f64(),
        r.snapshot.workers.len()
    );
}

fn main() {
    let args = parse_args();
    let report =
        run_load_traced(args.workers, args.jobs, args.quantum, args.seed, args.trace_out.is_some());
    print_report(&report, args.quantum);
    if args.json {
        println!("\n{}", report.snapshot.to_json());
    }
    if let Some(path) = &args.trace_out {
        let doc = chrome_trace_json(&report.traces);
        let stats = validate_chrome_trace(&doc)
            .unwrap_or_else(|e| die(&format!("exported trace failed validation: {e}")));
        if let Err(e) = std::fs::write(path, &doc) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!(
            "\ntrace: {path} — {} events ({} spans, {} instants, {} job spans) on {} track(s); \
             open in https://ui.perfetto.dev or chrome://tracing",
            stats.events, stats.spans, stats.instants, stats.async_spans, stats.tracks
        );
        println!("\n## flame summary (self time per span kind)\n{}", flame_summary(&report.traces));
    }
    if report.failed > 0 {
        std::process::exit(1);
    }
}
