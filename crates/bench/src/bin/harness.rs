//! Prints every experiment table (or the ones named on the command line).
//!
//! Run with `cargo run -p segstack-bench --release --bin harness`.
//! Pass experiment ids (`e01`..`e17`, `a1`..`a3`) to run a subset.
//! `--json PATH` additionally writes the selected tables as one JSON
//! document (e.g. the committed `BENCH_PR4.json` regression snapshot).

use segstack_bench::experiments;

fn main() {
    let mut filters: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            match args.next() {
                Some(p) => json_path = Some(p),
                None => {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                }
            }
        } else {
            filters.push(a);
        }
    }
    let all = experiments::all();
    let selected: Vec<_> = if filters.is_empty() {
        all
    } else {
        all.into_iter().filter(|(id, _)| filters.iter().any(|f| f == id)).collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches; known ids: e01..e17, a1..a3");
        std::process::exit(2);
    }
    println!("# segstack experiment harness");
    println!("(times are wall-clock on this host; counters are host-independent)\n");
    let mut json_entries: Vec<String> = Vec::new();
    for (id, f) in selected {
        let start = std::time::Instant::now();
        let table = f();
        println!("{table}");
        println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
        json_entries.push(format!("{{\"id\":\"{id}\",\"table\":{}}}", table.to_json()));
    }
    if let Some(path) = json_path {
        let doc = format!(
            "{{\"generator\":\"segstack-bench harness\",\"experiments\":[{}]}}\n",
            json_entries.join(",")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
