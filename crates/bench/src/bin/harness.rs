//! Prints every experiment table (or the ones named on the command line).
//!
//! Run with `cargo run -p segstack-bench --release --bin harness`.
//! Pass experiment ids (`e01`..`e18`, `a1`..`a3`) to run a subset.
//! `--json PATH` additionally writes the selected tables as one JSON
//! document (e.g. the committed `BENCH_PR4.json` regression snapshot).
//! `--trace-out PATH` additionally runs a canonical continuation-heavy
//! workload on a traced segmented engine and writes its timeline as
//! Chrome/Perfetto trace-event JSON.

use segstack_bench::experiments;
use segstack_core::trace::{chrome_trace_json, flame_summary, validate_chrome_trace};

fn main() {
    let mut filters: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" || a == "--trace-out" {
            match args.next() {
                Some(p) if a == "--json" => json_path = Some(p),
                Some(p) => trace_path = Some(p),
                None => {
                    eprintln!("{a} needs a file path");
                    std::process::exit(2);
                }
            }
        } else {
            filters.push(a);
        }
    }
    if let Some(path) = &trace_path {
        export_core_trace(path);
        // Trace-only invocation: ids were only ever filters, so an empty
        // selection here is intentional, not an error.
        if filters.is_empty() {
            return;
        }
    }
    let all = experiments::all();
    let selected: Vec<_> = if filters.is_empty() {
        all
    } else {
        all.into_iter().filter(|(id, _)| filters.iter().any(|f| f == id)).collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches; known ids: e01..e19, a1..a3");
        std::process::exit(2);
    }
    println!("# segstack experiment harness");
    println!("(times are wall-clock on this host; counters are host-independent)\n");
    let mut json_entries: Vec<String> = Vec::new();
    for (id, f) in selected {
        let start = std::time::Instant::now();
        let table = f();
        println!("{table}");
        println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
        json_entries.push(format!("{{\"id\":\"{id}\",\"table\":{}}}", table.to_json()));
    }
    if let Some(path) = json_path {
        let doc = format!(
            "{{\"generator\":\"segstack-bench harness\",\"experiments\":[{}]}}\n",
            json_entries.join(",")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

/// Runs the canonical traced core workload and writes its Perfetto
/// timeline (validated before it is written).
fn export_core_trace(path: &str) {
    let traces = experiments::traced_core_trace();
    let doc = chrome_trace_json(&traces);
    let stats = match validate_chrome_trace(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    println!(
        "trace: {path} — {} events ({} spans, {} instants) on {} track(s); \
         open in https://ui.perfetto.dev or chrome://tracing",
        stats.events, stats.spans, stats.instants, stats.tracks
    );
    println!("\n## flame summary (self time per span kind)\n{}", flame_summary(&traces));
}
