//! Prints every experiment table (or the ones named on the command line).
//!
//! Run with `cargo run -p segstack-bench --release --bin harness`.
//! Pass experiment ids (`e01`..`e15`, `a1`..`a3`) to run a subset.

use segstack_bench::experiments;

fn main() {
    let filters: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments::all();
    let selected: Vec<_> = if filters.is_empty() {
        all
    } else {
        all.into_iter().filter(|(id, _)| filters.iter().any(|f| f == id)).collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches; known ids: e01..e15, a1..a3");
        std::process::exit(2);
    }
    println!("# segstack experiment harness");
    println!("(times are wall-clock on this host; counters are host-independent)\n");
    for (id, f) in selected {
        let start = std::time::Instant::now();
        let table = f();
        println!("{table}");
        println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
    }
}
