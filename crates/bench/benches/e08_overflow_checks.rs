//! E8 (Fig 8, §5): overflow-check policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;
use segstack_bench::workloads as w;
use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08_overflow_checks");
    let big = Config::builder().segment_slots(4 * 1024 * 1024).frame_bound(64).build().unwrap();
    for (wname, src) in [("fib18", w::fib(18)), ("tail300k", w::tail_loop(300_000))] {
        for policy in [CheckPolicy::Always, CheckPolicy::Elide, CheckPolicy::Never] {
            g.bench_with_input(BenchmarkId::new(wname, policy), &src, |b, src| {
                let mut e = engine(Strategy::Segmented, &big, policy);
                b.iter(|| e.eval(src).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
