//! E9 (§2): overflow/underflow bouncing at a segment boundary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;
use segstack_bench::workloads as w;
use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e09_bouncing");
    let cfg = Config::builder().segment_slots(512).frame_bound(48).copy_bound(32).build().unwrap();
    for depth in [40u32, 45] {
        for s in [Strategy::Cache, Strategy::Segmented] {
            let src = w::boundary_loop(depth, 2_000);
            g.bench_with_input(BenchmarkId::new(format!("park{depth}"), s), &src, |b, src| {
                let mut e = engine(s, &cfg, CheckPolicy::Elide);
                b.iter(|| e.eval(src).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
