//! E4 (Fig 4, §3): stack walking via code-stream frame-size words.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

use segstack_core::{walker, ReturnAddress, TestCode, TestSlot};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e04_walk");
    for frames in [16usize, 256, 4096] {
        let code = TestCode::new();
        let mut buf = vec![TestSlot::Empty; frames * 8 + 8];
        buf[0] = TestSlot::Ra(ReturnAddress::Exit);
        let mut fbase = 0usize;
        let mut prev = None;
        for _ in 0..frames {
            if let Some(ra) = prev {
                buf[fbase] = TestSlot::Ra(ReturnAddress::Code(ra));
            }
            prev = Some(code.ret_point(8));
            fbase += 8;
        }
        let top_ra = prev.unwrap();
        g.bench_function(BenchmarkId::from_parameter(frames), |b| {
            b.iter(|| walker::frames(&buf, 0, fbase, top_ra, &code).len());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
