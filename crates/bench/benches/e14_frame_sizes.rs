//! E14 (§6): static frame-size analysis (compile-time cost of the analysis).

use criterion::{criterion_group, criterion_main, Criterion};
use segstack_bench::workloads as w;
use segstack_scheme::Engine;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_frame_sizes");
    // Measures compilation + analysis of the full corpus.
    g.bench_function("compile_and_analyze", |b| {
        b.iter(|| {
            let mut e = Engine::new().unwrap();
            e.eval(&w::fib(1)).unwrap();
            e.eval(&w::sort(1)).unwrap();
            e.eval(&w::ctak(1, 1, 1)).unwrap();
            let sizes = e.frame_sizes();
            sizes.iter().filter(|&&s| s < 30).count()
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
