//! E3 (Fig 6-7, §4): reinstatement cost vs. continuation size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;

use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn reinstate_latency(depth: u32, rounds: u32) -> String {
    format!(
        "(define k-deep #f)
         (define k-top #f)
         (define count 0)
         (define (deep n)
           (if (= n 0)
               (begin (call/cc (lambda (c) (set! k-deep c))) (k-top 0))
               (+ 1 (deep (- n 1)))))
         (call/cc (lambda (c) (set! k-top c) (deep {depth})))
         (set! count (+ count 1))
         (if (< count {rounds}) (k-deep 0) count)"
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e03_reinstate_size");
    for depth in [50u32, 500, 2000] {
        for s in [Strategy::Segmented, Strategy::Copy, Strategy::Heap] {
            let src = reinstate_latency(depth, 200);
            g.bench_with_input(BenchmarkId::new(format!("d{depth}"), s), &src, |b, src| {
                let mut e = engine(s, &Config::default(), CheckPolicy::Elide);
                b.iter(|| e.eval(src).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
