//! E7 (§4): the copy-bound sweep — "determined only by experimentation".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;
use segstack_bench::workloads as w;
use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_copybound_sweep");
    let src = w::ctak(12, 8, 4);
    for bound in [4usize, 32, 128, 1024] {
        let cfg = Config::builder()
            .segment_slots(16 * 1024)
            .frame_bound(64)
            .copy_bound(bound)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(bound), &src, |b, src| {
            let mut e = engine(Strategy::Segmented, &cfg, CheckPolicy::Elide);
            b.iter(|| e.eval(src).unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
