//! E12 (§1): continuation-intensive programs, segmented vs. heap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;
use segstack_bench::workloads as w;
use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_cont_intensive");
    for (wname, src) in [("ctak12", w::ctak(12, 8, 4)), ("gen20x50", w::generator_drain(20, 50))] {
        for s in [Strategy::Segmented, Strategy::Heap] {
            g.bench_with_input(BenchmarkId::new(wname, s), &src, |b, src| {
                let mut e = engine(s, &Config::default(), CheckPolicy::Elide);
                b.iter(|| e.eval(src).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
