//! E2 (Fig 2 vs Fig 5, §2): capture cost as a function of stack depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;
use segstack_bench::workloads as w;
use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_capture_depth");
    for depth in [10u32, 100, 1000] {
        for s in [Strategy::Segmented, Strategy::Heap, Strategy::Copy] {
            let src = w::capture_at_depth(depth, 200);
            g.bench_with_input(BenchmarkId::new(format!("d{depth}"), s), &src, |b, src| {
                let mut e = engine(s, &Config::default(), CheckPolicy::Elide);
                b.iter(|| e.eval(src).unwrap());
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
