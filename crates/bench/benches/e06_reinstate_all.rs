//! E6 (Fig 6, §6): reinstate a deep continuation, all strategies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;

use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn reinstate_latency(depth: u32, rounds: u32) -> String {
    format!(
        "(define k-deep #f)
         (define k-top #f)
         (define count 0)
         (define (deep n)
           (if (= n 0)
               (begin (call/cc (lambda (c) (set! k-deep c))) (k-top 0))
               (+ 1 (deep (- n 1)))))
         (call/cc (lambda (c) (set! k-top c) (deep {depth})))
         (set! count (+ count 1))
         (if (< count {rounds}) (k-deep 0) count)"
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e06_reinstate_all");
    let src = reinstate_latency(1000, 200);
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s), &src, |b, src| {
            let mut e = engine(s, &Config::default(), CheckPolicy::Elide);
            b.iter(|| e.eval(src).unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
