//! E11 (§6, Danvy): repeated capture of the same deep stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use segstack_baselines::Strategy;

use segstack_core::Config;
use segstack_scheme::{CheckPolicy, Engine};
use std::time::Duration;

fn engine(s: Strategy, cfg: &Config, policy: CheckPolicy) -> Engine {
    Engine::builder().strategy(s).config(cfg.clone()).check_policy(policy).build().expect("engine")
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(150))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_repeated_capture");
    // 25 captures of a depth-800 stack per iteration.
    let src = "(define ks '())
               (define (grab i)
                 (if (= i 0) (length ks)
                     (begin (call/cc (lambda (k) (set! ks (cons k ks)))) (grab (- i 1)))))
               (define (deep n thunk) (if (= n 0) (thunk) (+ 1 (deep (- n 1) thunk))))
               (set! ks '())
               (deep 800 (lambda () (grab 25)))";
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s), &src, |b, src| {
            let mut e = engine(s, &Config::default(), CheckPolicy::Elide);
            b.iter(|| e.eval(src).unwrap());
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench
}
criterion_main!(benches);
