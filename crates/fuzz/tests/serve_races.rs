//! Shutdown and cancel races under in-flight fuzz jobs.
//!
//! The evaluation runtime must resolve *every* handle — no hangs, no
//! lost outcomes — even when cancels race a graceful shutdown from
//! another thread, and even when the runtime is dropped (abort path)
//! with divergent fuzz jobs mid-quantum.

use segstack_baselines::Strategy;
use segstack_fuzz::progs::gen_program;
use segstack_serve::{JobError, Request, Runtime, RuntimeConfig};
use std::thread;

const DIVERGE: &str = "(let loop () (loop))";

/// Graceful shutdown racing a cancel thread: a mixed batch of generated
/// fuzz programs and fuel-capped divergent jobs is in flight; a second
/// thread cancels and waits on a third of the handles while the main
/// thread shuts down under load. Every wait must resolve.
#[test]
fn shutdown_races_concurrent_cancels_without_losing_handles() {
    let rt =
        Runtime::start(RuntimeConfig::with_workers(3).quantum(50).max_inflight(4).queue_depth(64));
    let mut to_cancel = Vec::new();
    let mut to_keep = Vec::new();
    for seed in 0..18u64 {
        let strategy = Strategy::ALL[(seed % 6) as usize];
        let (src, fuel) = if seed % 6 == 5 {
            (DIVERGE.to_string(), 200_000)
        } else {
            (gen_program(seed, 4), 50_000_000)
        };
        let handle = rt.submit(Request::new(src).strategy(strategy).fuel(fuel)).unwrap();
        if seed % 3 == 0 {
            to_cancel.push(handle);
        } else {
            to_keep.push(handle);
        }
    }
    let canceller = thread::spawn(move || {
        to_cancel
            .into_iter()
            .map(|h| {
                h.cancel();
                h.wait().result
            })
            .collect::<Vec<_>>()
    });
    // Shut down only once the pool is actually working, so the drain
    // races real in-flight jobs rather than an idle queue.
    while rt.metrics().total().admitted == 0 {
        thread::yield_now();
    }
    let snap = rt.shutdown();
    assert_eq!(snap.queued, 0, "graceful shutdown drained the queue");
    let cancelled = canceller.join().expect("cancel thread never hangs");
    assert_eq!(cancelled.len(), 6);
    for r in &cancelled {
        // A cancelled job either lost the race (it already finished, or
        // tripped its own fuel/eval outcome first) or reports Cancelled;
        // it must never be Lost by a *graceful* shutdown.
        assert_ne!(r, &Err(JobError::Lost), "graceful drain lost a cancelled job");
    }
    for h in to_keep {
        let o = h.wait();
        assert_ne!(o.result, Err(JobError::Lost), "graceful drain lost job {}", o.id);
    }
    let total = snap.total();
    assert_eq!(
        total.admitted,
        total.finished(),
        "every admitted job resolved to exactly one outcome"
    );
}

/// Abort path: dropping the runtime (no shutdown call) with uncapped
/// divergent jobs in flight must cancel them at the next preemption
/// point and still resolve every handle.
#[test]
fn drop_abort_resolves_inflight_divergent_fuzz_jobs() {
    let rt =
        Runtime::start(RuntimeConfig::with_workers(2).quantum(25).max_inflight(2).queue_depth(16));
    let mut divergent = Vec::new();
    let mut finite = Vec::new();
    for seed in 0..6u64 {
        let strategy = Strategy::ALL[(seed % 6) as usize];
        if seed % 2 == 0 {
            divergent.push(rt.submit(Request::new(DIVERGE).strategy(strategy)).unwrap());
        } else {
            let src = gen_program(seed, 3);
            finite.push(rt.submit(Request::new(src).strategy(strategy).fuel(50_000_000)).unwrap());
        }
    }
    while rt.metrics().total().admitted == 0 {
        thread::yield_now();
    }
    drop(rt);
    for h in divergent {
        let o = h.wait();
        assert!(
            matches!(o.result, Err(JobError::Cancelled | JobError::Lost)),
            "divergent job {} survived the abort: {:?}",
            o.id,
            o.result
        );
    }
    for h in finite {
        // Finite jobs either finished before the abort or were cancelled
        // with everything else — but the handle always resolves.
        let _ = h.wait();
    }
}
