//! Smoke coverage for the fuzzer itself: a broad clean campaign, replay
//! determinism (the property the `--seed` workflow depends on), and the
//! shrinker's contract on a synthetic failure.

use segstack_baselines::Strategy;
use segstack_fuzz::driver::{compile, run_oracle, run_strategy, Obs};
use segstack_fuzz::{fuzz_trace, shrink, Op, TraceSpec};

/// A seed band disjoint from the ones the differential suite and the CI
/// campaign use, so the corpus of exercised traces keeps growing.
#[test]
fn a_fresh_seed_band_runs_clean() {
    for seed in 700_000..700_500u64 {
        let spec = TraceSpec::generate(seed, 48);
        if let Err(e) = fuzz_trace(&spec) {
            panic!("replay with `cargo run -p segstack-fuzz -- --seed {seed} --ops 48`:\n{e}");
        }
    }
}

/// Replaying a seed reproduces the identical trace *and* identical
/// machine observations, drain, and counters — the contract that makes
/// a printed `--seed` literal a complete bug report.
#[test]
fn replay_is_fully_deterministic() {
    for seed in [0u64, 3254, 99_991] {
        let a = TraceSpec::generate(seed, 64);
        let b = TraceSpec::generate(seed, 64);
        assert_eq!(a.ops, b.ops, "seed {seed}: generation is not deterministic");
        let ca = compile(&a);
        let cb = compile(&b);
        let oa = run_oracle(&a, &ca).unwrap();
        let ob = run_oracle(&b, &cb).unwrap();
        assert_eq!(oa, ob, "seed {seed}: oracle runs diverge across replays");
        for strategy in Strategy::ALL {
            let ra = run_strategy(&a, &ca, strategy).unwrap();
            let rb = run_strategy(&b, &cb, strategy).unwrap();
            assert_eq!(ra, rb, "seed {seed}: {strategy} runs diverge across replays");
        }
    }
}

/// The canonical one-shot witness, hand-built: capture one-shot, jump
/// through it once (fine), jump again (every strategy must fail with
/// `OneShotReused` and leave its state untouched — the trailing ops and
/// drain check that). Runs through the full differential + audit stack.
#[test]
fn one_shot_reuse_is_agreed_on_by_every_strategy() {
    let spec = TraceSpec {
        seed: 0,
        segment_slots: 48,
        frame_bound: 8,
        copy_bound: 8,
        ops: vec![
            Op::Call { d: 2, nargs: 1, args: vec![5] },
            Op::CaptureOneShot,
            Op::Reinstate { k: 0 },
            Op::Reinstate { k: 0 },
            Op::Set { i: 3, v: 11 },
            Op::Get { i: 3 },
            Op::Ret,
        ],
    };
    fuzz_trace(&spec).unwrap();
    let compiled = compile(&spec);
    let reference = run_oracle(&spec, &compiled).unwrap();
    assert_eq!(
        reference.obs[2],
        Obs::Resumed(segstack_core::ReturnAddress::Code(compiled.ras[0].unwrap()))
    );
    assert_eq!(reference.obs[3], Obs::OneShotReuse);
}

/// A seed band with one-shot ops enabled stays clean, and the band
/// actually exercises the reuse-failure path (otherwise the new grammar
/// weight silently stopped reaching it).
#[test]
fn one_shot_seed_band_runs_clean_and_hits_reuse() {
    let mut reuses = 0usize;
    for seed in 710_000..710_300u64 {
        let spec = TraceSpec::generate(seed, 64);
        if let Err(e) = fuzz_trace(&spec) {
            panic!("replay with `cargo run -p segstack-fuzz -- --seed {seed} --ops 64`:\n{e}");
        }
        let compiled = compile(&spec);
        let reference = run_oracle(&spec, &compiled).unwrap();
        reuses += reference.obs.iter().filter(|o| matches!(o, Obs::OneShotReuse)).count();
    }
    assert!(reuses > 0, "no trace in the band reused a one-shot continuation");
}

/// The shrinker's output still fails the predicate and is never longer
/// than the input — checked here on a predicate that mimics a real
/// divergence signature (a capture that later gets reinstated after a
/// deep call run).
#[test]
fn shrinking_preserves_failure_and_never_grows() {
    let spec = TraceSpec::generate(12, 96);
    let fails = |t: &TraceSpec| {
        let mut captured = false;
        let mut calls = 0usize;
        for op in &t.ops {
            match op {
                Op::Capture => captured = true,
                Op::Call { .. } => calls += 1,
                Op::Reinstate { .. } if captured && calls >= 3 => return true,
                _ => {}
            }
        }
        false
    };
    if !fails(&spec) {
        panic!("seed 12 no longer produces the witness shape; pick a new seed");
    }
    let small = shrink(&spec, &fails);
    assert!(fails(&small), "shrunk trace stopped failing");
    assert!(small.ops.len() <= spec.ops.len(), "shrinking grew the trace");
    assert!(small.ops.len() <= 5, "expected a near-minimal witness, got {} ops", small.ops.len());
}
