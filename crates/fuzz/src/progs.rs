//! The Scheme front end: fuel-bounded, `call/cc`-heavy random programs for
//! differentially fuzzing the full engines.
//!
//! Programs are generated from a seed alone (the same [`SplitMix64`]
//! discipline as the trace generator), use only total arithmetic over
//! bound variables, and weave `call/cc` receivers — invoked (escaping) or
//! ignored — through every other production. `tests/differential.rs`
//! consumes this module for its property tests, and the serve front end
//! reuses [`gen_program`] to build job payloads.

use segstack_baselines::Strategy;
use segstack_core::rng::SplitMix64;
use segstack_core::Config;
use segstack_scheme::Engine;

/// Variable pool for generated programs.
pub const VARS: [&str; 5] = ["va", "vb", "vc", "vd", "ve"];

/// Draws a numeric leaf or (when available) a bound variable from the
/// bitmask over [`VARS`].
fn leaf(rng: &mut SplitMix64, bound: u8) -> String {
    let bound_vars: Vec<&'static str> =
        VARS.iter().enumerate().filter(|(i, _)| bound & (1 << i) != 0).map(|(_, v)| *v).collect();
    if !bound_vars.is_empty() && rng.gen_bool() {
        (*rng.choose(&bound_vars)).to_string()
    } else {
        rng.gen_range_i64(-50, 50).to_string()
    }
}

/// Generates a deterministic expression using only bound variables from
/// `bound` (a bitmask over [`VARS`]). `k_depth` counts enclosing `call/cc`
/// receivers whose continuation parameter may be invoked; nesting is
/// capped at three. Draws come from the seeded generator, so a failing
/// program is reproducible from its seed alone.
pub fn arb_expr(rng: &mut SplitMix64, depth: u32, bound: u8, k_depth: u8) -> String {
    if depth == 0 {
        return leaf(rng, bound);
    }
    let sub = |rng: &mut SplitMix64| arb_expr(rng, depth - 1, bound, k_depth);
    loop {
        match rng.gen_range(0, 10) {
            0 => return leaf(rng, bound),
            1 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(+ {a} {b})");
            }
            2 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(- {a} {b})");
            }
            3 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(min {a} (* 3 {b}))");
            }
            4 => {
                let (c, t, e) = (sub(rng), sub(rng), sub(rng));
                return format!("(if (< {c} 0) {t} {e})");
            }
            5 => {
                let (a, b) = (sub(rng), sub(rng));
                return format!("(begin {a} {b})");
            }
            6 => {
                // let-binding an unbound or shadowed variable.
                let eligible: Vec<usize> =
                    (0..VARS.len()).filter(|&i| i < 2 || bound & (1 << i) != 0).collect();
                let i = *rng.choose(&eligible);
                let v = VARS[i];
                let a = sub(rng);
                let b = arb_expr(rng, depth - 1, bound | (1 << i), k_depth);
                return format!("(let (({v} {a})) {b})");
            }
            7 => {
                // set! on a bound variable, when any is in scope.
                if bound == 0 {
                    continue;
                }
                let bound_vars: Vec<&'static str> = VARS
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bound & (1 << i) != 0)
                    .map(|(_, v)| *v)
                    .collect();
                let v = *rng.choose(&bound_vars);
                let (a, b) = (sub(rng), sub(rng));
                return format!("(begin (set! {v} {a}) {b})");
            }
            8 => {
                // Direct lambda application (exercises closures and frames).
                let b = arb_expr(rng, depth - 1, bound | 1, k_depth);
                let a = sub(rng);
                return format!("((lambda ({}) {b}) {a})", VARS[0]);
            }
            _ => {
                // call/cc: the continuation may be invoked (escape) or
                // ignored; nesting is capped at three receivers.
                if k_depth >= 3 {
                    continue;
                }
                let kname = format!("k{k_depth}");
                let b = arb_expr(rng, depth - 1, bound, k_depth + 1);
                if rng.gen_bool() {
                    let a = sub(rng);
                    return format!("(call/cc (lambda ({kname}) (+ 1 ({kname} {a}) {b})))");
                }
                return format!("(call/cc (lambda ({kname}) {b}))");
            }
        }
    }
}

/// Generates a self-contained program for `seed` at the given expression
/// depth.
pub fn gen_program(seed: u64, depth: u32) -> String {
    arb_expr(&mut SplitMix64::new(seed), depth, 0, 0)
}

/// Generates a program that runs the seed's expression at recursion depth
/// 60, so captures happen with real frames below them and the stressed
/// configurations engage their overflow/underflow paths.
pub fn gen_driven_program(seed: u64, depth: u32) -> String {
    let src = gen_program(seed, depth);
    format!(
        "(define (drive n) (if (= n 0) {src} (+ 1 (drive (- n 1)))))
         (drive 60)"
    )
}

/// A stressed configuration: small segments force frequent overflow, a
/// tiny copy bound forces splitting on nearly every reinstatement.
pub fn stressed_cfg() -> Config {
    Config::builder().segment_slots(256).frame_bound(48).copy_bound(16).build().unwrap()
}

/// Evaluates `src` under a strategy, returning printed output and value
/// (or the error text — errors must also be identical across strategies).
pub fn run_on(strategy: Strategy, cfg: &Config, src: &str) -> Result<String, String> {
    let mut e = Engine::builder()
        .strategy(strategy)
        .config(cfg.clone())
        .max_steps(50_000_000)
        .build()
        .map_err(|e| e.to_string())?;
    let v = e.eval(src).map_err(|e| e.to_string())?;
    let out = e.take_output();
    Ok(format!("{out}|{v}"))
}

/// Checks that every strategy agrees with the segmented reference on
/// `src` under `cfg`, reporting the divergence instead of panicking.
pub fn agree_on(cfg: &Config, src: &str) -> Result<(), String> {
    let reference = run_on(Strategy::Segmented, cfg, src);
    for s in Strategy::ALL {
        if s == Strategy::Segmented {
            continue;
        }
        let got = run_on(s, cfg, src);
        if got != reference {
            return Err(format!(
                "strategy {s} diverges:\n  segmented: {reference:?}\n  {s}: {got:?}\non:\n{src}"
            ));
        }
    }
    Ok(())
}

/// One Scheme-level differential round for `seed`: a shallow program on
/// the default and stressed configurations, and a driven (deep) program on
/// the stressed configuration.
pub fn differential_round(seed: u64) -> Result<(), String> {
    let err = |e: String| format!("scheme seed {seed}: {e}");
    let src = gen_program(seed, 4);
    agree_on(&Config::default(), &src).map_err(err)?;
    agree_on(&stressed_cfg(), &src).map_err(err)?;
    let driven = gen_driven_program(seed, 3);
    agree_on(&stressed_cfg(), &driven).map_err(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_are_deterministic_per_seed() {
        assert_eq!(gen_program(11, 4), gen_program(11, 4));
        assert_ne!(gen_program(11, 4), gen_program(12, 4));
    }

    #[test]
    fn a_few_rounds_agree() {
        for seed in 0..4 {
            differential_round(seed).unwrap();
        }
    }
}
