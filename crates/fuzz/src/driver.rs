//! Executes traces on the oracle and on every strategy, and compares the
//! observables.
//!
//! A trace is compiled once — return addresses are pre-assigned per op
//! index into one shared [`TestCode`] table — so the oracle and all six
//! strategies see byte-identical code addresses and the comparison is
//! plain equality. Each strategy run executes under `catch_unwind`, so a
//! strategy panic (including a `debug_assert` tripping inside the machine)
//! is reported as a divergence at the op where it happened instead of
//! killing the fuzz campaign.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use segstack_baselines::Strategy;
use segstack_core::{
    CodeAddr, Continuation, ControlStack, ReturnAddress, StackError, TestCode, TestSlot,
};

use crate::audit::run_audited;
use crate::oracle::Oracle;
use crate::trace::{Op, TraceSpec};

/// Bound on the end-of-trace unwind, far above any reachable depth.
const DRAIN_CAP: usize = 20_000_000;

/// One observation: what a single op made visible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obs {
    /// A call completed (possibly overflowing into a new segment).
    CallOk,
    /// A tail call completed.
    TailOk,
    /// A slot write completed.
    SetOk,
    /// `ret()` yielded this return address.
    Ret(ReturnAddress),
    /// `get` on a definitely-written slot yielded this value.
    Got(TestSlot),
    /// `get` on a possibly-junk slot: strategies legitimately differ, the
    /// oracle predicts a wildcard.
    GotAny,
    /// A leaf call read back its staged arguments.
    Leaf(Vec<TestSlot>),
    /// A continuation was captured (and saved in the ring).
    Captured,
    /// `reinstate` resumed at this return address.
    Resumed(ReturnAddress),
    /// `reinstate` with nothing captured yet: a no-op on every machine.
    Skipped,
    /// `reinstate` of an already-consumed one-shot continuation failed
    /// with [`StackError::OneShotReused`], leaving the machine untouched.
    OneShotReuse,
    /// The observable return-address spine.
    Backtrace(Vec<CodeAddr>),
}

/// Does the strategy observation `got` satisfy the oracle prediction
/// `want`? Exact equality, except the [`Obs::GotAny`] wildcard.
pub fn obs_matches(want: &Obs, got: &Obs) -> bool {
    matches!(want, Obs::GotAny) && matches!(got, Obs::Got(_) | Obs::GotAny) || want == got
}

/// A trace with pre-assigned return addresses: `ras[i]` is `Some` exactly
/// for `Call`/`LeafCall` ops. All runs share `code`, so displacements and
/// address equality line up across machines.
pub struct CompiledTrace {
    /// The shared frame-size table.
    pub code: Rc<TestCode>,
    /// Per-op return address, aligned with `spec.ops`.
    pub ras: Vec<Option<CodeAddr>>,
}

/// Pre-assigns return addresses for every call in the trace.
pub fn compile(spec: &TraceSpec) -> CompiledTrace {
    let code = Rc::new(TestCode::new());
    let ras = spec
        .ops
        .iter()
        .map(|op| match op {
            Op::Call { d, .. } | Op::LeafCall { d, .. } => Some(code.ret_point(*d)),
            _ => None,
        })
        .collect();
    CompiledTrace { code, ras }
}

/// Everything observable about one run of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunLog {
    /// Per-op observations, aligned with the trace.
    pub obs: Vec<Obs>,
    /// Return addresses seen while unwinding to the exit after the trace.
    pub drain: Vec<ReturnAddress>,
    /// Strategy-independent counters: calls, tail calls, returns, captures.
    /// (Reinstatements, overflows and underflows legitimately differ —
    /// e.g. the segmented and cache machines reinstate internally on
    /// underflow.)
    pub counters: [u64; 4],
}

/// Applies one op to a strategy through the [`ControlStack`] protocol.
/// `saved` is the ring of up to eight captured continuations; `captures`
/// counts capture ops to drive the ring deterministically.
pub fn apply_op(
    stack: &mut dyn ControlStack<TestSlot>,
    op: &Op,
    ra: Option<CodeAddr>,
    saved: &mut Vec<Continuation<TestSlot>>,
    captures: &mut usize,
) -> Obs {
    match op {
        Op::Call { d, nargs, args } => {
            for (j, &a) in args.iter().enumerate() {
                stack.set(d + 1 + j, TestSlot::Int(a));
            }
            stack
                .call(*d, ra.expect("call ops carry a return address"), *nargs, true)
                .expect("generated calls stay within every budget");
            Obs::CallOk
        }
        Op::LeafCall { d, nargs, args } => {
            for (j, &a) in args.iter().enumerate() {
                stack.set(d + 1 + j, TestSlot::Int(a));
            }
            stack
                .call(*d, ra.expect("call ops carry a return address"), *nargs, false)
                .expect("leaf calls stay within the reserve");
            let vals = (0..*nargs).map(|j| stack.get(1 + j)).collect();
            let back = stack.ret().expect("leaf return cannot fail");
            assert!(matches!(back, ReturnAddress::Code(_)), "leaf return hit {back:?}");
            Obs::Leaf(vals)
        }
        Op::TailCall { src, nargs } => {
            stack.tail_call(*src, *nargs);
            Obs::TailOk
        }
        Op::Ret => Obs::Ret(stack.ret().expect("ret cannot fail")),
        Op::Set { i, v } => {
            stack.set(*i, TestSlot::Int(*v));
            Obs::SetOk
        }
        Op::Get { i } => Obs::Got(stack.get(*i)),
        Op::Capture | Op::CaptureOneShot => {
            let k = match op {
                Op::CaptureOneShot => stack.capture_one_shot(),
                _ => stack.capture(),
            };
            let slot = *captures % 8;
            if slot < saved.len() {
                saved[slot] = k;
            } else {
                saved.push(k);
            }
            *captures += 1;
            Obs::Captured
        }
        Op::Reinstate { k } => {
            if saved.is_empty() {
                Obs::Skipped
            } else {
                let kont = saved[k % saved.len()].clone();
                match stack.reinstate(&kont) {
                    Ok(ra) => Obs::Resumed(ra),
                    Err(StackError::OneShotReused) => Obs::OneShotReuse,
                    Err(e) => panic!("same-strategy reinstate cannot fail: {e}"),
                }
            }
        }
        Op::Backtrace { limit } => Obs::Backtrace(stack.backtrace(*limit)),
    }
}

/// Unwinds the machine to the exit, logging every return address seen.
pub fn drain(stack: &mut dyn ControlStack<TestSlot>) -> Vec<ReturnAddress> {
    let mut out = Vec::new();
    for _ in 0..DRAIN_CAP {
        let ra = stack.ret().expect("drain ret cannot fail");
        out.push(ra);
        if ra == ReturnAddress::Exit {
            return out;
        }
    }
    panic!("drain did not reach the exit within {DRAIN_CAP} returns");
}

/// Runs the trace on one strategy. A panic anywhere inside the machine is
/// reported as an error naming the op that triggered it.
pub fn run_strategy(
    spec: &TraceSpec,
    compiled: &CompiledTrace,
    strategy: Strategy,
) -> Result<RunLog, String> {
    let at_op = Cell::new(usize::MAX);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut stack = strategy
            .build::<TestSlot>(spec.config(), compiled.code.clone())
            .expect("configuration fits every strategy");
        let mut saved = Vec::new();
        let mut captures = 0usize;
        let mut obs = Vec::with_capacity(spec.ops.len());
        for (i, op) in spec.ops.iter().enumerate() {
            at_op.set(i);
            obs.push(apply_op(&mut *stack, op, compiled.ras[i], &mut saved, &mut captures));
        }
        at_op.set(usize::MAX - 1);
        let drained = drain(&mut *stack);
        let m = stack.metrics();
        RunLog { obs, drain: drained, counters: [m.calls, m.tail_calls, m.returns, m.captures] }
    }));
    result.map_err(|e| {
        let msg = panic_text(&e);
        match at_op.get() {
            usize::MAX => format!("{strategy}: panicked during setup: {msg}"),
            i if i == usize::MAX - 1 => format!("{strategy}: panicked during drain: {msg}"),
            i => format!("{strategy}: panicked at op [{i}] {:?}: {msg}", spec.ops[i]),
        }
    })
}

/// Runs the trace on the reference oracle.
pub fn run_oracle(spec: &TraceSpec, compiled: &CompiledTrace) -> Result<RunLog, String> {
    let at_op = Cell::new(usize::MAX);
    catch_unwind(AssertUnwindSafe(|| {
        let mut oracle = Oracle::new(compiled.code.clone(), spec.frame_bound);
        let mut obs = Vec::with_capacity(spec.ops.len());
        for (i, op) in spec.ops.iter().enumerate() {
            at_op.set(i);
            obs.push(oracle.apply(op, compiled.ras[i]));
        }
        at_op.set(usize::MAX - 1);
        let mut drained = Vec::new();
        for _ in 0..DRAIN_CAP {
            let Obs::Ret(ra) = oracle.apply(&Op::Ret, None) else { unreachable!() };
            drained.push(ra);
            if ra == ReturnAddress::Exit {
                break;
            }
        }
        // The oracle's op counts are just the trace's shape.
        let calls =
            spec.ops.iter().filter(|o| matches!(o, Op::Call { .. } | Op::LeafCall { .. })).count()
                as u64;
        let tails = spec.ops.iter().filter(|o| matches!(o, Op::TailCall { .. })).count() as u64;
        let leafs = spec.ops.iter().filter(|o| matches!(o, Op::LeafCall { .. })).count() as u64;
        let rets = spec.ops.iter().filter(|o| matches!(o, Op::Ret)).count() as u64
            + leafs
            + drained.len() as u64;
        let caps = spec.ops.iter().filter(|o| matches!(o, Op::Capture | Op::CaptureOneShot)).count()
            as u64;
        RunLog { obs, drain: drained, counters: [calls, tails, rets, caps] }
    }))
    .map_err(|e| {
        let msg = panic_text(&e);
        match at_op.get() {
            i if i < usize::MAX - 1 => {
                format!("oracle: panicked at op [{i}] {:?}: {msg}", spec.ops[i])
            }
            _ => format!("oracle: panicked: {msg}"),
        }
    })
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| e.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Compares a strategy log against the oracle log.
pub fn compare(
    spec: &TraceSpec,
    strategy: &str,
    want: &RunLog,
    got: &RunLog,
) -> Result<(), String> {
    for (i, (w, g)) in want.obs.iter().zip(&got.obs).enumerate() {
        if !obs_matches(w, g) {
            return Err(format!(
                "{strategy}: op [{i}] {:?}: oracle saw {w:?}, strategy saw {g:?}",
                spec.ops[i]
            ));
        }
    }
    if want.drain != got.drain {
        return Err(format!(
            "{strategy}: drain diverged: oracle unwound {:?}, strategy {:?}",
            want.drain, got.drain
        ));
    }
    if want.counters != got.counters {
        return Err(format!(
            "{strategy}: counters [calls, tail_calls, returns, captures] diverged: \
             oracle {:?}, strategy {:?}",
            want.counters, got.counters
        ));
    }
    Ok(())
}

/// Fuzzes one trace: oracle vs. all six strategies, plus the invariant
/// audit of the segmented machine. Returns a diagnosis on any divergence.
pub fn fuzz_trace(spec: &TraceSpec) -> Result<(), String> {
    let compiled = compile(spec);
    let reference = run_oracle(spec, &compiled)?;
    for strategy in Strategy::ALL {
        let log = run_strategy(spec, &compiled, strategy)?;
        compare(spec, strategy.name(), &reference, &log)?;
    }
    run_audited(spec, &compiled)
}
