//! Differential fuzzing through the `serve` runtime: the same generated
//! program is submitted once per strategy as a fuel-budgeted job, and all
//! six outcomes must agree — result string *and* tick count (fuel ticks
//! count procedure calls, so the accounting is strategy-independent even
//! though wall-clock preemption interleaves the jobs arbitrarily).

use segstack_baselines::Strategy;
use segstack_serve::{JobError, Request, Runtime, RuntimeConfig};

use crate::progs::{gen_driven_program, gen_program};

/// One serve-level differential round for `seed`. The runtime runs two
/// workers with a small quantum, so jobs genuinely preempt mid-program.
pub fn serve_round(seed: u64) -> Result<(), String> {
    // Alternate shallow and driven programs across seeds.
    let program =
        if seed.is_multiple_of(2) { gen_program(seed, 4) } else { gen_driven_program(seed, 3) };
    let rt =
        Runtime::start(RuntimeConfig::with_workers(2).quantum(200).max_inflight(4).queue_depth(16));
    let handles: Vec<_> = Strategy::ALL
        .iter()
        .map(|&s| {
            let req = Request::new(program.clone()).strategy(s).fuel(50_000_000);
            (s, rt.submit(req).expect("queue_depth covers all six jobs"))
        })
        .collect();
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|(s, h)| {
            let o = h.wait();
            let r = o.result.map_err(|e: JobError| e.to_string());
            (s, r, o.ticks)
        })
        .collect();
    rt.shutdown();
    let (_, ref_result, ref_ticks) = &outcomes[0];
    for (s, r, ticks) in &outcomes[1..] {
        if r != ref_result {
            return Err(format!(
                "serve seed {seed}: strategy {s} returned {r:?}, \
                 segmented returned {ref_result:?}\non:\n{program}"
            ));
        }
        if ticks != ref_ticks {
            return Err(format!(
                "serve seed {seed}: strategy {s} spent {ticks} fuel ticks, \
                 segmented spent {ref_ticks}\non:\n{program}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_rounds_agree() {
        for seed in 0..2 {
            serve_round(seed).unwrap();
        }
    }
}
