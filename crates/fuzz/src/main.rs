//! Command-line entry point for the fuzzer.
//!
//! ```text
//! segstack-fuzz [--seed N] [--traces M] [--start S] [--ops K]
//!               [--scheme M] [--serve M] [--quiet]
//! ```
//!
//! * `--seed N` replays the single trace generated from seed `N` (with
//!   invariant audits) and prints it with the verdict.
//! * `--traces M` fuzzes seeds `S..S+M`; on the first failure the trace is
//!   shrunk and printed together with its replay command, and the process
//!   exits nonzero.
//! * `--scheme M` / `--serve M` run Scheme-level and serve-level
//!   differential rounds for seeds `S..S+M`.
//!
//! With no mode flag at all, a default campaign runs: 1000 traces, 8
//! Scheme rounds, 2 serve rounds.

use std::process::ExitCode;

use segstack_fuzz::progs::differential_round;
use segstack_fuzz::serve_fuzz::serve_round;
use segstack_fuzz::{fuzz_trace, shrink, TraceSpec};

struct Args {
    seed: Option<u64>,
    traces: Option<u64>,
    start: u64,
    ops: usize,
    scheme: Option<u64>,
    serve: Option<u64>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: None,
        traces: None,
        start: 0,
        ops: 64,
        scheme: None,
        serve: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{what} needs a value"))
                .and_then(|v| v.parse::<u64>().map_err(|_| format!("{what}: not a number: {v}")))
        };
        match flag.as_str() {
            "--seed" => args.seed = Some(value("--seed")?),
            "--traces" => args.traces = Some(value("--traces")?),
            "--start" => args.start = value("--start")?,
            "--ops" => args.ops = value("--ops")? as usize,
            "--scheme" => args.scheme = Some(value("--scheme")?),
            "--serve" => args.serve = Some(value("--serve")?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: segstack-fuzz [--seed N] [--traces M] [--start S] [--ops K] \
                     [--scheme M] [--serve M] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

/// Suppresses panic backtrace spew while intentionally failing candidate
/// traces run under `catch_unwind` during shrinking.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

fn report_failure(spec: &TraceSpec, ops: usize, err: &str) {
    eprintln!("FAIL seed {}: {err}", spec.seed);
    let small = with_quiet_panics(|| shrink(spec, &|t| fuzz_trace(t).is_err()));
    let small_err = with_quiet_panics(|| fuzz_trace(&small).unwrap_err());
    eprintln!("shrunk to {} ops ({small_err}):", small.ops.len());
    eprintln!("{small}");
    eprintln!("replay: cargo run -p segstack-fuzz -- --seed {} --ops {ops}", spec.seed);
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("segstack-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(seed) = args.seed {
        let spec = TraceSpec::generate(seed, args.ops);
        println!("{spec}");
        return match with_quiet_panics(|| fuzz_trace(&spec)) {
            Ok(()) => {
                println!("seed {seed}: ok (all strategies agree, audits clean)");
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_failure(&spec, args.ops, &e);
                ExitCode::FAILURE
            }
        };
    }

    // Default campaign when no mode flag was given.
    let no_mode = args.traces.is_none() && args.scheme.is_none() && args.serve.is_none();
    let traces = args.traces.unwrap_or(if no_mode { 1000 } else { 0 });
    let scheme = args.scheme.unwrap_or(if no_mode { 8 } else { 0 });
    let serve = args.serve.unwrap_or(if no_mode { 2 } else { 0 });

    for seed in args.start..args.start + traces {
        let spec = TraceSpec::generate(seed, args.ops);
        if let Err(e) = with_quiet_panics(|| fuzz_trace(&spec)) {
            report_failure(&spec, args.ops, &e);
            return ExitCode::FAILURE;
        }
        if !args.quiet && seed.wrapping_sub(args.start) % 1000 == 999 {
            println!("... {} traces clean", seed - args.start + 1);
        }
    }
    if traces > 0 {
        println!("traces: {traces} clean (seeds {}..{})", args.start, args.start + traces);
    }

    for seed in args.start..args.start + scheme {
        if let Err(e) = differential_round(seed) {
            eprintln!("FAIL {e}");
            eprintln!("replay: cargo run -p segstack-fuzz -- --scheme 1 --start {seed}");
            return ExitCode::FAILURE;
        }
    }
    if scheme > 0 {
        println!("scheme rounds: {scheme} clean");
    }

    for seed in args.start..args.start + serve {
        if let Err(e) = serve_round(seed) {
            eprintln!("FAIL {e}");
            eprintln!("replay: cargo run -p segstack-fuzz -- --serve 1 --start {seed}");
            return ExitCode::FAILURE;
        }
    }
    if serve > 0 {
        println!("serve rounds: {serve} clean");
    }
    ExitCode::SUCCESS
}
