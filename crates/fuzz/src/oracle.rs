//! The vector-of-frames reference oracle.
//!
//! One flat `Vec` of slots, a frame pointer, and — the part no real
//! strategy needs — a per-frame *definitely-written* bitmask. The oracle
//! executes the same trace as the strategies and predicts every observable:
//! return addresses, backtraces, and slot reads. A slot read is only
//! compared when the oracle knows the slot was written by the current
//! activation; otherwise the strategies legitimately disagree among
//! themselves (flat buffers return stale words, heap frames return
//! `Empty`, the hybrid's overflow migration drops caller slots above the
//! staged region), so the oracle reports a wildcard.
//!
//! Capture clones the live prefix; reinstatement writes it back. That is
//! the semantics all six strategies must agree on — the paper's segmented
//! machine merely implements it without the copying.

use std::rc::Rc;

use segstack_core::{CodeAddr, FrameSizeTable, ReturnAddress, TestCode, TestSlot};

use crate::driver::Obs;
use crate::trace::Op;

/// A saved oracle continuation: the stack prefix below the live frame, the
/// validity masks of those frames, and the return address to resume at.
#[derive(Clone)]
enum SavedKont {
    /// Captured at the stack bottom: reinstating empties the stack.
    Exit,
    /// Captured at depth: `image` is `stack[0..fp]`, `resume` the live
    /// frame's return address, `valid` the masks of the saved frames.
    Deep { image: Vec<TestSlot>, valid: Vec<u128>, resume: CodeAddr },
}

/// A ring entry: the saved continuation plus its one-shot bookkeeping.
/// Every strategy consumes a one-shot exactly on a successful explicit
/// reinstatement through the continuation object — returning through the
/// capture point normally does not consume the shot — so the oracle can
/// predict the [`Obs::OneShotReuse`] error with two booleans.
#[derive(Clone)]
struct SavedEntry {
    kont: SavedKont,
    one_shot: bool,
    consumed: bool,
}

/// The reference machine. Observationally equivalent to every
/// [`ControlStack`](segstack_core::ControlStack) strategy by construction.
pub struct Oracle {
    code: Rc<TestCode>,
    frame_bound: usize,
    stack: Vec<TestSlot>,
    fp: usize,
    /// Definitely-written bitmask per live frame, bottom to top. Bit `i`
    /// set means slot `fp + i` of that frame holds a value every strategy
    /// reproduces. The live frame's mask is `valid.last()`.
    valid: Vec<u128>,
    saved: Vec<SavedEntry>,
    captures: usize,
}

impl Oracle {
    /// Creates the empty oracle stack sharing the trace's code table.
    /// `frame_bound` is the trace's frame bound: slots at or above it are
    /// staging space whose contents do not survive a capture (the cache
    /// and hybrid models slide exactly one frame bound of the live frame).
    pub fn new(code: Rc<TestCode>, frame_bound: usize) -> Oracle {
        Oracle {
            code,
            frame_bound,
            stack: vec![TestSlot::Ra(ReturnAddress::Exit)],
            fp: 0,
            valid: vec![0],
            saved: Vec::new(),
            captures: 0,
        }
    }

    fn put(&mut self, idx: usize, v: TestSlot) {
        if idx >= self.stack.len() {
            self.stack.resize(idx + 1, TestSlot::Empty);
        }
        self.stack[idx] = v;
    }

    fn read(&self, idx: usize) -> TestSlot {
        self.stack.get(idx).cloned().unwrap_or(TestSlot::Empty)
    }

    fn live_mask(&mut self) -> &mut u128 {
        self.valid.last_mut().expect("at least the root frame is live")
    }

    fn do_call(&mut self, d: usize, nargs: usize, args: &[i64], ra: CodeAddr) {
        for (j, &a) in args.iter().enumerate() {
            self.put(self.fp + d + 1 + j, TestSlot::Int(a));
        }
        self.put(self.fp + d, TestSlot::Ra(ReturnAddress::Code(ra)));
        // The caller's definitely-written slots stop at its own frame: the
        // callee and everything it stages live above `d` and are dead once
        // control returns (strategies that migrate or reallocate frames do
        // not preserve them).
        *self.live_mask() &= (1u128 << d) - 1;
        // The callee definitely holds its staged arguments at 1..=nargs.
        let mut mask = 0u128;
        for j in 0..nargs {
            mask |= 1 << (1 + j);
        }
        self.valid.push(mask);
        self.fp += d;
    }

    fn do_ret(&mut self) -> ReturnAddress {
        match self.read(self.fp) {
            TestSlot::Ra(ReturnAddress::Code(r)) => {
                self.fp -= self.code.displacement(r);
                self.valid.pop();
                ReturnAddress::Code(r)
            }
            TestSlot::Ra(ReturnAddress::Exit) => ReturnAddress::Exit,
            other => panic!("oracle frame base holds {other:?}"),
        }
    }

    fn do_capture(&mut self, one_shot: bool) -> Obs {
        // A frame's guaranteed extent is one frame bound: capture
        // slides (cache) or migrates (hybrid, incremental) at most
        // that much of the live frame, so staging slots above the
        // bound do not survive.
        let fb = self.frame_bound;
        *self.live_mask() &= (1u128 << fb) - 1;
        let kont = if self.fp == 0 {
            SavedKont::Exit
        } else {
            let resume = match self.read(self.fp) {
                TestSlot::Ra(ReturnAddress::Code(r)) => r,
                other => panic!("oracle live frame base holds {other:?}"),
            };
            SavedKont::Deep {
                image: self.stack[..self.fp].to_vec(),
                valid: self.valid[..self.valid.len() - 1].to_vec(),
                resume,
            }
        };
        let entry = SavedEntry { kont, one_shot, consumed: false };
        let slot = self.captures % 8;
        if slot < self.saved.len() {
            self.saved[slot] = entry;
        } else {
            self.saved.push(entry);
        }
        self.captures += 1;
        Obs::Captured
    }

    /// Executes one op, returning the predicted observation.
    ///
    /// `ra` is the pre-assigned return address for `Call`/`LeafCall` ops
    /// (see [`CompiledTrace`](crate::driver::CompiledTrace)).
    pub fn apply(&mut self, op: &Op, ra: Option<CodeAddr>) -> Obs {
        match op {
            Op::Call { d, nargs, args } => {
                self.do_call(*d, *nargs, args, ra.expect("call ops carry a return address"));
                Obs::CallOk
            }
            Op::LeafCall { d, nargs, args } => {
                self.do_call(*d, *nargs, args, ra.expect("call ops carry a return address"));
                let vals = (0..*nargs).map(|j| self.read(self.fp + 1 + j)).collect();
                let back = self.do_ret();
                debug_assert!(matches!(back, ReturnAddress::Code(_)));
                Obs::Leaf(vals)
            }
            Op::TailCall { src, nargs } => {
                let mut mask = 0u128;
                let old = *self.live_mask();
                for j in 0..*nargs {
                    let v = self.read(self.fp + src + j);
                    self.put(self.fp + 1 + j, v);
                    if old & (1 << (src + j)) != 0 {
                        mask |= 1 << (1 + j);
                    }
                }
                // Everything outside the shuffled arguments is dead: the
                // heap model allocates a fresh [ra, args...] frame.
                *self.live_mask() = mask;
                Obs::TailOk
            }
            Op::Ret => Obs::Ret(self.do_ret()),
            Op::Set { i, v } => {
                self.put(self.fp + i, TestSlot::Int(*v));
                *self.live_mask() |= 1 << i;
                Obs::SetOk
            }
            Op::Get { i } => {
                if *self.live_mask() & (1 << i) != 0 {
                    Obs::Got(self.read(self.fp + i))
                } else {
                    Obs::GotAny
                }
            }
            Op::Capture => self.do_capture(false),
            Op::CaptureOneShot => self.do_capture(true),
            Op::Reinstate { k } => {
                if self.saved.is_empty() {
                    return Obs::Skipped;
                }
                let idx = k % self.saved.len();
                let entry = self.saved[idx].clone();
                if entry.one_shot && entry.consumed {
                    // The strategies fail before touching any control
                    // state, so the oracle state stays put too.
                    return Obs::OneShotReuse;
                }
                if entry.one_shot {
                    self.saved[idx].consumed = true;
                }
                match entry.kont {
                    SavedKont::Exit => {
                        self.fp = 0;
                        self.stack.clear();
                        self.stack.push(TestSlot::Ra(ReturnAddress::Exit));
                        self.valid = vec![0];
                        Obs::Resumed(ReturnAddress::Exit)
                    }
                    SavedKont::Deep { image, valid, resume } => {
                        for (i, v) in image.iter().enumerate() {
                            self.put(i, *v);
                        }
                        self.fp = image.len() - self.code.displacement(resume);
                        self.valid = valid;
                        Obs::Resumed(ReturnAddress::Code(resume))
                    }
                }
            }
            Op::Backtrace { limit } => {
                let mut out = Vec::new();
                let mut pos = self.fp;
                while let TestSlot::Ra(ReturnAddress::Code(r)) = self.read(pos) {
                    out.push(r);
                    if out.len() >= *limit {
                        break;
                    }
                    pos -= self.code.displacement(r);
                }
                Obs::Backtrace(out)
            }
        }
    }
}
