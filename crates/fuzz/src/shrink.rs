//! Trace shrinking: delete-chunk, then per-op simplification.
//!
//! The failing predicate is re-run on every candidate, so whatever failure
//! mode was observed (divergence, audit violation, panic) only needs to
//! *still fail* — it does not need to fail identically. Every candidate is
//! a legal trace by construction: op constraints are positional (validated
//! against the trace's frame bound, which shrinking never changes) and
//! continuation selectors resolve modulo the ring at run time.

use crate::trace::{Op, TraceSpec};

/// Shrinks `spec` to a locally minimal failing trace. `failing` must hold
/// for `spec` itself; the result still satisfies it, no single remaining
/// chunk deletion of any tried granularity makes it fail, and no tried
/// per-op simplification preserves the failure.
pub fn shrink(spec: &TraceSpec, failing: &dyn Fn(&TraceSpec) -> bool) -> TraceSpec {
    let mut cur = spec.clone();
    // Pass 1: delete runs of ops, halving the run length down to one.
    let mut chunk = (cur.ops.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.ops.len() {
            let mut cand = cur.clone();
            let hi = (i + chunk).min(cand.ops.len());
            cand.ops.drain(i..hi);
            if failing(&cand) {
                cur = cand; // keep position: the next chunk shifted into `i`
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Pass 2: simplify ops in place until a fixpoint (bounded).
    for _ in 0..8 {
        let mut changed = false;
        for i in 0..cur.ops.len() {
            for simpler in simplify(&cur.ops[i]) {
                if simpler == cur.ops[i] {
                    continue;
                }
                let mut cand = cur.clone();
                cand.ops[i] = simpler;
                if failing(&cand) {
                    cur = cand;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }
    cur
}

/// Simplification candidates for one op, most aggressive first.
fn simplify(op: &Op) -> Vec<Op> {
    match op {
        Op::Call { d, nargs, args } => vec![
            Op::Call { d: 1, nargs: 0, args: vec![] },
            Op::Call { d: *d, nargs: 0, args: vec![] },
            Op::Call { d: 1, nargs: *nargs, args: args.clone() },
            Op::Call { d: *d, nargs: *nargs, args: vec![0; *nargs] },
        ],
        Op::LeafCall { d, nargs, args: _ } => vec![
            Op::LeafCall { d: 1, nargs: 0, args: vec![] },
            Op::LeafCall { d: *d, nargs: 0, args: vec![] },
            Op::LeafCall { d: *d, nargs: *nargs, args: vec![0; *nargs] },
        ],
        Op::TailCall { .. } => vec![Op::TailCall { src: 1, nargs: 0 }],
        Op::Set { i, .. } => vec![Op::Set { i: 1, v: 0 }, Op::Set { i: *i, v: 0 }],
        Op::Get { .. } => vec![Op::Get { i: 1 }],
        Op::Reinstate { .. } => vec![Op::Reinstate { k: 0 }],
        Op::Backtrace { .. } => vec![Op::Backtrace { limit: 1 }],
        // A one-shot capture is "more" than a plain capture (it adds the
        // reuse failure mode); try downgrading it when the failure does
        // not depend on one-shot semantics.
        Op::CaptureOneShot => vec![Op::Capture],
        Op::Ret | Op::Capture => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSpec;

    /// A synthetic failure: "contains a capture (either kind) and, later,
    /// a Reinstate". Shrinking must find the minimal two-op witness — and
    /// the per-op pass downgrades a surviving `CaptureOneShot` to the
    /// simpler `Capture`.
    #[test]
    fn shrinks_to_the_minimal_witness() {
        let spec = TraceSpec::generate(7, 200);
        let failing = |t: &TraceSpec| {
            let cap = t.ops.iter().position(|o| matches!(o, Op::Capture | Op::CaptureOneShot));
            match cap {
                Some(c) => t.ops[c..].iter().any(|o| matches!(o, Op::Reinstate { .. })),
                None => false,
            }
        };
        if !failing(&spec) {
            // The seed is fixed, so this is a deterministic precondition.
            panic!("seed 7 no longer produces a capture+reinstate trace");
        }
        let small = shrink(&spec, &failing);
        assert_eq!(small.ops.len(), 2, "got: {small}");
        assert!(matches!(small.ops[0], Op::Capture));
        assert!(matches!(small.ops[1], Op::Reinstate { k: 0 }));
    }

    /// Shrinking preserves the failure and never grows the trace.
    #[test]
    fn shrunk_traces_still_fail_and_are_no_longer() {
        for seed in 0..8u64 {
            let spec = TraceSpec::generate(seed, 64);
            let failing =
                |t: &TraceSpec| t.ops.iter().filter(|o| matches!(o, Op::Ret)).count() >= 3;
            if !failing(&spec) {
                continue;
            }
            let small = shrink(&spec, &failing);
            assert!(failing(&small));
            assert!(small.ops.len() <= spec.ops.len());
            assert_eq!(small.ops.len(), 3, "minimal witness is three rets: {small}");
        }
    }
}
