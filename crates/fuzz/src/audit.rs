//! Invariant-audit mode: replays a trace on the concrete
//! [`SegmentedStack`] and checks the paper-level properties after every
//! single operation.
//!
//! Structural well-formedness (record shapes, the two-frame overflow
//! reserve, base-word/link agreement) is delegated to
//! [`SegmentedStack::audit_invariants`]; this module adds the *cost*
//! properties, checked as per-op metric deltas:
//!
//! * capture copies zero slots and grows the record chain by at most one
//!   record — and by **zero** records in tail position (`fp == base`), the
//!   §4 `looper` rule;
//! * reinstatement (explicit, or implicit through underflow) copies at
//!   most `max(copy_bound, frame_bound)` slots (Figures 6–7);
//! * an overflowing call copies only the staged arguments (§5);
//! * everything else copies nothing.
//!
//! The audit stack also records into a tracing ring
//! ([`segstack_core::RingSink`]), and the run ends with an
//! event/metrics cross-check: every counter the machine reports must
//! equal the number of events the instrumentation emitted for it. A
//! divergence means an instrumentation hook was skipped or
//! double-fired on some path the fuzzer found.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use segstack_core::trace::EventKind;
use segstack_core::{ControlStack, RingSink, SegmentedStack, TestSlot};

use crate::driver::{apply_op, drain, CompiledTrace};
use crate::trace::{Op, TraceSpec};

/// Replays the trace on a segmented stack, auditing after every op.
pub fn run_audited(spec: &TraceSpec, compiled: &CompiledTrace) -> Result<(), String> {
    let at_op = Cell::new(usize::MAX);
    let outcome = catch_unwind(AssertUnwindSafe(|| audit_loop(spec, compiled, &at_op)));
    match outcome {
        Ok(r) => r,
        Err(e) => {
            let msg = e
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| e.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(match at_op.get() {
                usize::MAX => format!("audit: panicked during setup: {msg}"),
                i => format!("audit: panicked at op [{i}]: {msg}"),
            })
        }
    }
}

fn audit_loop(
    spec: &TraceSpec,
    compiled: &CompiledTrace,
    at_op: &Cell<usize>,
) -> Result<(), String> {
    let mut stack = SegmentedStack::<TestSlot, RingSink>::with_sink(
        spec.config(),
        compiled.code.clone(),
        RingSink::new(),
    )
    .map_err(|e| format!("audit: cannot build segmented stack: {e}"))?;
    let reinstate_bound = spec.copy_bound.max(spec.frame_bound) as u64;
    let mut saved = Vec::new();
    let mut captures = 0usize;
    stack.audit_invariants().map_err(|e| format!("audit: initial state: {e}"))?;
    for (i, op) in spec.ops.iter().enumerate() {
        at_op.set(i);
        let fail = |what: String| Err(format!("audit: op [{i}] {op:?}: {what}"));
        let before = stack.metrics().clone();
        let (fp_before, base_before) = (stack.fp(), stack.segment_base());
        let chain_before = stack.stats().chain_records;
        apply_op(&mut stack, op, compiled.ras[i], &mut saved, &mut captures);
        stack.audit_invariants().or_else(&fail)?;
        let m = stack.metrics();
        let copied = m.slots_copied - before.slots_copied;
        let underflows = m.underflows - before.underflows;
        let relinked = m.reinstates_relinked - before.reinstates_relinked;
        match op {
            Op::Capture | Op::CaptureOneShot => {
                if copied != 0 {
                    return fail(format!("capture copied {copied} slots; must copy none"));
                }
                let chain_after = stack.stats().chain_records;
                if fp_before == base_before {
                    // Tail position: the link itself is the continuation —
                    // the chain must not grow and the machine not move.
                    if chain_after != chain_before {
                        return fail(format!(
                            "tail capture grew the chain {chain_before} -> {chain_after}"
                        ));
                    }
                    if stack.fp() != fp_before || stack.segment_base() != base_before {
                        return fail("tail capture moved the frame pointer".into());
                    }
                } else if chain_after != chain_before + 1 {
                    return fail(format!(
                        "capture changed the chain {chain_before} -> {chain_after}; \
                         must add exactly one record"
                    ));
                }
            }
            Op::Reinstate { .. } => {
                // The relink fast path is zero-copy by definition: a
                // reinstatement either relinks (no slots move) or takes
                // the bounded copy path — never both.
                if relinked > 0 && copied != 0 {
                    return fail(format!("relinked reinstatement still copied {copied} slots"));
                }
                if relinked > 1 {
                    return fail(format!("one reinstate relinked {relinked} times"));
                }
                if copied > reinstate_bound {
                    return fail(format!(
                        "reinstate copied {copied} slots; bound is {reinstate_bound}"
                    ));
                }
            }
            Op::Ret => {
                if relinked > 0 && copied != 0 {
                    return fail(format!(
                        "relinked underflow reinstatement still copied {copied} slots"
                    ));
                }
                if underflows > 0 && copied > reinstate_bound {
                    return fail(format!(
                        "underflow reinstatement copied {copied} slots; bound is {reinstate_bound}"
                    ));
                }
                if underflows == 0 && copied != 0 {
                    return fail(format!("plain return copied {copied} slots"));
                }
            }
            Op::Call { nargs, .. } => {
                let overflowed = m.overflows - before.overflows;
                if overflowed > 0 && copied != *nargs as u64 {
                    return fail(format!(
                        "overflow moved {copied} slots; only the {nargs} staged args may move"
                    ));
                }
                if overflowed == 0 && copied != 0 {
                    return fail(format!("non-overflowing call copied {copied} slots"));
                }
            }
            Op::LeafCall { .. } => {
                if m.checks_elided != before.checks_elided + 1 {
                    return fail("leaf call did not elide its check".into());
                }
                if copied != 0 {
                    return fail(format!("leaf call copied {copied} slots"));
                }
            }
            Op::TailCall { .. } | Op::Set { .. } | Op::Get { .. } | Op::Backtrace { .. } => {
                if copied != 0 {
                    return fail(format!("{op:?} copied {copied} slots"));
                }
            }
        }
    }
    at_op.set(usize::MAX);
    // Drain with the reserve/record invariants still holding at each step.
    let before = stack.metrics().clone();
    drain(&mut stack);
    stack.audit_invariants().map_err(|e| format!("audit: after drain: {e}"))?;
    let m = stack.metrics();
    let underflows = m.underflows - before.underflows;
    let copied = m.slots_copied - before.slots_copied;
    if copied > underflows * (spec.copy_bound.max(spec.frame_bound) as u64) {
        return Err(format!(
            "audit: drain copied {copied} slots over {underflows} underflows; \
             each is bounded by {}",
            spec.copy_bound.max(spec.frame_bound)
        ));
    }
    cross_check_events(&stack)
}

/// Event-vs-metrics cross-check: each traced operation must have emitted
/// exactly as many events as the machine counted (segment allocations are
/// `<=` because the untraced constructor/reset sites also allocate).
fn cross_check_events(stack: &SegmentedStack<TestSlot, RingSink>) -> Result<(), String> {
    let m = stack.metrics();
    let ring = stack.sink();
    // Relinked switches get a single packed `Relink` write; only the copy
    // path opens a Begin/End span.
    let copy_reinstates = m.reinstatements - m.reinstates_relinked;
    let exact: [(EventKind, u64); 7] = [
        (EventKind::Capture, m.captures),
        (EventKind::ReinstateBegin, copy_reinstates),
        (EventKind::ReinstateEnd, copy_reinstates),
        (EventKind::Relink, m.reinstates_relinked),
        (EventKind::OverflowBegin, m.overflows),
        (EventKind::OverflowEnd, m.overflows),
        (EventKind::Underflow, m.underflows),
    ];
    for (kind, counter) in exact {
        let events = ring.kind_count(kind);
        if events != counter {
            return Err(format!(
                "audit: {} events ({events}) disagree with the metrics counter ({counter})",
                kind.name()
            ));
        }
    }
    // Splits happen on capture-path sealing *and* on bounded reinstates;
    // both sites are traced, so the counts must still agree exactly.
    if ring.kind_count(EventKind::Split) != m.splits {
        return Err(format!(
            "audit: split events ({}) disagree with the metrics counter ({})",
            ring.kind_count(EventKind::Split),
            m.splits
        ));
    }
    let allocs = ring.kind_count(EventKind::SegmentAlloc);
    if allocs > m.segments_allocated + m.segments_reused {
        return Err(format!(
            "audit: {allocs} segment_alloc events exceed allocations ({} + {} reused)",
            m.segments_allocated, m.segments_reused
        ));
    }
    Ok(())
}
