//! The trace grammar and its seeded generator.
//!
//! A trace is a configuration (segment size, frame bound, copy bound) plus a
//! sequence of control operations expressed directly against the
//! [`ControlStack`](segstack_core::ControlStack) protocol. Every draw comes
//! from [`SplitMix64`], so a trace is fully determined by its seed: a
//! failure replays from the seed alone.
//!
//! The generator is weighted toward adversarial interleavings: bursts of
//! calls that force segment overflow, bursts of returns that force
//! underflow through sealed records, captures at every depth (including the
//! `looper` tail position), and repeated reinstatement of saved
//! continuations across unrelated stack shapes.

use std::fmt;

use segstack_core::rng::SplitMix64;
use segstack_core::Config;

/// One control operation. Indices and sizes are pre-validated by the
/// generator against the trace's frame bound, so every op is legal to
/// execute on every strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Stage `args` at slots `d + 1 + j`, then `call(d, ra, nargs, true)`.
    /// The return address is pre-assigned per op index at compile time.
    Call {
        /// Caller frame size (displacement), `1..=frame_bound`.
        d: usize,
        /// Number of staged arguments, `1 + nargs <= frame_bound`.
        nargs: usize,
        /// Argument values, length `nargs`.
        args: Vec<i64>,
    },
    /// A self-contained leaf call with the overflow check elided
    /// (`check = false`): stage, call, read the arguments back, return.
    /// Exercises the two-frame reserve that makes check elision sound
    /// (Figure 8).
    LeafCall {
        /// Caller frame size, `1..=frame_bound`.
        d: usize,
        /// Number of staged arguments.
        nargs: usize,
        /// Argument values, length `nargs`.
        args: Vec<i64>,
    },
    /// `tail_call(src, nargs)`: shuffle `nargs` slots from `src..` down to
    /// `1..`. Generated with `src >= 1` and `src + nargs <= frame_bound + 1`.
    TailCall {
        /// Source offset of the staged arguments.
        src: usize,
        /// Number of slots to shuffle.
        nargs: usize,
    },
    /// `ret()`: observable return address (code, or exit at the bottom).
    Ret,
    /// `set(i, Int(v))` with `1 <= i < 2 * frame_bound`.
    Set {
        /// Slot index relative to the frame pointer.
        i: usize,
        /// Value to store.
        v: i64,
    },
    /// `get(i)` with `1 <= i < 2 * frame_bound`; compared against the
    /// oracle only when the slot is definitely-written (see
    /// [`oracle`](crate::oracle)).
    Get {
        /// Slot index relative to the frame pointer.
        i: usize,
    },
    /// `capture()`, saving the continuation into a ring of eight.
    Capture,
    /// `capture_one_shot()`, saving the one-shot continuation into the same
    /// ring. Reinstating it a second time must fail with
    /// [`StackError::OneShotReused`](segstack_core::StackError::OneShotReused)
    /// on every strategy — and leave the machine state untouched.
    CaptureOneShot,
    /// `reinstate` the `k % saved.len()`-th saved continuation (skipped as
    /// a no-op while nothing has been captured yet).
    Reinstate {
        /// Ring selector, resolved modulo the current number saved.
        k: usize,
    },
    /// `backtrace(limit)`: the observable return-address spine.
    Backtrace {
        /// Maximum number of frames reported.
        limit: usize,
    },
}

/// A complete generated trace: the seed it came from, the stack
/// configuration it runs under, and the operation sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Seed the trace was generated from (kept for replay reporting).
    pub seed: u64,
    /// Segment (or cache) size in slots.
    pub segment_slots: usize,
    /// Maximum frame size in slots.
    pub frame_bound: usize,
    /// Reinstatement copy bound in slots.
    pub copy_bound: usize,
    /// The operation sequence.
    pub ops: Vec<Op>,
}

impl TraceSpec {
    /// Builds the stack [`Config`] for this trace. No total-slot budget is
    /// set: budget exhaustion is strategy-dependent by design (the heap and
    /// copy models have no segments), so it is not a differential
    /// observable.
    pub fn config(&self) -> Config {
        Config::builder()
            .segment_slots(self.segment_slots)
            .frame_bound(self.frame_bound)
            .copy_bound(self.copy_bound)
            .build()
            .expect("generated configurations are always valid")
    }

    /// Generates the trace for `seed` with roughly `max_ops` operations.
    pub fn generate(seed: u64, max_ops: usize) -> TraceSpec {
        let mut rng = SplitMix64::new(seed);
        let fb = *rng.choose(&[4usize, 6, 8, 12, 16]);
        let seg_choices = [3 * fb, 4 * fb, 6 * fb, 128, 256];
        let segment_slots = *rng.choose(&seg_choices);
        let cb_choices =
            [1, 2, (fb / 2).max(1), fb, 2 * fb, (segment_slots / 2).max(1), segment_slots];
        let copy_bound = *rng.choose(&cb_choices);

        let mut ops = Vec::with_capacity(max_ops);
        // Logical frame depth, tracked so return bursts can be sized to
        // punch through every sealed record down to the exit. The ring
        // mirror carries `(depth, one_shot, consumed)` so reinstates of
        // already-consumed one-shots (which are errors, not jumps) do not
        // perturb the depth estimate.
        let mut depth: usize = 0;
        let mut saved: Vec<(usize, bool, bool)> = Vec::new();
        let mut captures: usize = 0;
        while ops.len() < max_ops {
            // Occasionally emit a burst instead of a single op.
            if rng.gen_range(0, 24) == 0 {
                if rng.gen_bool() {
                    // Overflow burst: enough calls to cross a segment.
                    let n = segment_slots / 2 + 2;
                    for _ in 0..n {
                        ops.push(gen_call(&mut rng, fb, false));
                        depth += 1;
                    }
                } else {
                    // Unwind burst: force underflows, possibly to the exit.
                    let n = depth + 2;
                    for _ in 0..n {
                        ops.push(Op::Ret);
                    }
                    depth = 0;
                }
                continue;
            }
            match rng.gen_range(0, 100) {
                0..=29 => {
                    ops.push(gen_call(&mut rng, fb, false));
                    depth += 1;
                }
                30..=37 => ops.push(gen_call(&mut rng, fb, true)),
                38..=45 => {
                    let src = rng.gen_range(1, fb as u64 + 1) as usize;
                    let nargs = rng.gen_range(0, (fb + 2 - src) as u64) as usize;
                    ops.push(Op::TailCall { src, nargs });
                }
                46..=67 => {
                    ops.push(Op::Ret);
                    depth = depth.saturating_sub(1);
                }
                68..=77 => {
                    let i = rng.gen_range(1, 2 * fb as u64) as usize;
                    ops.push(Op::Set { i, v: rng.gen_range_i64(-1000, 1000) });
                }
                78..=83 => {
                    ops.push(Op::Get { i: rng.gen_range(1, 2 * fb as u64) as usize });
                }
                84..=89 => {
                    let one_shot = rng.gen_bool();
                    ops.push(if one_shot { Op::CaptureOneShot } else { Op::Capture });
                    // Mirror the driver's ring-of-eight bookkeeping.
                    let slot = captures % 8;
                    if slot < saved.len() {
                        saved[slot] = (depth, one_shot, false);
                    } else {
                        saved.push((depth, one_shot, false));
                    }
                    captures += 1;
                }
                90..=95 => {
                    let k = rng.gen_range(0, 64) as usize;
                    ops.push(Op::Reinstate { k });
                    if !saved.is_empty() {
                        let len = saved.len();
                        let entry = &mut saved[k % len];
                        // A consumed one-shot errors instead of jumping.
                        if !(entry.1 && entry.2) {
                            depth = entry.0;
                            if entry.1 {
                                entry.2 = true;
                            }
                        }
                    }
                }
                _ => {
                    ops.push(Op::Backtrace { limit: rng.gen_range(1, 41) as usize });
                }
            }
        }
        ops.truncate(max_ops);
        TraceSpec { seed, segment_slots, frame_bound: fb, copy_bound, ops }
    }
}

/// Draws a `Call` (or, when `leaf`, a `LeafCall`) within the frame bound.
fn gen_call(rng: &mut SplitMix64, fb: usize, leaf: bool) -> Op {
    let d = rng.gen_range(1, fb as u64 + 1) as usize;
    let nargs = rng.gen_range(0, fb as u64) as usize;
    let args = (0..nargs).map(|_| rng.gen_range_i64(-1000, 1000)).collect();
    if leaf {
        Op::LeafCall { d, nargs, args }
    } else {
        Op::Call { d, nargs, args }
    }
}

impl fmt::Display for TraceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "seed={} segment_slots={} frame_bound={} copy_bound={} ops={}",
            self.seed,
            self.segment_slots,
            self.frame_bound,
            self.copy_bound,
            self.ops.len()
        )?;
        for (i, op) in self.ops.iter().enumerate() {
            writeln!(f, "  [{i:3}] {op:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = TraceSpec::generate(42, 64);
        let b = TraceSpec::generate(42, 64);
        assert_eq!(a, b);
        assert_eq!(a.ops.len(), 64);
    }

    #[test]
    fn distinct_seeds_give_distinct_traces() {
        let a = TraceSpec::generate(1, 64);
        let b = TraceSpec::generate(2, 64);
        assert_ne!(a.ops, b.ops);
    }

    #[test]
    fn both_capture_kinds_and_reuse_candidates_are_generated() {
        let mut plain = 0usize;
        let mut one_shot = 0usize;
        for seed in 0..50 {
            let t = TraceSpec::generate(seed, 256);
            plain += t.ops.iter().filter(|o| matches!(o, Op::Capture)).count();
            one_shot += t.ops.iter().filter(|o| matches!(o, Op::CaptureOneShot)).count();
        }
        assert!(plain > 0, "multi-shot captures vanished from the grammar");
        assert!(one_shot > 0, "one-shot captures vanished from the grammar");
    }

    #[test]
    fn generated_ops_respect_the_frame_bound() {
        for seed in 0..50 {
            let t = TraceSpec::generate(seed, 128);
            let fb = t.frame_bound;
            assert!(t.segment_slots >= 3 * fb, "seed {seed}");
            for op in &t.ops {
                match op {
                    Op::Call { d, nargs, args } | Op::LeafCall { d, nargs, args } => {
                        assert!((1..=fb).contains(d), "seed {seed}: {op:?}");
                        assert!(*nargs < fb, "seed {seed}: {op:?}");
                        assert_eq!(args.len(), *nargs);
                    }
                    Op::TailCall { src, nargs } => {
                        assert!(*src >= 1 && src + nargs <= fb + 1, "seed {seed}: {op:?}");
                    }
                    Op::Set { i, .. } | Op::Get { i } => {
                        assert!((1..2 * fb).contains(i), "seed {seed}: {op:?}");
                    }
                    Op::Backtrace { limit } => assert!(*limit >= 1),
                    Op::Ret | Op::Capture | Op::CaptureOneShot | Op::Reinstate { .. } => {}
                }
            }
        }
    }
}
