//! Deterministic control-trace fuzzer for the segstack workspace.
//!
//! Three layers, all seeded by [`SplitMix64`](segstack_core::rng::SplitMix64)
//! so every failure replays from a number:
//!
//! 1. **Trace fuzzing** ([`trace`], [`oracle`], [`driver`]): weighted
//!    random sequences of `call` / `tail_call` / `ret` / `capture` /
//!    `reinstate` / slot ops run through [`SegmentedStack`](segstack_core::SegmentedStack)
//!    and all five baselines via the
//!    [`ControlStack`](segstack_core::ControlStack) trait, compared
//!    observation-by-observation against a vector-of-frames reference
//!    oracle.
//! 2. **Invariant audits** ([`audit`]): the same traces replayed on the
//!    concrete segmented machine, checking the paper-level properties
//!    after every op — record well-formedness, the two-frame overflow
//!    reserve (Figure 8), zero-copy capture and the §4 tail-capture rule,
//!    and the `max(copy_bound, frame_bound)` reinstatement bound
//!    (Figures 6–7).
//! 3. **Program fuzzing** ([`progs`], [`serve_fuzz`]): fuel-bounded,
//!    `call/cc`-heavy Scheme programs run differentially on full engines,
//!    directly and through the `serve` runtime under preemption.
//!
//! Failures shrink automatically ([`shrink`]) to a locally minimal trace
//! and print as a replayable `--seed` literal; see `docs/FUZZING.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod driver;
pub mod oracle;
pub mod progs;
pub mod serve_fuzz;
pub mod shrink;
pub mod trace;

pub use driver::fuzz_trace;
pub use shrink::shrink;
pub use trace::{Op, TraceSpec};
