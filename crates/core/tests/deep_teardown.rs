//! Deep-chain teardown: record chains with 100k+ links must be
//! measurable and droppable without native-stack recursion.
//!
//! Continuation records link to continuation records, so a naive
//! recursive `Drop` (or a recursive chain accessor) consumes native
//! stack proportional to the chain length — ironic for a crate whose
//! subject is bounded control-stack usage. These tests build chains far
//! past any plausible recursion budget and exercise the iterative
//! accessors ([`Continuation::chain_len`], `retained_slots`, `stats`)
//! plus the [`defer_drop`](segstack_core::defer_drop)-based teardown.

use segstack_core::{Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot};
use std::rc::Rc;

/// Deep enough that a recursive walk or drop would overflow the native
/// stack long before completing.
const DEEP: usize = 120_000;

/// The §4 ablation (tail-capture rule disabled) chains one empty record
/// per capture at the segment base — the paper's "the control stack
/// would grow progressively longer" failure mode. The chain must still
/// measure and tear down iteratively.
#[test]
fn ablation_capture_chain_tears_down_iteratively() {
    let cfg = Config::builder()
        .segment_slots(96)
        .frame_bound(8)
        .copy_bound(16)
        .disable_tail_capture_rule()
        .build()
        .unwrap();
    let code = Rc::new(TestCode::new());
    let mut stack = SegmentedStack::<TestSlot>::new(cfg, code).unwrap();
    let mut last = None;
    for _ in 0..DEEP {
        last = Some(stack.capture());
    }
    let k = last.unwrap();
    assert_eq!(k.chain_len(), DEEP);
    assert_eq!(k.retained_slots(), 0, "every ablation record is empty");
    let stats = stack.stats();
    assert_eq!(stats.chain_records, DEEP);
    assert_eq!(stats.chain_slots, 0);
    // Freeing the machine and the handle walks the whole chain; only the
    // deferred-drop queue keeps this off the native stack.
    drop(stack);
    drop(k);
}

/// Overflow-driven chains: with the smallest legal segment every other
/// call seals a record, so a long computation strings 100k+ real
/// (non-empty) records together. Unwinding consumes part of the chain
/// through the underflow path; dropping frees the rest.
#[test]
fn overflow_record_chain_tears_down_iteratively() {
    let cfg = Config::builder().segment_slots(12).frame_bound(4).copy_bound(4).build().unwrap();
    let code = Rc::new(TestCode::new());
    let ra = code.ret_point(4);
    let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
    while (stack.metrics().overflows as usize) < DEEP {
        stack.call(4, ra, 0, true).unwrap();
    }
    let k = stack.capture();
    assert!(k.chain_len() >= DEEP, "chain has {} records", k.chain_len());
    assert!(k.retained_slots() >= 4 * DEEP, "records retain their frames");
    assert!(stack.stats().chain_records >= DEEP);
    // Return across a few thousand record boundaries: each underflow
    // consumes one record (an implicit reinstatement), iteratively.
    let underflows_before = stack.metrics().underflows;
    for _ in 0..5_000 {
        assert_ne!(stack.ret().unwrap(), ReturnAddress::Exit, "unwound too far");
    }
    assert!(stack.metrics().underflows > underflows_before);
    drop(stack);
    drop(k);
}
