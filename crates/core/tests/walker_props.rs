//! Property tests for the stack walker and continuation splitting.
//!
//! Randomized inputs come from a seeded [`SplitMix64`] stream (the
//! offline stand-in for proptest), so every case is reproducible: a
//! failure message names the seed that produced it.

use segstack_core::rng::SplitMix64;
use segstack_core::{
    walker, Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot,
};
use std::rc::Rc;

/// Builds a synthetic occupied segment with the given frame sizes (bottom
/// to top), returning `(buffer, top, top_ra)`.
fn build(code: &TestCode, sizes: &[usize]) -> (Vec<TestSlot>, usize, segstack_core::CodeAddr) {
    let total: usize = sizes.iter().sum();
    let mut buf = vec![TestSlot::Empty; total + 4];
    buf[0] = TestSlot::Ra(ReturnAddress::Exit);
    let mut fbase = 0;
    let mut prev = None;
    for &d in sizes {
        if let Some(ra) = prev {
            buf[fbase] = TestSlot::Ra(ReturnAddress::Code(ra));
        }
        prev = Some(code.ret_point(d));
        fbase += d;
    }
    (buf, fbase, prev.expect("at least one frame"))
}

/// Draws a frame-size vector the way the old proptest strategy did:
/// 1..40 frames of 2..20 slots each.
fn arb_sizes(rng: &mut SplitMix64) -> Vec<usize> {
    let len = rng.gen_range(1, 40) as usize;
    (0..len).map(|_| rng.gen_range(2, 20) as usize).collect()
}

/// The walker reconstructs exactly the frames that were laid down,
/// top-down, from nothing but return addresses and code-stream words.
#[test]
fn walk_reconstructs_the_layout() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let sizes = arb_sizes(&mut rng);
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &sizes);
        let frames = walker::frames(&buf, 0, top, ra, &code);
        assert_eq!(frames.len(), sizes.len(), "seed {seed}");
        // Top-down sizes match the reversed build order.
        let walked: Vec<usize> = frames.iter().map(|f| f.size()).collect();
        let mut expected = sizes.clone();
        expected.reverse();
        assert_eq!(walked, expected, "seed {seed}");
        // Extents tile the segment exactly.
        assert_eq!(frames.last().unwrap().base, 0, "seed {seed}");
        assert_eq!(frames[0].top, top, "seed {seed}");
        for w in frames.windows(2) {
            assert_eq!(w[0].base, w[1].top, "seed {seed}");
        }
    }
}

/// The split point is always a frame boundary, keeps the suffix within
/// the bound when more than one frame fits, and never returns the base.
#[test]
fn split_point_invariants() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let sizes = arb_sizes(&mut rng);
        let bound = rng.gen_range(1, 120) as usize;
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &sizes);
        let frames = walker::frames(&buf, 0, top, ra, &code);
        match walker::split_point(&buf, 0, top, ra, &code, bound) {
            None => {
                // No split possible: single frame, or everything fits.
                assert!(
                    sizes.len() == 1 || top <= bound,
                    "seed {seed}: None with {} frames of total {top} (bound {bound})",
                    sizes.len()
                );
            }
            Some(s) => {
                assert!(s > 0 && s < top, "seed {seed}");
                assert!(
                    frames.iter().any(|f| f.base == s),
                    "seed {seed}: split off a frame boundary"
                );
                let suffix = top - s;
                let top_frame = frames[0].size();
                // Within the bound, or a single oversized top frame.
                assert!(
                    suffix <= bound || (suffix == top_frame && top_frame > bound),
                    "seed {seed}: suffix {suffix} bound {bound} top_frame {top_frame}"
                );
                // Maximality: the next deeper boundary would exceed the bound.
                if suffix <= bound {
                    if let Some(next) = frames.iter().find(|f| f.base < s).map(|f| f.base) {
                        assert!(
                            top - next > bound,
                            "seed {seed}: not the largest suffix within bound"
                        );
                    }
                }
            }
        }
    }
}

/// Random capture/reinstate round trips preserve the full unwind
/// sequence regardless of segment size and copy bound.
#[test]
fn capture_reinstate_preserves_unwind() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let depth = rng.gen_range(1, 80) as usize;
        let d = rng.gen_range(3, 10) as usize;
        let seg = rng.gen_range(96, 512) as usize;
        let bound = rng.gen_range(1, 64) as usize;
        check_capture_reinstate(seed, depth, d, seg, bound);
    }
}

/// A historical proptest-shrunk failure case, kept as an explicit
/// regression (minimal depth with the smallest segment and copy bound).
#[test]
fn capture_reinstate_shallow_tiny_bound_regression() {
    check_capture_reinstate(u64::MAX, 2, 3, 96, 1);
}

fn check_capture_reinstate(seed: u64, depth: usize, d: usize, seg: usize, bound: usize) {
    let code = Rc::new(TestCode::new());
    let cfg = Config::builder()
        .segment_slots(seg.max(3 * 16))
        .frame_bound(16)
        .copy_bound(bound)
        .build()
        .unwrap();
    let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
    let mut ras = Vec::new();
    for i in 0..depth {
        let ra = code.ret_point(d);
        stack.set(d + 1, TestSlot::Int(i as i64));
        stack.call(d, ra, 1, true).unwrap();
        ras.push(ra);
    }
    let k = stack.capture();
    // Unwind everything, reinstate, and check the replayed unwind.
    while stack.ret().unwrap() != ReturnAddress::Exit {}
    let resumed = stack.reinstate(&k).unwrap();
    assert_eq!(resumed, ReturnAddress::Code(ras[depth - 1]), "seed {seed}");
    for i in (0..depth - 1).rev() {
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]), "seed {seed}");
        if i > 0 {
            // After returning past frame i, the live frame is i-1.
            assert_eq!(stack.get(1), TestSlot::Int(i as i64 - 1), "seed {seed}");
        }
    }
    assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit, "seed {seed}");
}
