//! Property tests for the stack walker and continuation splitting.
//!
//! Randomized inputs come from a seeded [`SplitMix64`] stream (the
//! offline stand-in for proptest), so every case is reproducible: a
//! failure message names the seed that produced it.

use segstack_core::rng::SplitMix64;
use segstack_core::{
    walker, Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot,
};
use std::rc::Rc;

/// Builds a synthetic occupied segment with the given frame sizes (bottom
/// to top), returning `(buffer, top, top_ra)`.
fn build(code: &TestCode, sizes: &[usize]) -> (Vec<TestSlot>, usize, segstack_core::CodeAddr) {
    let total: usize = sizes.iter().sum();
    let mut buf = vec![TestSlot::Empty; total + 4];
    buf[0] = TestSlot::Ra(ReturnAddress::Exit);
    let mut fbase = 0;
    let mut prev = None;
    for &d in sizes {
        if let Some(ra) = prev {
            buf[fbase] = TestSlot::Ra(ReturnAddress::Code(ra));
        }
        prev = Some(code.ret_point(d));
        fbase += d;
    }
    (buf, fbase, prev.expect("at least one frame"))
}

/// Draws a frame-size vector the way the old proptest strategy did:
/// 1..40 frames of 2..20 slots each.
fn arb_sizes(rng: &mut SplitMix64) -> Vec<usize> {
    let len = rng.gen_range(1, 40) as usize;
    (0..len).map(|_| rng.gen_range(2, 20) as usize).collect()
}

/// The walker reconstructs exactly the frames that were laid down,
/// top-down, from nothing but return addresses and code-stream words.
#[test]
fn walk_reconstructs_the_layout() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let sizes = arb_sizes(&mut rng);
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &sizes);
        let frames = walker::frames(&buf, 0, top, ra, &code);
        assert_eq!(frames.len(), sizes.len(), "seed {seed}");
        // Top-down sizes match the reversed build order.
        let walked: Vec<usize> = frames.iter().map(|f| f.size()).collect();
        let mut expected = sizes.clone();
        expected.reverse();
        assert_eq!(walked, expected, "seed {seed}");
        // Extents tile the segment exactly.
        assert_eq!(frames.last().unwrap().base, 0, "seed {seed}");
        assert_eq!(frames[0].top, top, "seed {seed}");
        for w in frames.windows(2) {
            assert_eq!(w[0].base, w[1].top, "seed {seed}");
        }
    }
}

/// The split point is always a frame boundary, keeps the suffix within
/// the bound when more than one frame fits, and never returns the base.
#[test]
fn split_point_invariants() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let sizes = arb_sizes(&mut rng);
        let bound = rng.gen_range(1, 120) as usize;
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &sizes);
        let frames = walker::frames(&buf, 0, top, ra, &code);
        match walker::split_point(&buf, 0, top, ra, &code, bound) {
            None => {
                // No split possible: single frame, or everything fits.
                assert!(
                    sizes.len() == 1 || top <= bound,
                    "seed {seed}: None with {} frames of total {top} (bound {bound})",
                    sizes.len()
                );
            }
            Some(s) => {
                assert!(s > 0 && s < top, "seed {seed}");
                assert!(
                    frames.iter().any(|f| f.base == s),
                    "seed {seed}: split off a frame boundary"
                );
                let suffix = top - s;
                let top_frame = frames[0].size();
                // Within the bound, or a single oversized top frame.
                assert!(
                    suffix <= bound || (suffix == top_frame && top_frame > bound),
                    "seed {seed}: suffix {suffix} bound {bound} top_frame {top_frame}"
                );
                // Maximality: the next deeper boundary would exceed the bound.
                if suffix <= bound {
                    if let Some(next) = frames.iter().find(|f| f.base < s).map(|f| f.base) {
                        assert!(
                            top - next > bound,
                            "seed {seed}: not the largest suffix within bound"
                        );
                    }
                }
            }
        }
    }
}

/// Sealing a segment at a frame boundary — what capture does in place —
/// leaves both halves independently walkable. The suffix walks from the
/// boundary, the prefix walks with the displaced return address the
/// boundary word used to hold, and together they tile the unsplit layout
/// exactly.
#[test]
fn manual_split_leaves_both_halves_walkable() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let mut sizes = arb_sizes(&mut rng);
        if sizes.len() < 2 {
            sizes.push(rng.gen_range(2, 20) as usize);
        }
        let code = TestCode::new();
        let (mut buf, top, ra) = build(&code, &sizes);
        let full: Vec<(usize, usize)> =
            walker::frames(&buf, 0, top, ra, &code).iter().map(|f| (f.base, f.top)).collect();
        // Pick a random interior frame boundary and seal it: the suffix's
        // bottom word becomes the underflow handler, and the return
        // address it displaced would move into the sealed record's `ra`.
        let cut = rng.gen_range(1, sizes.len() as u64) as usize;
        let split: usize = sizes[..cut].iter().sum();
        let TestSlot::Ra(ReturnAddress::Code(displaced)) = buf[split] else {
            panic!("seed {seed}: frame boundary at {split} does not hold a code address");
        };
        buf[split] = TestSlot::Ra(ReturnAddress::Underflow);
        let upper = walker::frames(&buf, split, top, ra, &code);
        let lower = walker::frames(&buf, 0, split, displaced, &code);
        assert_eq!(upper.len(), sizes.len() - cut, "seed {seed}");
        assert_eq!(lower.len(), cut, "seed {seed}");
        // The deepest suffix frame bottoms out on the underflow handler.
        assert_eq!(upper.last().unwrap().base, split, "seed {seed}");
        assert!(
            matches!(buf[split], TestSlot::Ra(ReturnAddress::Underflow)),
            "seed {seed}: the split base must hold the underflow handler"
        );
        // Joined top-down, the halves tile the original walk exactly.
        let joined: Vec<(usize, usize)> =
            upper.iter().chain(lower.iter()).map(|f| (f.base, f.top)).collect();
        assert_eq!(joined, full, "seed {seed}");
    }
}

/// Frame displacement recovery straddling live splits: with the smallest
/// legal segment, calls overflow constantly and captures seal mid-spine,
/// so returns repeatedly cross split boundaries where the displaced
/// return address lives in a sealed record behind an underflow handler.
/// The visible spine (backtrace), the unwind order, and the paper
/// invariants must all survive every crossing.
#[test]
fn displacement_recovery_across_split_boundaries() {
    for seed in 0..128u64 {
        let mut rng = SplitMix64::new(seed);
        let depth = rng.gen_range(4, 48) as usize;
        let d = rng.gen_range(2, 8) as usize;
        let fb = 8usize;
        let cfg = Config::builder()
            .segment_slots(3 * fb) // smallest legal: nearly every call splits
            .frame_bound(fb)
            .copy_bound(rng.gen_range(1, 2 * fb as u64 + 1) as usize)
            .build()
            .unwrap();
        let code = Rc::new(TestCode::new());
        let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
        let audit = |stack: &SegmentedStack<TestSlot>, seed: u64, at: &str| {
            if let Err(e) = stack.audit_invariants() {
                panic!("seed {seed}: invariant broken {at}: {e}");
            }
        };
        let mut ras = Vec::new();
        for i in 0..depth {
            let ra = code.ret_point(d);
            stack.set(d + 1, TestSlot::Int(i as i64));
            stack.call(d, ra, 1, true).unwrap();
            ras.push(ra);
            audit(&stack, seed, "after call");
        }
        assert!(stack.metrics().overflows > 0, "seed {seed}: no split was exercised");
        // The backtrace sees through every split: the full spine, newest
        // first, exactly as if the stack were contiguous.
        let spine: Vec<_> = ras.iter().rev().copied().collect();
        assert_eq!(stack.backtrace(depth + 4), spine, "seed {seed}");
        let k = stack.capture();
        audit(&stack, seed, "after capture");
        // Unwind across every boundary: each return recovers the
        // displaced address, even when it straddles a sealed record.
        for i in (0..depth).rev() {
            assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]), "seed {seed}");
            audit(&stack, seed, "after ret");
            if i > 0 {
                assert_eq!(stack.get(1), TestSlot::Int(i as i64 - 1), "seed {seed}");
            }
        }
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit, "seed {seed}");
        // Reinstating restores the captured spine, splits and all. The
        // capture excluded the live frame, whose address comes back as
        // the resume target instead of staying on the stack — so the
        // visible spine is everything below it.
        let resumed = stack.reinstate(&k).unwrap();
        assert_eq!(resumed, ReturnAddress::Code(ras[depth - 1]), "seed {seed}");
        audit(&stack, seed, "after reinstate");
        assert_eq!(stack.backtrace(depth + 4), &spine[1..], "seed {seed}");
    }
}

/// Random capture/reinstate round trips preserve the full unwind
/// sequence regardless of segment size and copy bound.
#[test]
fn capture_reinstate_preserves_unwind() {
    for seed in 0..256u64 {
        let mut rng = SplitMix64::new(seed);
        let depth = rng.gen_range(1, 80) as usize;
        let d = rng.gen_range(3, 10) as usize;
        let seg = rng.gen_range(96, 512) as usize;
        let bound = rng.gen_range(1, 64) as usize;
        check_capture_reinstate(seed, depth, d, seg, bound);
    }
}

/// A historical proptest-shrunk failure case, kept as an explicit
/// regression (minimal depth with the smallest segment and copy bound).
#[test]
fn capture_reinstate_shallow_tiny_bound_regression() {
    check_capture_reinstate(u64::MAX, 2, 3, 96, 1);
}

fn check_capture_reinstate(seed: u64, depth: usize, d: usize, seg: usize, bound: usize) {
    let code = Rc::new(TestCode::new());
    let cfg = Config::builder()
        .segment_slots(seg.max(3 * 16))
        .frame_bound(16)
        .copy_bound(bound)
        .build()
        .unwrap();
    let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
    let mut ras = Vec::new();
    for i in 0..depth {
        let ra = code.ret_point(d);
        stack.set(d + 1, TestSlot::Int(i as i64));
        stack.call(d, ra, 1, true).unwrap();
        ras.push(ra);
    }
    let k = stack.capture();
    // Unwind everything, reinstate, and check the replayed unwind.
    while stack.ret().unwrap() != ReturnAddress::Exit {}
    let resumed = stack.reinstate(&k).unwrap();
    assert_eq!(resumed, ReturnAddress::Code(ras[depth - 1]), "seed {seed}");
    for i in (0..depth - 1).rev() {
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]), "seed {seed}");
        if i > 0 {
            // After returning past frame i, the live frame is i-1.
            assert_eq!(stack.get(1), TestSlot::Int(i as i64 - 1), "seed {seed}");
        }
    }
    assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit, "seed {seed}");
}
