//! Property tests for the stack walker and continuation splitting.

use proptest::prelude::*;
use segstack_core::{
    walker, Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot,
};
use std::rc::Rc;

/// Builds a synthetic occupied segment with the given frame sizes (bottom
/// to top), returning `(buffer, top, top_ra)`.
fn build(code: &TestCode, sizes: &[usize]) -> (Vec<TestSlot>, usize, segstack_core::CodeAddr) {
    let total: usize = sizes.iter().sum();
    let mut buf = vec![TestSlot::Empty; total + 4];
    buf[0] = TestSlot::Ra(ReturnAddress::Exit);
    let mut fbase = 0;
    let mut prev = None;
    for &d in sizes {
        if let Some(ra) = prev {
            buf[fbase] = TestSlot::Ra(ReturnAddress::Code(ra));
        }
        prev = Some(code.ret_point(d));
        fbase += d;
    }
    (buf, fbase, prev.expect("at least one frame"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The walker reconstructs exactly the frames that were laid down,
    /// top-down, from nothing but return addresses and code-stream words.
    #[test]
    fn walk_reconstructs_the_layout(sizes in proptest::collection::vec(2usize..20, 1..40)) {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &sizes);
        let frames = walker::frames(&buf, 0, top, ra, &code);
        prop_assert_eq!(frames.len(), sizes.len());
        // Top-down sizes match the reversed build order.
        let walked: Vec<usize> = frames.iter().map(|f| f.size()).collect();
        let mut expected = sizes.clone();
        expected.reverse();
        prop_assert_eq!(walked, expected);
        // Extents tile the segment exactly.
        prop_assert_eq!(frames.last().unwrap().base, 0);
        prop_assert_eq!(frames[0].top, top);
        for w in frames.windows(2) {
            prop_assert_eq!(w[0].base, w[1].top);
        }
    }

    /// The split point is always a frame boundary, keeps the suffix within
    /// the bound when more than one frame fits, and never returns the base.
    #[test]
    fn split_point_invariants(
        sizes in proptest::collection::vec(2usize..20, 1..40),
        bound in 1usize..120,
    ) {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &sizes);
        let frames = walker::frames(&buf, 0, top, ra, &code);
        match walker::split_point(&buf, 0, top, ra, &code, bound) {
            None => {
                // No split possible: single frame, or everything fits.
                prop_assert!(sizes.len() == 1 || top <= bound,
                    "None with {} frames of total {top} (bound {bound})", sizes.len());
            }
            Some(s) => {
                prop_assert!(s > 0 && s < top);
                prop_assert!(frames.iter().any(|f| f.base == s), "split off a frame boundary");
                let suffix = top - s;
                let top_frame = frames[0].size();
                // Within the bound, or a single oversized top frame.
                prop_assert!(
                    suffix <= bound || (suffix == top_frame && top_frame > bound),
                    "suffix {suffix} bound {bound} top_frame {top_frame}"
                );
                // Maximality: the next deeper boundary would exceed the bound.
                if suffix <= bound {
                    if let Some(next) = frames.iter().find(|f| f.base < s).map(|f| f.base) {
                        prop_assert!(top - next > bound, "not the largest suffix within bound");
                    }
                }
            }
        }
    }

    /// Random capture/reinstate round trips preserve the full unwind
    /// sequence regardless of segment size and copy bound.
    #[test]
    fn capture_reinstate_preserves_unwind(
        depth in 1usize..80,
        d in 3usize..10,
        seg in 96usize..512,
        bound in 1usize..64,
    ) {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder()
            .segment_slots(seg.max(3 * 16))
            .frame_bound(16)
            .copy_bound(bound)
            .build()
            .unwrap();
        let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
        let mut ras = Vec::new();
        for i in 0..depth {
            let ra = code.ret_point(d);
            stack.set(d + 1, TestSlot::Int(i as i64));
            stack.call(d, ra, 1, true).unwrap();
            ras.push(ra);
        }
        let k = stack.capture();
        // Unwind everything, reinstate, and check the replayed unwind.
        while stack.ret().unwrap() != ReturnAddress::Exit {}
        let resumed = stack.reinstate(&k).unwrap();
        prop_assert_eq!(resumed, ReturnAddress::Code(ras[depth - 1]));
        for i in (0..depth - 1).rev() {
            prop_assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]));
            if i > 0 {
                // After returning past frame i, the live frame is i-1.
                prop_assert_eq!(stack.get(1), TestSlot::Int(i as i64 - 1));
            }
        }
        prop_assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }
}
