//! The paper's figures, replayed step by step against the real
//! implementation.
//!
//! Each test narrates one of the paper's mechanism figures (3–8) and
//! asserts the machine state the figure depicts. They double as an
//! executable explanation of the algorithm.

use std::rc::Rc;

use segstack_core::{
    sim, CodeAddr, Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot,
};

fn cfg(segment: usize, frame: usize, copy: usize) -> Config {
    Config::builder().segment_slots(segment).frame_bound(frame).copy_bound(copy).build().unwrap()
}

fn machine(c: Config) -> (Rc<TestCode>, SegmentedStack<TestSlot>) {
    let code = Rc::new(TestCode::new());
    let stack = SegmentedStack::new(c, code.clone()).unwrap();
    (code, stack)
}

/// Figure 3: "the segmented stack model is a simple generalization of the
/// traditional stack model" — ordinary calls behave exactly like a plain
/// stack: the frame pointer moves by compile-time displacements and no
/// heap traffic occurs.
#[test]
fn figure_3_segments_behave_like_a_traditional_stack() {
    let (code, mut stack) = machine(cfg(1024, 16, 32));
    assert_eq!(stack.fp(), 0, "initial frame at the segment base");

    let ra1 = code.ret_point(5);
    stack.call(5, ra1, 0, true).unwrap();
    assert_eq!(stack.fp(), 5, "fp advanced by the displacement");

    let ra2 = code.ret_point(7);
    stack.call(7, ra2, 0, true).unwrap();
    assert_eq!(stack.fp(), 12, "frames are physically adjacent");

    assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra2));
    assert_eq!(stack.fp(), 5, "return adjusted fp back by the displacement");
    assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra1));
    assert_eq!(stack.fp(), 0);

    let m = stack.metrics();
    assert_eq!(m.heap_frames_allocated, 0);
    assert_eq!(m.slots_copied, 0);
    assert_eq!(m.segments_allocated, 1, "just the initial segment");
}

/// Figure 4: walking backwards through a stack segment using only the
/// return addresses and the frame-size words in the code stream.
#[test]
fn figure_4_walking_backwards_through_a_segment() {
    let (code, mut stack) = machine(cfg(1024, 16, 32));
    // Three frames with distinct displacements.
    let sizes = [4usize, 6, 9];
    let mut ras = Vec::new();
    for &d in &sizes {
        let ra = code.ret_point(d);
        stack.call(d, ra, 0, true).unwrap();
        ras.push(ra);
    }
    // Seal the segment so it has a stack record with the topmost frame's
    // return address, then walk it through the public backtrace API.
    let walk = stack.backtrace(16);
    // The walk reports, innermost first, each frame's return address.
    assert_eq!(walk, ras.iter().rev().copied().collect::<Vec<CodeAddr>>());
}

/// Figure 5: "capturing a continuation is a constant-time operation ...
/// The current stack segment is divided into two segments at the top
/// frame."
#[test]
fn figure_5_capture_splits_the_segment_in_place() {
    let (code, mut stack) = machine(cfg(1024, 16, 32));
    sim::push_frames(&mut stack, &code, 6, 8);
    let fp_before = stack.fp();
    assert_eq!(fp_before, 48);

    let copied_before = stack.metrics().slots_copied;
    let k = stack.capture();

    // Bottom segment: the captured continuation holds everything below the
    // top frame.
    assert_eq!(k.retained_slots(), 48, "six 8-slot frames sealed");
    assert_eq!(k.chain_len(), 1);
    // Top segment: the live frame became the base of the current segment.
    assert_eq!(stack.segment_base(), fp_before);
    assert_eq!(stack.fp(), fp_before, "the live frame did not move");
    // The in-frame return address was replaced by the underflow handler.
    assert_eq!(stack.get(0), TestSlot::Ra(ReturnAddress::Underflow));
    // And — the headline — nothing was copied.
    assert_eq!(stack.metrics().slots_copied, copied_before);
    assert_eq!(stack.metrics().captures, 1);
}

/// Figure 6: "when a continuation is reinstated, the contents of the stack
/// segment of the continuation is copied into the current stack segment."
#[test]
fn figure_6_reinstatement_copies_into_the_current_segment() {
    let (code, mut stack) = machine(cfg(1024, 16, 128));
    let ras = sim::push_frames(&mut stack, &code, 6, 8);
    let k = stack.capture();

    // Leave the captured context entirely (unwind to the exit).
    assert_eq!(sim::unwind_all(&mut stack), 7);

    // Reinstate: the saved segment is copied and execution resumes at the
    // continuation's return address with fp on its topmost frame.
    let before = stack.metrics().slots_copied;
    let resumed = stack.reinstate(&k).unwrap();
    assert_eq!(resumed, ReturnAddress::Code(ras[5]));
    assert_eq!(stack.metrics().slots_copied - before, 48, "the whole (small) segment");
    assert_eq!(stack.get(1), TestSlot::Int(4), "topmost sealed frame's argument");

    // The copy is private: unwinding it does not disturb the continuation,
    // which can be reinstated again.
    assert_eq!(sim::unwind_all(&mut stack), 6);
    assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[5]));
    assert_eq!(sim::unwind_all(&mut stack), 6);
}

/// Figure 7: "large stack segments must be split before being reinstated.
/// A splitting point is found by walking the stack ... The return address
/// at the splitting point is stored in a new stack record and the address
/// of an underflow handler is stored in its place."
#[test]
fn figure_7_oversized_segments_split_at_a_frame_boundary() {
    let (code, mut stack) = machine(cfg(4096, 16, 40));
    sim::push_frames(&mut stack, &code, 50, 8); // 400 slots, bound 40
    let k = stack.capture();
    assert_eq!(k.retained_slots(), 400);
    assert_eq!(k.chain_len(), 1, "one record before the first reinstatement");

    let before = stack.metrics().slots_copied;
    stack.reinstate(&k).unwrap();

    // Only the top portion (five 8-slot frames = 40 slots, the copy bound)
    // was copied; the rest became a new record linked below.
    assert_eq!(stack.metrics().slots_copied - before, 40);
    assert_eq!(stack.metrics().splits, 1);
    assert_eq!(k.chain_len(), 2, "the record was restructured in place");
    assert_eq!(k.retained_slots(), 400, "no slots were lost in the split");

    // The split is semantically neutral: a second reinstatement (of the
    // already-split record) behaves identically.
    let before = stack.metrics().slots_copied;
    stack.reinstate(&k).unwrap();
    assert_eq!(stack.metrics().slots_copied - before, 40);
    assert_eq!(stack.metrics().splits, 1, "split happens at most once per boundary");
}

/// Figure 8: "the end-of-stack pointer always points to a region before
/// the actual end of the stack. This region must contain enough space for
/// two call frames."
#[test]
fn figure_8_esp_sits_two_frames_before_the_end() {
    let (code, mut stack) = machine(cfg(256, 16, 32));
    assert_eq!(stack.esp(), 256 - 2 * 16);

    // A checked call that stays at or below esp proceeds in place…
    while stack.fp() + 8 <= stack.esp() {
        let ra = code.ret_point(8);
        stack.call(8, ra, 0, true).unwrap();
    }
    assert_eq!(stack.metrics().overflows, 0);

    // …and an unchecked call can still land in the reserve safely: the
    // two-frame region is exactly what lets leaf calls skip the check.
    let ra = code.ret_point(8);
    stack.call(8, ra, 0, false).unwrap();
    assert!(stack.fp() > stack.esp(), "leaf frame lives in the reserve");
    assert_eq!(stack.metrics().overflows, 0);
    assert_eq!(stack.metrics().checks_elided, 1);
    stack.ret().unwrap();

    // The next *checked* call from the boundary triggers overflow: an
    // implicit capture plus a fresh segment (§5).
    let ra = code.ret_point(8);
    stack.call(8, ra, 0, true).unwrap();
    assert_eq!(stack.metrics().overflows, 1);
    assert_eq!(stack.fp(), 0, "execution continued at the new segment's base");
    assert_eq!(stack.stats().chain_records, 1, "the old segment was sealed");
}

/// §4's tail-capture rule, the `looper`: "if the current stack segment is
/// empty when a continuation is captured, no changes are made to the
/// current stack record and the link field ... serves as the new
/// continuation."
#[test]
fn section_4_empty_segment_capture_reuses_the_link() {
    let (code, mut stack) = machine(cfg(1024, 16, 32));
    sim::push_frames(&mut stack, &code, 3, 8);
    let k1 = stack.capture();
    // fp == base now; each further capture must hand back the same record.
    for _ in 0..10_000 {
        let k = stack.capture();
        assert!(k.ptr_eq(&k1));
    }
    assert_eq!(stack.stats().chain_records, 1);
    assert_eq!(stack.metrics().stack_records_allocated, 1);
}
