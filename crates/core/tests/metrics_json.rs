//! `Metrics::to_json` contract tests against the in-tree JSON reader:
//! the output must be valid JSON, must name every counter, and must keep
//! the fixed `FIELD_NAMES` order (downstream tooling indexes by
//! position).

use segstack_core::trace::json;
use segstack_core::Metrics;

fn distinct_metrics() -> Metrics {
    let mut m = Metrics::default();
    // A distinct value per field so swapped or dropped members show up.
    m.calls = 101;
    m.tail_calls = 102;
    m.returns = 103;
    m.captures = 104;
    m.reinstatements = 105;
    m.reinstates_relinked = 106;
    m.slots_copy_avoided = 107;
    m.splits = 108;
    m.overflows = 109;
    m.underflows = 110;
    m.segments_allocated = 111;
    m.segments_reused = 112;
    m.slots_copied = 113;
    m.heap_frames_allocated = 114;
    m.heap_slots_allocated = 115;
    m.stack_records_allocated = 116;
    m.checks_executed = 117;
    m.checks_elided = 118;
    m
}

#[test]
fn to_json_is_valid_and_covers_every_field_in_order() {
    let m = distinct_metrics();
    let parsed = json::parse(&m.to_json()).expect("Metrics::to_json must emit valid JSON");
    let members = parsed.as_object().expect("top level is an object");
    assert_eq!(members.len(), Metrics::FIELD_NAMES.len());
    for (i, ((key, value), (name, field))) in
        members.iter().zip(Metrics::FIELD_NAMES.iter().zip(m.fields())).enumerate()
    {
        assert_eq!(key, name, "member {i} out of order");
        assert_eq!(value.as_u64(), Some(field), "member {name} has the wrong value");
    }
}

#[test]
fn to_json_round_trips_through_merge() {
    // Parsing two snapshots and summing per-field equals the merged
    // record's snapshot — the JSON carries the full counter state.
    let a = distinct_metrics();
    let mut b = Metrics::default();
    b.calls = 9;
    b.slots_copied = 1000;
    let pa = json::parse(&a.to_json()).unwrap();
    let pb = json::parse(&b.to_json()).unwrap();
    let mut merged = a.clone();
    merged.merge(&b);
    let pm = json::parse(&merged.to_json()).unwrap();
    for name in Metrics::FIELD_NAMES {
        let va = pa.get(name).and_then(|v| v.as_u64()).unwrap();
        let vb = pb.get(name).and_then(|v| v.as_u64()).unwrap();
        let vm = pm.get(name).and_then(|v| v.as_u64()).unwrap();
        assert_eq!(vm, va + vb, "field {name} does not round-trip");
    }
}

#[test]
fn extreme_counter_values_stay_valid_json() {
    let mut m = Metrics::default();
    m.calls = u64::MAX;
    let parsed = json::parse(&m.to_json()).expect("u64::MAX must serialize as a JSON number");
    // f64 cannot hold u64::MAX exactly; the reader still accepts it as a
    // number, which is all JSON requires.
    assert!(parsed.get("calls").and_then(|v| v.as_f64()).unwrap() > 1.8e19);
}
