//! The tracing counter gate: the observability layer must not perturb
//! the machine.
//!
//! The same deterministic workload runs twice — once on the zero-cost
//! [`NoopSink`] and once on a recording [`RingSink`] — and every
//! architecture-independent counter must come out identical. The ring
//! run is then cross-checked: event counts must agree with the metrics,
//! per-event payloads must respect the paper's bounds, and the exported
//! Chrome trace must validate.

use std::rc::Rc;

use segstack_core::trace::{
    chrome_trace_json, validate_chrome_trace, EventKind, RingSink, TraceSink,
};
use segstack_core::{sim, Config, ControlStack, NoopSink, SegmentedStack, TestCode, TestSlot};

fn small_cfg() -> Config {
    Config::builder().segment_slots(256).frame_bound(16).copy_bound(32).build().unwrap()
}

/// A workload exercising every traced path: deep calls (overflow +
/// segment alloc), capture, multi-shot reinstate (bounded copy + split),
/// one-shot reinstate (relink), and a full unwind (underflow).
fn workload<T: TraceSink + 'static>(stack: &mut SegmentedStack<TestSlot, T>, code: &TestCode) {
    // Overflow phase: deep calls overflow several 256-slot segments,
    // then unwind back through every sealed record (underflows).
    sim::push_frames(stack, code, 120, 8);
    sim::unwind_all(stack);
    stack.reset();
    // Copy phase: a 160-slot multi-shot capture reinstated twice must
    // split (copy_bound 32) and take the bounded-copy path.
    sim::push_frames(stack, code, 20, 8);
    {
        let k = stack.capture();
        sim::push_frames(stack, code, 5, 8);
        stack.reinstate(&k).expect("multi-shot reinstate");
        stack.reinstate(&k).expect("multi-shot reinstate again");
    }
    // Relink phase: a uniquely-owned one-shot adopted as the live stack.
    stack.reset();
    sim::push_frames(stack, code, 30, 8);
    let k1 = stack.capture_one_shot();
    stack.reset(); // drop the machine's own handle so the one-shot is unshared
    stack.reinstate(&k1).expect("one-shot reinstate");
    sim::unwind_all(stack);
}

#[test]
fn noop_sink_is_zero_sized() {
    assert_eq!(std::mem::size_of::<NoopSink>(), 0);
    // The defaulted parameter *is* the noop machine: same type, no
    // hidden recording state.
    assert_eq!(
        std::mem::size_of::<SegmentedStack<TestSlot>>(),
        std::mem::size_of::<SegmentedStack<TestSlot, NoopSink>>(),
    );
}

#[test]
fn noop_and_ring_runs_produce_identical_metrics() {
    let code = Rc::new(TestCode::new());
    let mut noop = SegmentedStack::<TestSlot>::new(small_cfg(), code.clone()).unwrap();
    workload(&mut noop, &code);

    let code2 = Rc::new(TestCode::new());
    let mut ring = SegmentedStack::<TestSlot, RingSink>::with_sink(
        small_cfg(),
        code2.clone(),
        RingSink::new(),
    )
    .unwrap();
    workload(&mut ring, &code2);

    assert_eq!(
        noop.metrics(),
        ring.metrics(),
        "recording events must not change what the machine does"
    );
    assert!(ring.sink().total_recorded() > 0, "the ring run must actually record");
}

#[test]
fn event_counts_cross_check_against_metrics() {
    let code = Rc::new(TestCode::new());
    let mut stack =
        SegmentedStack::<TestSlot, RingSink>::with_sink(small_cfg(), code.clone(), RingSink::new())
            .unwrap();
    workload(&mut stack, &code);
    let m = stack.metrics().clone();
    let ring = stack.sink();

    assert_eq!(ring.kind_count(EventKind::Capture), m.captures);
    // Relinked switches write a single packed Relink event; the Begin/End
    // span protocol covers only the copy path.
    let copy_reinstates = m.reinstatements - m.reinstates_relinked;
    assert_eq!(ring.kind_count(EventKind::ReinstateBegin), copy_reinstates);
    assert_eq!(ring.kind_count(EventKind::ReinstateEnd), copy_reinstates);
    assert_eq!(ring.kind_count(EventKind::Relink), m.reinstates_relinked);
    assert_eq!(ring.kind_count(EventKind::OverflowBegin), m.overflows);
    assert_eq!(ring.kind_count(EventKind::OverflowEnd), m.overflows);
    assert_eq!(ring.kind_count(EventKind::Underflow), m.underflows);
    assert_eq!(ring.kind_count(EventKind::Split), m.splits);
    assert!(
        ring.kind_count(EventKind::SegmentAlloc) <= m.segments_allocated + m.segments_reused,
        "segment events only come from traced allocation sites"
    );
    // The workload was built to hit every interesting path.
    assert!(m.overflows > 0 && m.underflows > 0 && m.splits > 0);
    assert!(m.reinstates_relinked > 0, "the one-shot reinstate must relink");
}

#[test]
fn per_event_payloads_respect_the_paper_bounds() {
    let cfg = small_cfg();
    let bound = 32u64; // max(copy_bound=32, frame_bound=16)
    let code = Rc::new(TestCode::new());
    let mut stack =
        SegmentedStack::<TestSlot, RingSink>::with_sink(cfg, code.clone(), RingSink::new())
            .unwrap();
    workload(&mut stack, &code);
    let ring = stack.sink();
    // ReinstateEnd's first payload word is slots copied: Figures 6–7 say
    // every single reinstatement is bounded, and the histogram's max is
    // exactly that per-event assertion.
    let h = ring.histogram(EventKind::ReinstateEnd);
    assert!(h.count() > 0);
    assert!(h.max() <= bound, "a reinstatement copied {} slots; bound {bound}", h.max());
    // A relinked reinstatement copies nothing and writes no span: its one
    // Relink event carries the adopted size, never a copy cost.
    let rh = ring.histogram(EventKind::Relink);
    assert!(rh.count() > 0, "the one-shot reinstate must relink");
    assert!(rh.max() > 0, "relink events carry the adopted segment size");
}

#[test]
fn core_trace_exports_as_valid_chrome_json() {
    let code = Rc::new(TestCode::new());
    let mut stack =
        SegmentedStack::<TestSlot, RingSink>::with_sink(small_cfg(), code.clone(), RingSink::new())
            .unwrap();
    workload(&mut stack, &code);
    let trace = stack.sink_mut().take_trace("core-workload", 1);
    let doc = chrome_trace_json(&[trace]);
    let stats = validate_chrome_trace(&doc).expect("exported trace must validate");
    assert!(stats.spans > 0, "reinstate/overflow spans must appear");
    assert!(stats.instants > 0, "capture/relink/underflow instants must appear");
    assert_eq!(stats.tracks, 1);
}
