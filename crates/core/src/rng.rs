//! A tiny deterministic pseudo-random generator.
//!
//! The build environment is offline, so the usual `rand`/`proptest`
//! crates are unavailable; this SplitMix64 generator backs the
//! randomized property tests and the load generator instead. It is
//! deliberately simple: fixed seeds make every "random" test and
//! workload mix exactly reproducible across runs and hosts.

/// SplitMix64 (Steele, Lea & Flood): full 64-bit period, passes BigCrush,
/// two xor-shift-multiply rounds per draw.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform signed draw in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add((self.next_u64() % lo.abs_diff(hi)) as i64)
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.gen_range(0, items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_draws_stay_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
            let s = r.gen_range_i64(-5, 5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn range_covers_both_ends() {
        let mut r = SplitMix64::new(3);
        let draws: Vec<u64> = (0..200).map(|_| r.gen_range(0, 4)).collect();
        for want in 0..4 {
            assert!(draws.contains(&want), "never drew {want}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SplitMix64::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
