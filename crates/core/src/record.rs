//! Continuation objects.
//!
//! In the paper a continuation *is* a stack record: base pointer, link,
//! size, and the return address of its topmost frame (§3–4). Each strategy
//! in this workspace has its own record representation, so the public
//! [`Continuation`] type wraps a strategy-specific representation behind the
//! [`KontRepr`] trait. Strategies downcast on reinstatement; handing a
//! continuation to the wrong strategy yields
//! [`StackError::ForeignContinuation`](crate::StackError::ForeignContinuation).

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::error::StackError;
use crate::slot::StackSlot;

/// Strategy-specific continuation representation.
///
/// This trait is not meant to be implemented outside control-stack strategy
/// crates; it exists so that one [`Continuation`] type can flow through a VM
/// regardless of which strategy produced it.
pub trait KontRepr<S: StackSlot>: fmt::Debug {
    /// Downcasting support for the owning strategy.
    fn as_any(&self) -> &dyn Any;

    /// Total slots retained by this continuation, including everything
    /// reachable through its link chain. This is the memory-accounting
    /// figure behind experiment E11 (Danvy's duplication concern, §6).
    fn retained_slots(&self) -> usize;

    /// Number of records in the chain up to (and excluding) the exit record.
    fn chain_len(&self) -> usize;

    /// Name of the strategy that created this continuation.
    fn strategy(&self) -> &'static str;
}

/// A first-class continuation: the rest of the computation from the point
/// of capture.
///
/// Continuations are cheap to clone (reference-counted), may be invoked any
/// number of times, and have indefinite extent — the properties §1–2 of the
/// paper demand.
///
/// # Examples
///
/// ```
/// use segstack_core::{Config, ControlStack, SegmentedStack, TestCode, TestSlot};
/// use std::rc::Rc;
/// let code = Rc::new(TestCode::new());
/// let mut stack = SegmentedStack::<TestSlot>::new(Config::default(), code.clone()).unwrap();
/// let ra = code.ret_point(3);
/// stack.call(3, ra, 1, true)?;
/// let k = stack.capture();
/// assert_eq!(k.strategy(), "segmented");
/// assert!(k.retained_slots() > 0);
/// # Ok::<(), segstack_core::StackError>(())
/// ```
pub struct Continuation<S: StackSlot> {
    repr: Rc<dyn KontRepr<S>>,
}

impl<S: StackSlot> Continuation<S> {
    /// Wraps a strategy-specific representation.
    pub fn from_repr(repr: Rc<dyn KontRepr<S>>) -> Self {
        Continuation { repr }
    }

    /// The canonical *exit* continuation: reinstating it returns its value
    /// to the host (the paper's "routine that exits to the operating
    /// system", §4). Every strategy accepts it.
    pub fn exit() -> Self {
        Continuation { repr: Rc::new(ExitKont) }
    }

    /// Returns `true` if this is the exit continuation.
    pub fn is_exit(&self) -> bool {
        self.repr.as_any().is::<ExitKont>()
    }

    /// Access to the underlying representation (for strategies).
    pub fn repr(&self) -> &dyn KontRepr<S> {
        &*self.repr
    }

    /// Pointer identity: two handles to the very same captured record.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.repr, &other.repr)
    }

    /// Total slots retained by the continuation's chain. See
    /// [`KontRepr::retained_slots`].
    pub fn retained_slots(&self) -> usize {
        self.repr.retained_slots()
    }

    /// Number of records in the continuation's chain.
    pub fn chain_len(&self) -> usize {
        self.repr.chain_len()
    }

    /// The strategy that created this continuation (`"segmented"`,
    /// `"heap"`, `"copy"`, `"cache"`, `"hybrid"`, or `"exit"`).
    pub fn strategy(&self) -> &'static str {
        self.repr.strategy()
    }

    /// Wraps `inner` as a *one-shot* continuation (`call/1cc`): it may be
    /// reinstated at most once. The first reinstatement takes the inner
    /// continuation out of the wrapper; every later attempt observes the
    /// empty wrapper and fails with [`StackError::OneShotReused`].
    ///
    /// Because the wrapper (not the inner continuation) is what circulates
    /// through VM slots and clones, the inner representation usually stays
    /// uniquely referenced — which is exactly what lets the segmented
    /// strategy reinstate it by relinking instead of copying.
    pub fn one_shot(inner: Continuation<S>) -> Self {
        let strategy = inner.strategy();
        Continuation { repr: Rc::new(OneShotKont { inner: RefCell::new(Some(inner)), strategy }) }
    }

    /// Returns `true` if this continuation is a one-shot wrapper (consumed
    /// or not).
    pub fn is_one_shot(&self) -> bool {
        self.repr.as_any().is::<OneShotKont<S>>()
    }

    /// Number of live handles to the underlying representation. A count of
    /// one means the caller holds the only handle, so a strategy may
    /// consume the representation in place (the safe-Rust analogue of the
    /// paper's "no other reference to this stack record" argument).
    pub fn repr_strong_count(&self) -> usize {
        Rc::strong_count(&self.repr)
    }

    /// If this is a one-shot wrapper, takes the inner continuation out of
    /// it (consuming the wrapper's single shot).
    ///
    /// Returns `None` for ordinary continuations, `Some(Ok(inner))` on the
    /// first call, and `Some(Err(StackError::OneShotReused))` once the shot
    /// has been spent. Strategies call this at the top of `reinstate`.
    pub fn unwrap_one_shot(&self) -> Option<Result<Continuation<S>, StackError>> {
        let w = self.repr.as_any().downcast_ref::<OneShotKont<S>>()?;
        Some(w.inner.borrow_mut().take().ok_or(StackError::OneShotReused))
    }

    /// Returns `true` if this is a one-shot wrapper whose shot has already
    /// been spent (diagnostics; does not consume anything).
    pub fn one_shot_consumed(&self) -> bool {
        match self.repr.as_any().downcast_ref::<OneShotKont<S>>() {
            Some(w) => w.inner.borrow().is_none(),
            None => false,
        }
    }
}

impl<S: StackSlot> Clone for Continuation<S> {
    fn clone(&self) -> Self {
        Continuation { repr: self.repr.clone() }
    }
}

impl<S: StackSlot> fmt::Debug for Continuation<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Continuation<{}: {} records, {} slots>",
            self.strategy(),
            self.chain_len(),
            self.retained_slots()
        )
    }
}

/// One-shot continuation wrapper (`call/1cc`). Holds the wrapped
/// continuation until the first reinstatement takes it; afterwards the
/// wrapper is empty and reinstating it is [`StackError::OneShotReused`].
struct OneShotKont<S: StackSlot> {
    inner: RefCell<Option<Continuation<S>>>,
    /// Strategy of the wrapped continuation, kept so the wrapper still
    /// reports it after the shot is spent.
    strategy: &'static str,
}

impl<S: StackSlot> fmt::Debug for OneShotKont<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OneShotKont")
            .field("strategy", &self.strategy)
            .field("consumed", &self.inner.borrow().is_none())
            .finish()
    }
}

impl<S: StackSlot> KontRepr<S> for OneShotKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        self.inner.borrow().as_ref().map_or(0, Continuation::retained_slots)
    }

    fn chain_len(&self) -> usize {
        self.inner.borrow().as_ref().map_or(0, Continuation::chain_len)
    }

    fn strategy(&self) -> &'static str {
        self.strategy
    }
}

/// The exit continuation's representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExitKont;

impl<S: StackSlot> KontRepr<S> for ExitKont {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        0
    }

    fn chain_len(&self) -> usize {
        0
    }

    fn strategy(&self) -> &'static str {
        "exit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::TestSlot;

    #[test]
    fn exit_continuation_properties() {
        let k = Continuation::<TestSlot>::exit();
        assert!(k.is_exit());
        assert_eq!(k.retained_slots(), 0);
        assert_eq!(k.chain_len(), 0);
        assert_eq!(k.strategy(), "exit");
        assert!(format!("{k:?}").contains("exit"));
    }

    #[test]
    fn clone_preserves_identity() {
        let k = Continuation::<TestSlot>::exit();
        let k2 = k.clone();
        assert!(k.ptr_eq(&k2));
        let k3 = Continuation::<TestSlot>::exit();
        assert!(!k.ptr_eq(&k3), "distinct exit records are distinct objects");
    }

    #[test]
    fn one_shot_wraps_and_consumes_exactly_once() {
        let inner = Continuation::<TestSlot>::exit();
        let k = Continuation::one_shot(inner);
        assert!(k.is_one_shot());
        assert!(!k.one_shot_consumed());
        assert_eq!(k.strategy(), "exit");
        assert!(!k.is_exit(), "the wrapper itself is not the exit record");
        let taken = k.unwrap_one_shot().expect("is a wrapper").expect("first shot");
        assert!(taken.is_exit());
        assert!(k.one_shot_consumed());
        assert_eq!(
            k.unwrap_one_shot().expect("is a wrapper").unwrap_err(),
            StackError::OneShotReused
        );
        assert_eq!(k.retained_slots(), 0);
        assert_eq!(k.chain_len(), 0);
        assert!(format!("{k:?}").contains("exit"));
    }

    #[test]
    fn ordinary_continuations_are_not_one_shot() {
        let k = Continuation::<TestSlot>::exit();
        assert!(!k.is_one_shot());
        assert!(!k.one_shot_consumed());
        assert!(k.unwrap_one_shot().is_none());
    }

    #[test]
    fn repr_strong_count_tracks_handles() {
        let k = Continuation::<TestSlot>::exit();
        assert_eq!(k.repr_strong_count(), 1);
        let k2 = k.clone();
        assert_eq!(k.repr_strong_count(), 2);
        drop(k2);
        assert_eq!(k.repr_strong_count(), 1);
    }
}
