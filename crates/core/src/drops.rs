//! Iterative teardown of linked control structures.
//!
//! Continuations link to continuations (stack records chain through their
//! link fields, saved stack images contain continuation values, heap-model
//! frames chain through dynamic links). A naive recursive `Drop` of such a
//! chain consumes native Rust stack proportional to the chain length and
//! can abort the process — ironic for a library whose subject is bounded
//! control-stack usage.
//!
//! [`defer_drop`] breaks the recursion: the *outermost* drop switches into
//! draining mode and processes a thread-local queue iteratively; drops
//! reached while draining merely enqueue their own linked parts instead of
//! recursing.

use std::any::Any;
use std::cell::{Cell, RefCell};

thread_local! {
    static DRAINING: Cell<bool> = const { Cell::new(false) };
    static QUEUE: RefCell<Vec<Box<dyn Any>>> = const { RefCell::new(Vec::new()) };
}

/// Drops `value` without unbounded native-stack recursion, provided every
/// potentially-recursive `Drop` along its ownership chain also routes its
/// linked parts through `defer_drop`.
///
/// When called outside any deferred drop, this drops `value` immediately
/// and then drains everything that got enqueued, iteratively. When called
/// from within such a drop (i.e. while draining), it only enqueues.
///
/// # Examples
///
/// ```
/// use segstack_core::defer_drop;
///
/// struct Node(Option<Box<Node>>);
/// impl Drop for Node {
///     fn drop(&mut self) {
///         if let Some(next) = self.0.take() {
///             defer_drop(next); // queue instead of recursing
///         }
///     }
/// }
///
/// let mut chain = Node(None);
/// for _ in 0..1_000_000 {
///     chain = Node(Some(Box::new(chain)));
/// }
/// defer_drop(chain); // would overflow the stack with recursive drops
/// ```
pub fn defer_drop<T: 'static>(value: T) {
    if DRAINING.with(Cell::get) {
        QUEUE.with(|q| q.borrow_mut().push(Box::new(value)));
        return;
    }
    DRAINING.with(|d| d.set(true));
    drop(value);
    loop {
        let next = QUEUE.with(|q| q.borrow_mut().pop());
        match next {
            Some(x) => drop(x),
            None => break,
        }
    }
    DRAINING.with(|d| d.set(false));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    struct Link {
        next: Option<Rc<Link>>,
        alive: Rc<Cell<usize>>,
    }

    impl Drop for Link {
        fn drop(&mut self) {
            self.alive.set(self.alive.get() - 1);
            if let Some(next) = self.next.take() {
                if Rc::strong_count(&next) == 1 {
                    defer_drop(next);
                }
            }
        }
    }

    fn chain(n: usize, alive: &Rc<Cell<usize>>) -> Rc<Link> {
        let mut head = Rc::new(Link { next: None, alive: alive.clone() });
        alive.set(alive.get() + 1);
        for _ in 1..n {
            alive.set(alive.get() + 1);
            head = Rc::new(Link { next: Some(head), alive: alive.clone() });
        }
        head
    }

    #[test]
    fn very_long_chains_drop_without_recursion() {
        let alive = Rc::new(Cell::new(0));
        let head = chain(2_000_000, &alive);
        assert_eq!(alive.get(), 2_000_000);
        drop(head);
        assert_eq!(alive.get(), 0, "every link was freed");
    }

    #[test]
    fn shared_tails_survive() {
        let alive = Rc::new(Cell::new(0));
        let head = chain(1000, &alive);
        let keep = head.next.clone().unwrap();
        drop(head);
        assert_eq!(alive.get(), 999, "only the unshared head was freed");
        drop(keep);
        assert_eq!(alive.get(), 0);
    }

    #[test]
    fn nested_defer_calls_work_outside_drops() {
        // Plain values are simply dropped.
        defer_drop(vec![1, 2, 3]);
        defer_drop(String::from("x"));
    }
}
