//! Stack-segment storage and the segment allocator.
//!
//! A stack segment is a contiguous run of slots (paper §3, Figure 3). The
//! same underlying buffer may simultaneously hold several sealed
//! continuation segments (below) and the current segment (above): capturing
//! a continuation *splits* the segment in place without copying (Figure 5),
//! so sealed records keep shared references into the buffer.
//!
//! The allocator hands out buffers, optionally reuses retired ones, and can
//! enforce a hard memory cap for failure-injection tests.

use std::cell::RefCell;
use std::rc::Rc;

use crate::config::Config;
use crate::error::StackError;
use crate::metrics::Metrics;
use crate::slot::StackSlot;

/// A shared, interior-mutable stack-segment buffer.
///
/// Sealed continuations and the live stack may alias the same buffer at
/// disjoint index ranges, so shared ownership with dynamic borrow checking
/// is the natural safe-Rust representation of the paper's raw stack memory.
pub type Buffer<S> = Rc<RefCell<Box<[S]>>>;

/// Allocates a fresh buffer of `len` slots filled with `S::empty()`.
fn fresh_buffer<S: StackSlot>(len: usize) -> Buffer<S> {
    Rc::new(RefCell::new(
        std::iter::repeat_with(S::empty).take(len).collect::<Vec<_>>().into_boxed_slice(),
    ))
}

/// Allocator for stack-segment buffers with a small reuse pool.
///
/// "Stack segments are allocated in large chunks to reduce the frequency of
/// stack overflows" (§4). Retired segments whose continuations have all been
/// dropped are pooled for reuse so steady-state overflow/underflow cycles do
/// not thrash the system allocator.
#[derive(Debug)]
pub struct SegmentAllocator<S: StackSlot> {
    default_len: usize,
    pool: Vec<Buffer<S>>,
    pool_cap: usize,
    budget: Option<usize>,
}

impl<S: StackSlot> SegmentAllocator<S> {
    /// Creates an allocator following `cfg`'s segment size, pool size and
    /// (optional) total-memory budget.
    pub fn new(cfg: &Config) -> Self {
        SegmentAllocator {
            default_len: cfg.segment_slots(),
            pool: Vec::new(),
            pool_cap: cfg.pool_segments(),
            budget: cfg.max_total_slots(),
        }
    }

    /// The default segment length, in slots.
    pub fn default_len(&self) -> usize {
        self.default_len
    }

    /// Allocates a buffer of at least `min_len` slots (at least the default
    /// segment size), reusing a pooled buffer when possible.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::OutOfStackMemory`] when a configured budget is
    /// exhausted (failure injection).
    pub fn alloc(
        &mut self,
        min_len: usize,
        metrics: &mut Metrics,
    ) -> Result<Buffer<S>, StackError> {
        let want = min_len.max(self.default_len);
        // Best fit: the smallest sufficient pooled buffer. First fit would
        // let a small request consume a huge buffer and force a fresh
        // allocation for the next big request.
        let best = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.borrow().len() >= want)
            .min_by_key(|(_, b)| b.borrow().len())
            .map(|(i, _)| i);
        if let Some(pos) = best {
            metrics.segments_reused += 1;
            return Ok(self.pool.swap_remove(pos));
        }
        if let Some(budget) = self.budget.as_mut() {
            if *budget < want {
                return Err(StackError::OutOfStackMemory { requested: want, available: *budget });
            }
            *budget -= want;
        }
        metrics.segments_allocated += 1;
        Ok(fresh_buffer(want))
    }

    /// Offers a retired buffer back to the pool. Only buffers with no other
    /// owners (no live continuations pointing into them) are retained.
    pub fn retire(&mut self, buf: Buffer<S>) {
        if Rc::strong_count(&buf) == 1 && self.pool.len() < self.pool_cap {
            self.pool.push(buf);
        }
    }

    /// Number of buffers currently pooled.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Remaining allocation budget in slots, if a cap was configured.
    pub fn budget_remaining(&self) -> Option<usize> {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slot::TestSlot;

    fn cfg(segment: usize, pool: usize) -> Config {
        Config::builder()
            .segment_slots(segment)
            .frame_bound(16)
            .pool_segments(pool)
            .build()
            .unwrap()
    }

    #[test]
    fn alloc_honors_minimum_and_default() {
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg(64, 2));
        assert_eq!(a.default_len(), 64);
        let b = a.alloc(10, &mut m).unwrap();
        assert_eq!(b.borrow().len(), 64);
        let big = a.alloc(1000, &mut m).unwrap();
        assert_eq!(big.borrow().len(), 1000);
        assert_eq!(m.segments_allocated, 2);
    }

    #[test]
    fn fresh_buffers_are_empty_slots() {
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg(64, 2));
        let b = a.alloc(0, &mut m).unwrap();
        assert!(b.borrow().iter().all(|s| *s == TestSlot::Empty));
    }

    #[test]
    fn retire_and_reuse() {
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg(64, 2));
        let b = a.alloc(0, &mut m).unwrap();
        a.retire(b);
        assert_eq!(a.pooled(), 1);
        let _ = a.alloc(32, &mut m).unwrap();
        assert_eq!(a.pooled(), 0);
        assert_eq!(m.segments_reused, 1);
        assert_eq!(m.segments_allocated, 1);
    }

    #[test]
    fn alloc_picks_the_best_fitting_pooled_buffer() {
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg(64, 4));
        let big = a.alloc(1000, &mut m).unwrap();
        let small = a.alloc(0, &mut m).unwrap();
        a.retire(big); // pooled first, so first fit would hand it out
        a.retire(small);
        assert_eq!(a.pooled(), 2);
        assert_eq!(m.segments_allocated, 2);
        // A small request must take the 64-slot buffer, not the 1000-slot
        // one, leaving the big buffer available for the big request.
        let b1 = a.alloc(32, &mut m).unwrap();
        assert_eq!(b1.borrow().len(), 64, "best fit picks the smallest sufficient buffer");
        let b2 = a.alloc(1000, &mut m).unwrap();
        assert_eq!(b2.borrow().len(), 1000);
        assert_eq!(m.segments_reused, 2);
        assert_eq!(m.segments_allocated, 2, "no fresh allocation was needed");
    }

    #[test]
    fn retire_refuses_shared_buffers() {
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg(64, 2));
        let b = a.alloc(0, &mut m).unwrap();
        let alias = b.clone();
        a.retire(b);
        assert_eq!(a.pooled(), 0, "buffer still referenced by a continuation");
        drop(alias);
    }

    #[test]
    fn retire_respects_pool_cap() {
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg(64, 1));
        let b1 = a.alloc(0, &mut m).unwrap();
        let b2 = a.alloc(0, &mut m).unwrap();
        a.retire(b1);
        a.retire(b2);
        assert_eq!(a.pooled(), 1);
    }

    #[test]
    fn budget_exhaustion_errors() {
        let cfg = Config::builder()
            .segment_slots(64)
            .frame_bound(16)
            .max_total_slots(100)
            .build()
            .unwrap();
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg);
        let _b = a.alloc(0, &mut m).unwrap();
        assert_eq!(a.budget_remaining(), Some(36));
        let err = a.alloc(0, &mut m).unwrap_err();
        assert!(matches!(err, StackError::OutOfStackMemory { requested: 64, available: 36 }));
    }

    #[test]
    fn pool_reuse_does_not_consume_budget() {
        let cfg = Config::builder()
            .segment_slots(64)
            .frame_bound(16)
            .max_total_slots(64)
            .pool_segments(2)
            .build()
            .unwrap();
        let mut m = Metrics::new();
        let mut a = SegmentAllocator::<TestSlot>::new(&cfg);
        let b = a.alloc(0, &mut m).unwrap();
        a.retire(b);
        // Budget is spent, but the pooled buffer can be reused forever.
        let b = a.alloc(0, &mut m).unwrap();
        a.retire(b);
        let _ = a.alloc(0, &mut m).unwrap();
    }
}
