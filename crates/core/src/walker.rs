//! Stack walking via code-stream frame-size words (paper §3, Figure 4).
//!
//! "The return address field of a continuation stack record points to an
//! instruction in the code stream, which is preceded by a data word
//! containing the frame size. This frame size is used to find the base of
//! the top frame, where its return address is stored. This return address is
//! used to find the frame size of the next frame down, ..." — Figure 4.
//!
//! The walker underlies continuation splitting (Figure 7) and is exactly the
//! mechanism exception handlers and debuggers would use.

use crate::addr::{CodeAddr, FrameSizeTable, ReturnAddress};
use crate::slot::StackSlot;

/// One frame discovered by a stack walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkedFrame {
    /// Absolute index of the frame base within the buffer (the slot holding
    /// the frame's return address — or the underflow/exit handler for the
    /// frame at a segment base).
    pub base: usize,
    /// Absolute index one past the frame's extent: the base of the frame
    /// above, or the segment's occupied top for the topmost frame.
    pub top: usize,
    /// The frame's *own* return address — the address execution jumps to
    /// when this frame returns, which points into the frame below's code.
    pub ra: CodeAddr,
}

impl WalkedFrame {
    /// The frame's extent in slots.
    pub fn size(&self) -> usize {
        self.top - self.base
    }
}

/// Iterator walking a stack segment from its topmost frame down to its base.
///
/// Created by [`walk`]. Yields [`WalkedFrame`]s top-down. After exhaustion,
/// [`FrameWalker::reached_base`] reports whether the walk ended cleanly on
/// the segment base (an underflow/exit word exactly at `base`), which is an
/// invariant of well-formed segments.
#[derive(Debug)]
pub struct FrameWalker<'a, S, T: ?Sized> {
    buf: &'a [S],
    base: usize,
    top: usize,
    ra: Option<CodeAddr>,
    code: &'a T,
    clean: bool,
}

/// Starts a walk over the occupied segment `buf[base..top]` whose topmost
/// frame has return address `top_ra` (the stack record's return-address
/// field).
///
/// # Examples
///
/// See the unit tests below and [`crate::SegmentedStack`]'s splitting logic.
pub fn walk<'a, S: StackSlot, T: FrameSizeTable + ?Sized>(
    buf: &'a [S],
    base: usize,
    top: usize,
    top_ra: CodeAddr,
    code: &'a T,
) -> FrameWalker<'a, S, T> {
    FrameWalker { buf, base, top, ra: Some(top_ra), code, clean: false }
}

impl<S: StackSlot, T: FrameSizeTable + ?Sized> Iterator for FrameWalker<'_, S, T> {
    type Item = WalkedFrame;

    fn next(&mut self) -> Option<WalkedFrame> {
        let ra = self.ra?;
        let d = self.code.displacement(ra);
        assert!(
            d <= self.top - self.base,
            "stack walk underran the segment base: displacement {d} at {ra} with only {} slots",
            self.top - self.base
        );
        let fbase = self.top - d;
        let frame = WalkedFrame { base: fbase, top: self.top, ra };
        self.top = fbase;
        self.ra = match self.buf[fbase].as_return_address() {
            Some(ReturnAddress::Code(next)) => {
                assert!(fbase > self.base, "code return address at the segment base");
                Some(next)
            }
            Some(ReturnAddress::Underflow) | Some(ReturnAddress::Exit) => {
                self.clean = fbase == self.base;
                None
            }
            None => panic!("frame base slot at {fbase} does not hold a return address"),
        };
        Some(frame)
    }
}

impl<S, T: ?Sized> FrameWalker<'_, S, T> {
    /// After the iterator is exhausted: did the walk end exactly on the
    /// segment base with an underflow/exit word there?
    pub fn reached_base(&self) -> bool {
        self.clean
    }
}

/// Collects the frames of the occupied segment `buf[base..top]`, top-down,
/// asserting the segment is well formed.
pub fn frames<S: StackSlot, T: FrameSizeTable + ?Sized>(
    buf: &[S],
    base: usize,
    top: usize,
    top_ra: CodeAddr,
    code: &T,
) -> Vec<WalkedFrame> {
    let mut w = walk(buf, base, top, top_ra, code);
    let out: Vec<_> = w.by_ref().collect();
    assert!(w.reached_base(), "segment walk did not terminate at the segment base");
    out
}

/// Finds the split point for reinstating an over-large segment (Figure 7).
///
/// Returns the absolute index `s`, strictly between `base` and `top`, such
/// that the suffix `[s, top)` is the largest run of whole frames not
/// exceeding `bound` slots — "it is more efficient to split off as much as
/// possible without exceeding the bound" (§4). If even the single topmost
/// frame exceeds the bound, its base is returned anyway ("it would be
/// sufficient to split off a single frame"); the frame bound, not the copy
/// bound, then governs the worst case. Returns `None` when the segment
/// holds a single frame (nothing to split).
pub fn split_point<S: StackSlot, T: FrameSizeTable + ?Sized>(
    buf: &[S],
    base: usize,
    top: usize,
    top_ra: CodeAddr,
    code: &T,
    bound: usize,
) -> Option<usize> {
    let mut chosen: Option<usize> = None;
    for frame in walk(buf, base, top, top_ra, code) {
        let suffix = top - frame.base;
        if chosen.is_none() || suffix <= bound {
            chosen = Some(frame.base);
        }
        if suffix >= bound {
            break;
        }
    }
    chosen.filter(|&s| s > base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::TestCode;
    use crate::slot::TestSlot;

    /// Builds a synthetic occupied segment of `sizes.len()` frames (bottom
    /// to top) with the given displacements, returning (buffer, top, top_ra).
    fn build(code: &TestCode, sizes: &[usize]) -> (Vec<TestSlot>, usize, CodeAddr) {
        let total: usize = sizes.iter().sum();
        let mut buf = vec![TestSlot::Empty; total + 8];
        let mut fbase = 0;
        buf[0] = TestSlot::Ra(ReturnAddress::Exit);
        let mut prev_ra: Option<CodeAddr> = None;
        for &d in sizes {
            // The frame at `fbase` has size d; its caller stored its return
            // address at fbase, and the next frame starts at fbase + d.
            if let Some(ra) = prev_ra {
                buf[fbase] = TestSlot::Ra(ReturnAddress::Code(ra));
            }
            let ra = code.ret_point(d);
            prev_ra = Some(ra);
            fbase += d;
        }
        (buf, fbase, prev_ra.unwrap())
    }

    #[test]
    fn walks_a_three_frame_segment() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[4, 6, 3]);
        let fs = frames(&buf, 0, top, ra, &code);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[0], WalkedFrame { base: 10, top: 13, ra });
        assert_eq!(fs[0].size(), 3);
        assert_eq!(fs[1].base, 4);
        assert_eq!(fs[1].size(), 6);
        assert_eq!(fs[2].base, 0);
        assert_eq!(fs[2].size(), 4);
    }

    #[test]
    fn walks_a_single_frame_segment() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[5]);
        let fs = frames(&buf, 0, top, ra, &code);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0], WalkedFrame { base: 0, top: 5, ra });
    }

    #[test]
    fn reached_base_is_false_before_exhaustion() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[4, 6]);
        let mut w = walk(buf.as_slice(), 0, top, ra, &code);
        assert!(!w.reached_base());
        w.next();
        assert!(!w.reached_base());
        w.next();
        assert!(w.reached_base());
        assert!(w.next().is_none());
    }

    #[test]
    fn walk_respects_nonzero_base() {
        let code = TestCode::new();
        let (mut buf, top, ra) = build(&code, &[4, 6, 3]);
        // Shift the segment up by 5 slots to a nonzero base.
        let shift = 5;
        let mut shifted = vec![TestSlot::Empty; buf.len() + shift];
        for (i, s) in buf.drain(..).enumerate() {
            shifted[i + shift] = s;
        }
        shifted[shift] = TestSlot::Ra(ReturnAddress::Underflow);
        let fs = frames(&shifted, shift, top + shift, ra, &code);
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[2].base, shift);
    }

    #[test]
    fn split_point_takes_largest_suffix_within_bound() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[4, 6, 3, 2]);
        // Suffix sizes from the top: 2, 5, 11, 15.
        assert_eq!(split_point(&buf, 0, top, ra, &code, 5), Some(top - 5));
        assert_eq!(split_point(&buf, 0, top, ra, &code, 10), Some(top - 5));
        assert_eq!(split_point(&buf, 0, top, ra, &code, 11), Some(top - 11));
        assert_eq!(split_point(&buf, 0, top, ra, &code, 2), Some(top - 2));
    }

    #[test]
    fn split_point_with_oversized_top_frame_returns_its_base() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[4, 9]);
        // The top frame (9 slots) exceeds the bound (3); split it off alone.
        assert_eq!(split_point(&buf, 0, top, ra, &code, 3), Some(top - 9));
    }

    #[test]
    fn split_point_on_single_frame_is_none() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[7]);
        assert_eq!(split_point(&buf, 0, top, ra, &code, 3), None);
    }

    #[test]
    fn split_point_never_returns_the_base() {
        let code = TestCode::new();
        let (buf, top, ra) = build(&code, &[4, 6]);
        // Bound large enough for both frames: the only candidate below the
        // bound is the segment base itself, which is not a valid split.
        assert_eq!(split_point(&buf, 0, top, ra, &code, 100), None);
    }

    #[test]
    #[should_panic(expected = "does not hold a return address")]
    fn walk_panics_on_corrupt_frame_base() {
        let code = TestCode::new();
        let (mut buf, top, ra) = build(&code, &[4, 6]);
        buf[4] = TestSlot::Int(42);
        frames(&buf, 0, top, ra, &code);
    }

    #[test]
    #[should_panic(expected = "underran")]
    fn walk_panics_when_displacement_exceeds_segment() {
        let code = TestCode::new();
        let ra = code.ret_point(50);
        let buf = vec![TestSlot::Empty; 10];
        frames(&buf, 0, 10, ra, &code);
    }
}
