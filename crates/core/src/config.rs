//! Tunable parameters of the segmented stack (paper §4–§5).

use crate::error::StackError;

/// Configuration for a [`SegmentedStack`](crate::SegmentedStack) (and, where
/// the fields apply, for the baseline strategies).
///
/// The three central knobs come straight from the paper:
///
/// * `segment_slots` — size of freshly allocated stack segments. "The
///   initial stack segment is large ... so that stack overflow for deeply
///   recursive programs is less likely, and ... because continuation
///   captures shorten the stack" (§4).
/// * `copy_bound` — the upper bound on slots copied when a continuation is
///   reinstated; larger saved segments are split first (§4, Figure 7). "An
///   appropriate bound for a given machine can be determined only by
///   experimentation" — experiment E7 performs that sweep.
/// * `frame_bound` — the bound on the size of a single frame, which
///   determines the worst-case reinstatement cost ("the frame bound then
///   determines the worst-case cost and the copy bound determines the
///   average-case cost", §4). The end-of-stack pointer is positioned two
///   frame bounds before the segment end (Figure 8) so that leaf procedures
///   and tail loops never need an overflow check.
///
/// # Examples
///
/// ```
/// use segstack_core::Config;
/// let cfg = Config::builder().segment_slots(4096).copy_bound(128).build()?;
/// assert_eq!(cfg.segment_slots(), 4096);
/// # Ok::<(), segstack_core::StackError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Config {
    segment_slots: usize,
    copy_bound: usize,
    frame_bound: usize,
    max_total_slots: Option<usize>,
    pool_segments: usize,
    tail_capture_rule: bool,
}

impl Config {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder::default()
    }

    /// Slots per freshly allocated stack segment.
    pub fn segment_slots(&self) -> usize {
        self.segment_slots
    }

    /// Maximum slots copied per reinstatement before splitting kicks in.
    pub fn copy_bound(&self) -> usize {
        self.copy_bound
    }

    /// Maximum size of a single frame (displacement plus partial frame).
    pub fn frame_bound(&self) -> usize {
        self.frame_bound
    }

    /// The end-of-stack reserve: `esp` sits this many slots before the
    /// segment end. Room for two frames, per Figure 8.
    pub fn esp_reserve(&self) -> usize {
        2 * self.frame_bound
    }

    /// Optional hard cap on total live stack-segment memory (slots); used
    /// for failure injection. `None` means unlimited.
    pub fn max_total_slots(&self) -> Option<usize> {
        self.max_total_slots
    }

    /// How many retired segments the allocator keeps for reuse.
    pub fn pool_segments(&self) -> usize {
        self.pool_segments
    }

    /// Whether capture on an empty segment reuses the record's link (§4:
    /// "the link field of the current stack record serves as the new
    /// continuation"). Always on in practice; turning it off is an
    /// *ablation* showing the chain growth the rule prevents.
    pub fn tail_capture_rule(&self) -> bool {
        self.tail_capture_rule
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            segment_slots: 16 * 1024,
            copy_bound: 128,
            frame_bound: 64,
            max_total_slots: None,
            pool_segments: 4,
            tail_capture_rule: true,
        }
    }
}

/// Builder for [`Config`].
///
/// # Examples
///
/// ```
/// use segstack_core::Config;
/// let cfg = Config::builder()
///     .segment_slots(1024)
///     .copy_bound(64)
///     .frame_bound(32)
///     .build()?;
/// assert_eq!(cfg.esp_reserve(), 64);
/// # Ok::<(), segstack_core::StackError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ConfigBuilder {
    cfg: Option<Config>,
    segment_slots: Option<usize>,
    copy_bound: Option<usize>,
    frame_bound: Option<usize>,
    max_total_slots: Option<Option<usize>>,
    pool_segments: Option<usize>,
    tail_capture_rule: Option<bool>,
}

impl ConfigBuilder {
    /// Sets the size, in slots, of freshly allocated segments.
    pub fn segment_slots(mut self, slots: usize) -> Self {
        self.segment_slots = Some(slots);
        self
    }

    /// Sets the reinstatement copy bound, in slots.
    pub fn copy_bound(mut self, slots: usize) -> Self {
        self.copy_bound = Some(slots);
        self
    }

    /// Sets the frame bound, in slots.
    pub fn frame_bound(mut self, slots: usize) -> Self {
        self.frame_bound = Some(slots);
        self
    }

    /// Caps total live stack memory (for failure-injection tests).
    pub fn max_total_slots(mut self, slots: usize) -> Self {
        self.max_total_slots = Some(Some(slots));
        self
    }

    /// Sets how many retired segments are pooled for reuse.
    pub fn pool_segments(mut self, n: usize) -> Self {
        self.pool_segments = Some(n);
        self
    }

    /// Disables the §4 empty-segment capture rule (ablation only: the
    /// control stack then grows on every tail-position capture, which is
    /// exactly what the rule exists to prevent).
    pub fn disable_tail_capture_rule(mut self) -> Self {
        self.tail_capture_rule = Some(false);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::FrameTooLarge`] if a segment cannot hold even a
    /// single maximal frame plus the two-frame `esp` reserve — such a
    /// configuration could never run a program.
    pub fn build(self) -> Result<Config, StackError> {
        let base = self.cfg.unwrap_or_default();
        let cfg = Config {
            segment_slots: self.segment_slots.unwrap_or(base.segment_slots),
            copy_bound: self.copy_bound.unwrap_or(base.copy_bound),
            frame_bound: self.frame_bound.unwrap_or(base.frame_bound),
            max_total_slots: self.max_total_slots.unwrap_or(base.max_total_slots),
            pool_segments: self.pool_segments.unwrap_or(base.pool_segments),
            tail_capture_rule: self.tail_capture_rule.unwrap_or(base.tail_capture_rule),
        };
        // A segment must fit one maximal frame below esp, plus the reserve.
        if cfg.segment_slots < cfg.frame_bound + cfg.esp_reserve() || cfg.frame_bound == 0 {
            return Err(StackError::FrameTooLarge {
                requested: cfg.frame_bound + cfg.esp_reserve(),
                bound: cfg.segment_slots,
            });
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let cfg = Config::builder().build().unwrap();
        assert_eq!(cfg, Config::default());
        assert_eq!(cfg.esp_reserve(), 2 * cfg.frame_bound());
    }

    #[test]
    fn builder_overrides_fields() {
        let cfg = Config::builder()
            .segment_slots(512)
            .copy_bound(32)
            .frame_bound(16)
            .max_total_slots(8192)
            .pool_segments(0)
            .build()
            .unwrap();
        assert_eq!(cfg.segment_slots(), 512);
        assert_eq!(cfg.copy_bound(), 32);
        assert_eq!(cfg.frame_bound(), 16);
        assert_eq!(cfg.max_total_slots(), Some(8192));
        assert_eq!(cfg.pool_segments(), 0);
    }

    #[test]
    fn rejects_segment_smaller_than_frame_plus_reserve() {
        let err = Config::builder().segment_slots(100).frame_bound(64).build().unwrap_err();
        assert!(matches!(err, StackError::FrameTooLarge { .. }));
    }

    #[test]
    fn rejects_zero_frame_bound() {
        assert!(Config::builder().frame_bound(0).build().is_err());
    }

    #[test]
    fn tiny_but_consistent_config_is_accepted() {
        // Used by failure-injection tests: overflow on nearly every call.
        let cfg =
            Config::builder().segment_slots(48).frame_bound(16).copy_bound(8).build().unwrap();
        assert_eq!(cfg.esp_reserve(), 32);
    }
}
