//! Synthetic call-machine helpers.
//!
//! These drive any [`ControlStack`] through call/return/capture/reinstate
//! protocols without a full language implementation on top — the control
//! analog of a workload generator. They are used by this crate's tests, by
//! the baseline strategies' tests (which must behave identically), and by
//! the micro-benchmarks for experiments E2–E7.

use crate::addr::{CodeAddr, ReturnAddress, TestCode};
use crate::record::Continuation;
use crate::slot::TestSlot;
use crate::traits::ControlStack;

/// Pushes `depth` nested frames of `d` slots each; frame `i` receives the
/// single argument `i`. Returns the return addresses in call order.
///
/// # Examples
///
/// ```
/// use segstack_core::{sim, Config, ControlStack, SegmentedStack, TestCode, TestSlot};
/// use std::rc::Rc;
/// let code = Rc::new(TestCode::new());
/// let mut stack = SegmentedStack::<TestSlot>::new(Config::default(), code.clone())?;
/// let ras = sim::push_frames(&mut stack, &code, 10, 4);
/// assert_eq!(ras.len(), 10);
/// assert_eq!(sim::unwind_all(&mut stack), 11); // 10 frames + the exit return
/// # Ok::<(), segstack_core::StackError>(())
/// ```
pub fn push_frames(
    stack: &mut dyn ControlStack<TestSlot>,
    code: &TestCode,
    depth: usize,
    d: usize,
) -> Vec<CodeAddr> {
    let mut ras = Vec::with_capacity(depth);
    for i in 0..depth {
        let ra = code.ret_point(d);
        stack.set(d + 1, TestSlot::Int(i as i64));
        stack.call(d, ra, 1, true).expect("synthetic workload exceeded a configured budget");
        ras.push(ra);
    }
    ras
}

/// Returns until the exit routine is reached; yields the number of returns
/// performed (frames popped plus the final exit return).
pub fn unwind_all(stack: &mut dyn ControlStack<TestSlot>) -> usize {
    let mut n = 0;
    loop {
        n += 1;
        match stack.ret().expect("synthetic unwind exceeded a configured budget") {
            ReturnAddress::Exit => return n,
            ReturnAddress::Code(_) => {}
            ReturnAddress::Underflow => unreachable!("underflow is handled inside ret"),
        }
    }
}

/// Pushes `depth` frames then captures the continuation at that depth,
/// leaving the stack in the post-capture state.
pub fn capture_at_depth(
    stack: &mut dyn ControlStack<TestSlot>,
    code: &TestCode,
    depth: usize,
    d: usize,
) -> Continuation<TestSlot> {
    push_frames(stack, code, depth, d);
    stack.capture()
}

/// A call/return-intensive workload: `rounds` cycles of pushing `depth`
/// frames and popping them back (E1's micro analog). Returns total
/// call-interface operations performed.
pub fn call_return_workload(
    stack: &mut dyn ControlStack<TestSlot>,
    code: &TestCode,
    rounds: usize,
    depth: usize,
    d: usize,
) -> u64 {
    let before = stack.metrics().call_interface_ops();
    // Reuse the same return points across rounds, as compiled code would.
    let ras: Vec<CodeAddr> = (0..depth).map(|_| code.ret_point(d)).collect();
    for _ in 0..rounds {
        for (i, &ra) in ras.iter().enumerate() {
            stack.set(d + 1, TestSlot::Int(i as i64));
            stack.call(d, ra, 1, true).expect("workload exceeded a configured budget");
        }
        for _ in 0..depth {
            let ra = stack.ret().expect("workload exceeded a configured budget");
            debug_assert!(ra.is_code());
        }
    }
    stack.metrics().call_interface_ops() - before
}

/// A tail-call loop workload: one frame, `iters` tail calls shuffling two
/// staged arguments (the shape of a tight Scheme loop).
pub fn tail_loop_workload(
    stack: &mut dyn ControlStack<TestSlot>,
    code: &TestCode,
    iters: usize,
    d: usize,
) {
    let ra = code.ret_point(d);
    stack.set(d + 1, TestSlot::Int(0));
    stack.call(d, ra, 1, true).expect("workload exceeded a configured budget");
    for i in 0..iters {
        stack.set(3, TestSlot::Int(i as i64));
        stack.tail_call(3, 1);
    }
    let _ = stack.ret().expect("workload exceeded a configured budget");
}

/// The paper's `looper` (§4): repeatedly capture a continuation in a
/// tail-recursive loop. A correct implementation keeps the continuation
/// chain from growing. Returns the maximum chain length observed.
pub fn looper_workload(
    stack: &mut dyn ControlStack<TestSlot>,
    code: &TestCode,
    iters: usize,
    d: usize,
) -> usize {
    let ra = code.ret_point(d);
    stack.set(d + 1, TestSlot::Int(0));
    stack.call(d, ra, 1, true).expect("workload exceeded a configured budget");
    let mut max_chain = 0;
    for i in 0..iters {
        let _k = stack.capture();
        max_chain = max_chain.max(stack.stats().chain_records);
        stack.set(3, TestSlot::Int(i as i64));
        stack.tail_call(3, 1);
    }
    max_chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::segmented::SegmentedStack;
    use std::rc::Rc;

    fn setup() -> (Rc<TestCode>, SegmentedStack<TestSlot>) {
        let code = Rc::new(TestCode::new());
        let cfg =
            Config::builder().segment_slots(512).frame_bound(16).copy_bound(32).build().unwrap();
        let stack = SegmentedStack::new(cfg, code.clone()).unwrap();
        (code, stack)
    }

    #[test]
    fn push_and_unwind_balance() {
        let (code, mut stack) = setup();
        push_frames(&mut stack, &code, 20, 4);
        assert_eq!(unwind_all(&mut stack), 21);
        assert_eq!(stack.metrics().calls, 20);
    }

    #[test]
    fn capture_at_depth_retains_whole_stack() {
        let (code, mut stack) = setup();
        let k = capture_at_depth(&mut stack, &code, 25, 4);
        assert_eq!(k.retained_slots(), 100);
    }

    #[test]
    fn call_return_workload_counts_ops() {
        let (code, mut stack) = setup();
        let ops = call_return_workload(&mut stack, &code, 3, 10, 4);
        assert_eq!(ops, 3 * (10 + 10));
        assert_eq!(unwind_all(&mut stack), 1, "workload leaves the stack empty");
    }

    #[test]
    fn tail_loop_stays_in_one_frame() {
        let (code, mut stack) = setup();
        tail_loop_workload(&mut stack, &code, 1000, 4);
        assert_eq!(stack.metrics().tail_calls, 1000);
        assert_eq!(stack.metrics().overflows, 0, "tail calls must not grow the stack");
        assert_eq!(unwind_all(&mut stack), 1);
    }

    #[test]
    fn looper_does_not_grow_the_chain() {
        let (code, mut stack) = setup();
        let max_chain = looper_workload(&mut stack, &code, 10_000, 4);
        assert_eq!(max_chain, 1, "the looper rule keeps exactly one sealed record");
        assert_eq!(stack.metrics().overflows, 0);
    }
}
