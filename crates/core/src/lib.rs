//! # segstack-core
//!
//! A faithful implementation of the segmented control stack from
//! *Representing Control in the Presence of First-Class Continuations*
//! (Robert Hieb, R. Kent Dybvig, Carl Bruggeman — PLDI 1990), the technique
//! adopted by Chez Scheme for `call/cc`.
//!
//! The control stack is represented as a linked list of *stack segments*,
//! each a true stack of activation records described by a *stack record*
//! (base, link, size, and the return address of its topmost frame):
//!
//! * **Capturing a continuation is O(1)** and copies nothing: the current
//!   segment is split in place at the top frame (Figure 5).
//! * **Reinstating a continuation copies a bounded amount**: saved segments
//!   larger than the *copy bound* are first split at a frame boundary
//!   (Figures 6–7), and the rest is reinstalled lazily through stack
//!   underflow.
//! * **Overflow and underflow are implicit capture and reinstatement**
//!   (§5), detected by a single register compare against an end-of-stack
//!   pointer with a two-frame reserve (Figure 8) — leaf procedures and tail
//!   loops never check.
//! * **Frames carry no dynamic links**: walkers recover frame boundaries
//!   from frame-size words the compiler places in the code stream just
//!   before each return point (Figure 4), modeled by [`FrameSizeTable`].
//!
//! The [`ControlStack`] trait abstracts the activation-record protocol so
//! that the baseline strategies the paper compares against (heap, naive
//! copy, stack cache, hybrid stack/heap — see the `segstack-baselines`
//! crate) are drop-in replacements under the same VM.
//!
//! ## Quick start
//!
//! ```
//! use segstack_core::{Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot};
//! use std::rc::Rc;
//!
//! let code = Rc::new(TestCode::new());
//! let mut stack = SegmentedStack::<TestSlot>::new(Config::default(), code.clone())?;
//!
//! // Make a call: stage the argument, then transfer control.
//! let ra = code.ret_point(4);
//! stack.set(5, TestSlot::Int(1));
//! stack.call(4, ra, 1, true)?;
//!
//! // Capture the current continuation: O(1), no copying.
//! let k = stack.capture();
//!
//! // Return "past" the capture point, then come back by reinstating.
//! assert_eq!(stack.ret()?, ReturnAddress::Code(ra));
//! assert_eq!(stack.reinstate(&k)?, ReturnAddress::Code(ra));
//! # Ok::<(), segstack_core::StackError>(())
//! ```
//!
//! For a full language driving this machinery, see the `segstack-scheme`
//! crate (a Scheme compiler and VM with first-class `call/cc`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod config;
mod drops;
mod error;
mod metrics;
mod record;
pub mod rng;
mod segment;
mod segmented;
pub mod sim;
mod slot;
mod traits;
pub mod walker;

/// The observability layer ([`TraceSink`], ring buffers, histograms,
/// Chrome/Perfetto export), re-exported for downstream crates.
pub use segstack_trace as trace;
/// Key tracing types, re-exported at the crate root: the sink trait the
/// segmented stack is generic over, its zero-cost disabled form, the
/// recording ring, and the event vocabulary.
pub use segstack_trace::{EventKind, NoopSink, RingSink, TraceSink};

pub use addr::{CodeAddr, FrameSizeTable, ReturnAddress, TestCode};
pub use config::{Config, ConfigBuilder};
pub use drops::defer_drop;
pub use error::StackError;
pub use metrics::Metrics;
pub use record::{Continuation, ExitKont, KontRepr};
pub use segment::{Buffer, SegmentAllocator};
pub use segmented::SegmentedStack;
pub use slot::{StackSlot, TestSlot};
pub use traits::{ControlStack, StackStats};
