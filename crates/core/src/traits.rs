//! The pluggable control-stack interface.
//!
//! The Scheme VM (and the synthetic simulator) drive activation-record
//! management exclusively through [`ControlStack`], so the paper's segmented
//! strategy and the four baseline strategies it is compared against are
//! interchangeable. The interface mirrors the paper's machine-level
//! protocol:
//!
//! * the caller stages the callee's arguments in its own frame at the call
//!   displacement ("partial frames for procedure calls initiated but not yet
//!   completed", §3), then issues [`ControlStack::call`];
//! * returning pops by re-adjusting the frame pointer using the frame-size
//!   word found via the return address (no dynamic links);
//! * capture/reinstate implement `call/cc`.

use segstack_trace::{EventKind, HistSummary};

use crate::addr::{CodeAddr, ReturnAddress};
use crate::error::StackError;
use crate::metrics::Metrics;
use crate::record::Continuation;
use crate::slot::StackSlot;

/// Point-in-time structural information about a control stack, used by
/// tests and the benchmark harness (not on any hot path).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Records in the current link chain, excluding the exit record. For
    /// the segmented strategy this is the number of sealed segments the
    /// current computation would underflow through.
    pub chain_records: usize,
    /// Slots retained by the current link chain.
    pub chain_slots: usize,
    /// Slots in use in the current segment (`fp` and above are excluded:
    /// only the portion a capture would seal, plus the live frame base).
    pub current_used_slots: usize,
    /// Slots still available in the current segment before overflow.
    pub current_free_slots: usize,
}

/// A strategy for representing control (activation records and first-class
/// continuations).
///
/// Slot indices given to [`get`](ControlStack::get) and
/// [`set`](ControlStack::set) are relative to the current frame base: index
/// 0 is the return-address word, arguments start at index 1, locals and
/// temporaries follow, and a callee's partial frame starts at the call
/// displacement.
///
/// # Protocol
///
/// For a non-tail call with displacement `d`, `nargs` arguments and return
/// point `ra`:
///
/// 1. the caller writes argument `j` to slot `d + 1 + j`;
/// 2. the caller issues `call(d, ra, nargs, check)`;
/// 3. the callee runs with its own frame base; its arguments are slots
///    `1..=nargs`;
/// 4. the callee eventually issues `ret()`, and execution resumes at the
///    returned address with the frame pointer back on the caller's frame.
///
/// For `call/cc`: perform the call to the receiver procedure as usual, then
/// immediately [`capture`](ControlStack::capture) — the resulting
/// continuation returns to the `call/cc` call's return point. Invoking a
/// continuation object is [`reinstate`](ControlStack::reinstate), which
/// yields the address at which execution resumes.
pub trait ControlStack<S: StackSlot> {
    /// The strategy's name (`"segmented"`, `"heap"`, `"copy"`, `"cache"`,
    /// `"hybrid"`, `"incremental"`).
    fn name(&self) -> &'static str;

    /// Reads slot `i` of the current frame.
    fn get(&self, i: usize) -> S;

    /// Writes slot `i` of the current frame.
    fn set(&mut self, i: usize, v: S);

    /// Performs a non-tail call: the callee's frame starts `d` slots above
    /// the current frame base and `nargs` argument slots have already been
    /// staged there. `check` states whether this call site performs the
    /// stack-overflow check (Figure 8); sites proven safe by the two-frame
    /// reserve pass `false`.
    ///
    /// # Errors
    ///
    /// [`StackError::FrameTooLarge`] if `d` or the partial frame exceed the
    /// frame bound; [`StackError::OutOfStackMemory`] if overflow recovery
    /// cannot allocate a segment under a configured budget.
    fn call(&mut self, d: usize, ra: CodeAddr, nargs: usize, check: bool)
        -> Result<(), StackError>;

    /// Performs a proper tail call: moves `nargs` staged argument slots from
    /// `src..src + nargs` down to slots `1..=nargs` of the current frame.
    /// The frame is reused (strategies that cannot reuse frames, like the
    /// heap model, allocate a replacement — that cost is the point).
    fn tail_call(&mut self, src: usize, nargs: usize);

    /// Returns from the current frame, yielding the address to resume at.
    /// Underflow (returning off the base of a segment) is handled
    /// internally as an implicit reinstatement; [`ReturnAddress::Exit`]
    /// means the computation is complete.
    ///
    /// # Errors
    ///
    /// [`StackError::OutOfStackMemory`] if underflow recovery cannot
    /// allocate under a configured budget.
    fn ret(&mut self) -> Result<ReturnAddress, StackError>;

    /// Captures the current continuation: the rest of the computation as of
    /// the current frame's return point. The live frame itself is *not*
    /// part of the continuation.
    fn capture(&mut self) -> Continuation<S>;

    /// Captures the current continuation as a *one-shot* continuation
    /// (`call/1cc`): the continuation object may be used to reinstate at
    /// most once; a second reinstatement through it fails with
    /// [`StackError::OneShotReused`]. Returning through the capture point
    /// normally (without invoking the object) does not consume the shot.
    ///
    /// The default implementation wraps [`capture`](ControlStack::capture)
    /// in [`Continuation::one_shot`], which is correct for every strategy.
    /// The restriction is what it buys: clones circulate the *wrapper*, so
    /// the underlying record usually stays uniquely referenced and the
    /// segmented strategy can reinstate it with a zero-copy relink instead
    /// of the bounded copy.
    fn capture_one_shot(&mut self) -> Continuation<S> {
        Continuation::one_shot(self.capture())
    }

    /// Reinstates a continuation, replacing the current control state. The
    /// returned address is where execution resumes
    /// ([`ReturnAddress::Exit`] if the exit continuation was invoked).
    ///
    /// # Errors
    ///
    /// [`StackError::ForeignContinuation`] if the continuation was created
    /// by a different strategy; [`StackError::OutOfStackMemory`] under an
    /// exhausted budget.
    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError>;

    /// Accumulated operation counters.
    fn metrics(&self) -> &Metrics;

    /// Mutable access to the counters (e.g. to reset between phases).
    fn metrics_mut(&mut self) -> &mut Metrics;

    /// Structural snapshot for tests and reporting.
    fn stats(&self) -> StackStats;

    /// Clears all control state back to an initial empty stack (metrics are
    /// preserved). Used between top-level evaluations.
    fn reset(&mut self);

    /// Walks the live control state from the current frame downwards,
    /// returning up to `limit` return addresses (innermost first). This is
    /// the paper's §3 motivation for the code-stream frame-size words:
    /// "exception handlers, debuggers, and other tools that need to walk
    /// through the frames on the stack." The walk crosses segment/record
    /// boundaries.
    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let _ = limit;
        Vec::new()
    }

    /// Per-event-kind histogram readouts from the strategy's attached
    /// trace sink, if any. Strategies without tracing (the baselines) and
    /// machines built on the zero-cost [`NoopSink`](crate::NoopSink)
    /// return an empty vector. This is how `(trace-stats)` in the Scheme
    /// layer reads the machine's own event aggregates.
    fn trace_summaries(&self) -> Vec<(EventKind, HistSummary)> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_stats_default_is_zeroed() {
        let s = StackStats::default();
        assert_eq!(s.chain_records, 0);
        assert_eq!(s.chain_slots, 0);
        assert_eq!(s.current_used_slots, 0);
        assert_eq!(s.current_free_slots, 0);
    }
}
