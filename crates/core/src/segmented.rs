//! The paper's contribution: the segmented control stack (§3–§5).
//!
//! The control stack is a linked list of stack segments, each described by a
//! stack record (base, link, size, return address of the topmost frame).
//! Continuation capture splits the current segment in place — no copying
//! (Figure 5). Continuation reinstatement copies a *bounded* amount, first
//! splitting over-large saved segments at a frame boundary (Figures 6–7).
//! Stack overflow is an implicit capture; returning off the base of a
//! segment (underflow) is an implicit reinstatement (§5).

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use segstack_trace::{EventKind, NoopSink, TraceSink};

use crate::addr::{CodeAddr, FrameSizeTable, ReturnAddress};
use crate::config::Config;
use crate::error::StackError;
use crate::metrics::Metrics;
use crate::record::{Continuation, KontRepr};
use crate::segment::{Buffer, SegmentAllocator};
use crate::slot::StackSlot;
use crate::traits::{ControlStack, StackStats};
use crate::walker::split_point;

/// Placeholder return address stored in size-zero ablation records; never
/// read (reinstatement skips through empty records before touching `ra`).
const EMPTY_RECORD_RA: CodeAddr = CodeAddr::new(u32::MAX, u32::MAX);

/// A sealed stack segment: the paper's stack record, in its continuation
/// role.
struct SealedSeg<S: StackSlot> {
    /// The (possibly shared) buffer this record points into.
    buf: Buffer<S>,
    /// Base of the sealed segment within `buf`.
    base: usize,
    /// Occupied size in slots.
    size: usize,
    /// Return address of the topmost frame (stored here because the word at
    /// the frame base was replaced by the underflow handler).
    ra: CodeAddr,
    /// The next stack record down, or `None` for the exit routine.
    link: Option<Continuation<S>>,
    /// Set when the relink fast path adopted this record's segment as the
    /// live stack. A consumed record must never be reinstated again (its
    /// slots are being overwritten by live execution); the unshared-handle
    /// precondition makes this unreachable, so the flag is a defensive
    /// poison checked by `reinstate` and `audit_invariants`.
    consumed: bool,
}

impl<S: StackSlot> fmt::Debug for SealedSeg<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SealedSeg")
            .field("base", &self.base)
            .field("size", &self.size)
            .field("ra", &self.ra)
            .field("linked", &self.link.is_some())
            .field("consumed", &self.consumed)
            .finish()
    }
}

/// Continuation representation of the segmented strategy.
///
/// Interior mutability is required because reinstating an over-large
/// continuation restructures it in place (splits it at a frame boundary);
/// the restructuring is semantically neutral, so sharing is safe.
#[derive(Debug)]
struct SegKont<S: StackSlot>(RefCell<SealedSeg<S>>);

impl<S: StackSlot> Drop for SegKont<S> {
    fn drop(&mut self) {
        // Record chains can be long (one record per overflow), and segment
        // buffers hold continuation values pointing at further buffers;
        // tear both down iteratively.
        let mut s = self.0.borrow_mut();
        if let Some(link) = s.link.take() {
            crate::drops::defer_drop(link);
        }
        let empty: Buffer<S> = Rc::new(RefCell::new(Vec::new().into_boxed_slice()));
        crate::drops::defer_drop(std::mem::replace(&mut s.buf, empty));
    }
}

impl<S: StackSlot> KontRepr<S> for SegKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        // Iterative: record chains grow one record per overflow, so a deep
        // recursion can leave hundreds of thousands of links — recursing
        // here would overflow the native stack this crate exists to avoid.
        let mut total = 0;
        let mut link = {
            let s = self.0.borrow();
            total += s.size;
            s.link.clone()
        };
        while let Some(k) = link {
            match k.repr().as_any().downcast_ref::<SegKont<S>>() {
                Some(sk) => {
                    let s = sk.0.borrow();
                    total += s.size;
                    link = s.link.clone();
                }
                None => {
                    total += k.retained_slots();
                    break;
                }
            }
        }
        total
    }

    fn chain_len(&self) -> usize {
        let mut n = 1;
        let mut link = self.0.borrow().link.clone();
        while let Some(k) = link {
            match k.repr().as_any().downcast_ref::<SegKont<S>>() {
                Some(sk) => {
                    n += 1;
                    link = sk.0.borrow().link.clone();
                }
                None => {
                    n += k.chain_len();
                    break;
                }
            }
        }
        n
    }

    fn strategy(&self) -> &'static str {
        "segmented"
    }
}

/// The segmented control stack of Hieb, Dybvig & Bruggeman (PLDI 1990).
///
/// * `call`/`ret` cost what a traditional stack costs: a frame-pointer
///   adjustment (§3), plus one register compare per checked call (Figure 8).
/// * [`capture`](ControlStack::capture) is O(1) and copies nothing.
/// * [`reinstate`](ControlStack::reinstate) copies at most
///   `max(copy_bound, frame_bound)` slots, splitting larger saved segments.
/// * Overflow allocates a new segment and seals the old one as a
///   continuation; underflow reinstates the link — so recursion depth is
///   unbounded and there is no overflow/underflow "bouncing" (§5).
///
/// # Examples
///
/// ```
/// use segstack_core::{Config, ControlStack, ReturnAddress, SegmentedStack, TestCode, TestSlot};
/// use std::rc::Rc;
///
/// let code = Rc::new(TestCode::new());
/// let mut stack = SegmentedStack::<TestSlot>::new(Config::default(), code.clone())?;
/// let ra = code.ret_point(4);
/// stack.set(5, TestSlot::Int(42)); // stage the argument at d + 1
/// stack.call(4, ra, 1, true)?;
/// assert_eq!(stack.get(1), TestSlot::Int(42)); // callee sees its argument
/// assert_eq!(stack.ret()?, ReturnAddress::Code(ra));
/// # Ok::<(), segstack_core::StackError>(())
/// ```
///
/// # Tracing
///
/// The second type parameter is a [`TraceSink`] the machine emits
/// observability events into (capture/reinstate/relink/overflow/underflow
/// with per-event cost payloads). It defaults to [`NoopSink`], a
/// zero-sized sink whose `emit` compiles to nothing, so the untraced
/// machine pays no cost — not even a branch. Pass a
/// [`RingSink`](segstack_trace::RingSink) (or a shared
/// `Rc<RefCell<RingSink>>`) to [`SegmentedStack::with_sink`] to record.
pub struct SegmentedStack<S: StackSlot, T: TraceSink = NoopSink> {
    code: Rc<dyn FrameSizeTable>,
    cfg: Config,
    alloc: SegmentAllocator<S>,
    /// Buffer holding the current segment (possibly shared with sealed
    /// continuations below `base`).
    buf: Buffer<S>,
    /// Base of the current stack record within `buf`.
    base: usize,
    /// Exclusive end of the current segment within `buf`.
    end: usize,
    /// The frame pointer: base of the current frame. There is no stack
    /// pointer (§3).
    fp: usize,
    /// Link field of the current stack record.
    link: Option<Continuation<S>>,
    metrics: Metrics,
    /// Trace-event destination; [`NoopSink`] by default.
    sink: T,
}

impl<S: StackSlot, T: TraceSink> SegmentedStack<S, T> {
    /// Creates a segmented stack with an initial segment of
    /// `cfg.segment_slots()` slots whose base holds the exit routine.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::OutOfStackMemory`] if a configured budget
    /// cannot cover the initial segment.
    pub fn new(cfg: Config, code: Rc<dyn FrameSizeTable>) -> Result<Self, StackError>
    where
        T: Default,
    {
        SegmentedStack::with_sink(cfg, code, T::default())
    }

    /// Like [`SegmentedStack::new`], recording trace events into `sink`.
    pub fn with_sink(
        cfg: Config,
        code: Rc<dyn FrameSizeTable>,
        sink: T,
    ) -> Result<Self, StackError> {
        let mut metrics = Metrics::new();
        let mut alloc = SegmentAllocator::new(&cfg);
        let buf = alloc.alloc(cfg.segment_slots(), &mut metrics)?;
        let end = buf.borrow().len();
        buf.borrow_mut()[0] = S::from_return_address(ReturnAddress::Exit);
        Ok(SegmentedStack { code, cfg, alloc, buf, base: 0, end, fp: 0, link: None, metrics, sink })
    }

    /// The trace sink (shared access, e.g. for readouts in tests).
    pub fn sink(&self) -> &T {
        &self.sink
    }

    /// The trace sink, mutably (e.g. to drain a ring).
    pub fn sink_mut(&mut self) -> &mut T {
        &mut self.sink
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The frame pointer (absolute index of the current frame base).
    pub fn fp(&self) -> usize {
        self.fp
    }

    /// Base of the current stack record.
    pub fn segment_base(&self) -> usize {
        self.base
    }

    /// The end-of-stack pointer: `esp` sits two frame bounds before the
    /// segment end (Figure 8), so the overflow check is a single compare
    /// that ignores frame sizes, and leaf frames need no check at all.
    pub fn esp(&self) -> usize {
        self.end - self.cfg.esp_reserve()
    }

    /// Segments currently pooled by the allocator (reuse diagnostics).
    pub fn pooled_segments(&self) -> usize {
        self.alloc.pooled()
    }

    /// Overflow recovery: "If stack overflow can be detected while the
    /// system is in a known state, overflow can be treated as an implicit
    /// continuation capture" (§5). Seals everything through the caller's
    /// frame (including the staged partial frame boundary) and moves only
    /// the partial frame to a fresh segment.
    fn overflow_call(&mut self, d: usize, ra: CodeAddr, nargs: usize) -> Result<(), StackError> {
        self.metrics.overflows += 1;
        let seal_top = self.fp + d;
        self.sink.emit(EventKind::OverflowBegin, (seal_top - self.base) as u64, nargs as u64);
        let reused_before = self.metrics.segments_reused;
        let newbuf = self.alloc.alloc(self.cfg.segment_slots(), &mut self.metrics)?;
        self.sink.emit(
            EventKind::SegmentAlloc,
            newbuf.borrow().len() as u64,
            (self.metrics.segments_reused > reused_before) as u64,
        );
        let sealed = SealedSeg {
            buf: self.buf.clone(),
            base: self.base,
            size: seal_top - self.base,
            ra,
            link: self.link.take(),
            consumed: false,
        };
        self.metrics.stack_records_allocated += 1;
        let k = Continuation::from_repr(Rc::new(SegKont(RefCell::new(sealed))));
        let newlen = newbuf.borrow().len();
        {
            let src = self.buf.borrow();
            let mut dst = newbuf.borrow_mut();
            dst[0] = S::from_return_address(ReturnAddress::Underflow);
            for j in 0..nargs {
                dst[1 + j] = src[seal_top + 1 + j].clone();
            }
        }
        self.metrics.slots_copied += nargs as u64;
        self.buf = newbuf;
        self.base = 0;
        self.end = newlen;
        self.fp = 0;
        self.link = Some(k);
        self.sink.emit(EventKind::OverflowEnd, nargs as u64, newlen as u64);
        Ok(())
    }

    /// Splits an over-large saved segment before reinstatement (Figure 7).
    /// The bottom part becomes a new record spliced into the chain; the
    /// original record is narrowed to the top part. The only mutation to
    /// sealed stack words is writing the underflow handler at the split
    /// frame's base, which is semantically neutral.
    fn maybe_split(&mut self, kont: &SegKont<S>) {
        if kont.0.borrow().size <= self.cfg.copy_bound() {
            return;
        }
        let mut s = kont.0.borrow_mut();
        let top = s.base + s.size;
        let sp = {
            let buf = s.buf.borrow();
            split_point(&buf, s.base, top, s.ra, &*self.code, self.cfg.copy_bound())
        };
        let Some(sp) = sp else { return };
        let bottom_ra = s.buf.borrow()[sp]
            .as_return_address()
            .expect("split point must be a frame base")
            .code()
            .expect("a frame base above the segment base holds a code return address");
        let bottom = SealedSeg {
            buf: s.buf.clone(),
            base: s.base,
            size: sp - s.base,
            ra: bottom_ra,
            link: s.link.take(),
            consumed: false,
        };
        let deferred = bottom.size;
        s.buf.borrow_mut()[sp] = S::from_return_address(ReturnAddress::Underflow);
        s.base = sp;
        s.size = top - sp;
        s.link = Some(Continuation::from_repr(Rc::new(SegKont(RefCell::new(bottom)))));
        self.metrics.splits += 1;
        self.metrics.stack_records_allocated += 1;
        self.sink.emit(EventKind::Split, deferred as u64, 0);
    }

    /// Zero-copy reinstatement: the relink fast path.
    ///
    /// When the caller holds the *only* handle to the target record
    /// (`Rc::strong_count == 1`) **and** that handle dies with the current
    /// reinstatement (the `owned` contract of
    /// [`reinstate_resolved`](Self::reinstate_resolved)), nothing can ever
    /// reinstate it again, so instead of copying its slots the machine may
    /// adopt the record's segment — and, transitively, its whole chain —
    /// as the current stack. `Rc` uniqueness plus handle ownership is the
    /// safe-Rust analogue of the paper's ownership argument: with no other
    /// reference to the stack record, no observer can distinguish
    /// relinking it in place from copying it out. One-shot continuations
    /// (`call/1cc`) and the underflow handler's link reach this state by
    /// construction; a borrowed multi-shot handle never qualifies, because
    /// the caller's binding *is* the one handle and survives the call.
    ///
    /// Two geometries qualify:
    ///
    /// * **same buffer** — the record seals the region immediately below
    ///   the current base (capture never copied it out), so the base is
    ///   simply lowered back over it;
    /// * **cross buffer** — every handle to the record's buffer is
    ///   accounted for by records inside the continuation's own chain, so
    ///   no foreign record can alias the region above the adopted segment.
    ///   The accounting walk is bounded; longer chains fall back to the
    ///   bounded copy.
    ///
    /// Returns `None` (and mutates nothing) when the fast path does not
    /// apply; the caller then takes the ordinary Figure 6–7 copy path.
    fn try_relink(&mut self, k: &Continuation<S>) -> Option<ReturnAddress> {
        /// Chain prefix inspected by the cross-buffer accounting walk.
        const RELINK_WALK_BUDGET: usize = 32;
        if k.repr_strong_count() != 1 {
            return None;
        }
        let head = k.repr().as_any().downcast_ref::<SegKont<S>>()?;
        let (head_buf, head_base, size, ra) = {
            let s = head.0.borrow();
            if s.consumed || s.size == 0 {
                return None;
            }
            (s.buf.clone(), s.base, s.size, s.ra)
        };
        let disp = self.code.displacement(ra);
        if disp == 0 || disp > size {
            return None;
        }
        let buf_len = head_buf.borrow().len();
        let top = head_base + size;
        if top > buf_len {
            return None;
        }
        let new_fp = top - disp;
        // The adopted state must satisfy the full Figure 8 reserve — two
        // frame bounds above the frame pointer — because the reinstated
        // procedure may have been compiled with elided checks on the
        // strength of a checked entry that guaranteed exactly that slack
        // (interprocedurally elided chains consume both frames of it).
        if new_fp + self.cfg.esp_reserve() > buf_len {
            return None;
        }
        let same_buffer = Rc::ptr_eq(&head_buf, &self.buf);
        if same_buffer {
            // Same-buffer: only a seal sitting flush under the current
            // base merges back by lowering the base over it.
            if top != self.base {
                return None;
            }
        } else {
            // Cross-buffer: tally chain-internal handles to the adopted
            // buffer (our `head_buf` clone is the one transient extra).
            let target = Rc::strong_count(&head_buf) - 1;
            let mut tally = 0usize;
            let mut accounted = false;
            let mut steps = 0usize;
            let mut cur = Some(k.clone());
            while let Some(c) = cur {
                steps += 1;
                if c.is_exit() || steps > RELINK_WALK_BUDGET {
                    break;
                }
                let Some(sk) = c.repr().as_any().downcast_ref::<SegKont<S>>() else {
                    break; // foreign record: its buffer use is opaque
                };
                let next = {
                    let s = sk.0.borrow();
                    if s.consumed {
                        break;
                    }
                    if Rc::ptr_eq(&s.buf, &head_buf) {
                        tally += 1;
                    }
                    s.link.clone()
                };
                if tally == target {
                    accounted = true;
                    break;
                }
                cur = next;
            }
            if !accounted {
                return None;
            }
        }
        // Commit: consume the record and adopt its segment as the live
        // stack. The record keeps existing until the caller's handle drops,
        // but it is poisoned (and releases its buffer handle) so a buggy
        // second reinstatement cannot read slots live execution now owns.
        let link = {
            let mut s = head.0.borrow_mut();
            s.consumed = true;
            s.size = 0;
            s.buf = Rc::new(RefCell::new(Vec::new().into_boxed_slice()));
            s.link.take()
        };
        let old = std::mem::replace(&mut self.buf, head_buf);
        if !Rc::ptr_eq(&old, &self.buf) {
            self.alloc.retire(old);
        }
        self.base = head_base;
        self.end = buf_len;
        self.fp = new_fp;
        self.link = link;
        self.metrics.reinstates_relinked += 1;
        self.metrics.slots_copy_avoided += size as u64;
        self.sink.emit(EventKind::Relink, size as u64, same_buffer as u64);
        Some(ReturnAddress::Code(ra))
    }

    /// Reinstatement of an unwrapped (never one-shot-wrapped) continuation.
    ///
    /// `owned` declares that the caller's handle dies with this call — it
    /// is a one-shot inner just taken out of its wrapper, or the underflow
    /// handler's own link — which is what entitles the relink fast path to
    /// consume the record. A borrowed multi-shot handle may legally be
    /// reinstated again later *even when it is the only live handle* (the
    /// caller's binding is that one handle and survives the call), so it
    /// always takes the bounded-copy path.
    fn reinstate_resolved(
        &mut self,
        k: &Continuation<S>,
        owned: bool,
    ) -> Result<ReturnAddress, StackError> {
        // Unshared owned chain: relink instead of copying. The whole
        // switch is ~1µs of pointer swaps, so it gets exactly one packed
        // ring write (the `Relink` event inside `try_relink`) instead of a
        // Begin/Relink/End span — the span protocol below is reserved for
        // the copy path, whose End event carries the realized copy cost.
        if owned && !k.is_exit() {
            if let Some(ra) = self.try_relink(k) {
                self.metrics.reinstatements += 1;
                return Ok(ra);
            }
        }
        if !self.sink.enabled() {
            return self.reinstate_inner(k);
        }
        // Span-paired: the end event carries the realized cost (slots
        // copied) as a metric delta, so the Figure 6–7 copy bound becomes
        // a per-event assertion in the trace.
        let target_size = k
            .repr()
            .as_any()
            .downcast_ref::<SegKont<S>>()
            .map_or(0, |sk| sk.0.borrow().size as u64);
        self.sink.emit(EventKind::ReinstateBegin, target_size, owned as u64);
        let copied_before = self.metrics.slots_copied;
        let result = self.reinstate_inner(k);
        self.sink.emit(EventKind::ReinstateEnd, self.metrics.slots_copied - copied_before, 0);
        result
    }

    /// The copy path of [`reinstate_resolved`](Self::reinstate_resolved)
    /// (the relink fast path has already been tried and declined).
    fn reinstate_inner(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        self.metrics.reinstatements += 1;
        if k.is_exit() {
            self.buf.borrow_mut()[self.base] = S::from_return_address(ReturnAddress::Exit);
            self.fp = self.base;
            self.link = None;
            return Ok(ReturnAddress::Exit);
        }
        // Skip through empty ablation records (size 0) to the first real
        // segment — linear in the chain, which is the ablation's point.
        let mut resolved = k.clone();
        loop {
            let Some(sk) = resolved.repr().as_any().downcast_ref::<SegKont<S>>() else {
                return Err(StackError::ForeignContinuation { strategy: "segmented" });
            };
            let sealed = sk.0.borrow();
            if sealed.consumed {
                // A relink consumed this record; reinstating it again
                // would read slots live execution now owns.
                return Err(StackError::OneShotReused);
            }
            if sealed.size > 0 {
                break;
            }
            match &sealed.link {
                Some(inner) => {
                    let inner = inner.clone();
                    drop(sealed);
                    resolved = inner;
                    if resolved.is_exit() {
                        drop(resolved);
                        self.buf.borrow_mut()[self.base] =
                            S::from_return_address(ReturnAddress::Exit);
                        self.fp = self.base;
                        self.link = None;
                        return Ok(ReturnAddress::Exit);
                    }
                }
                None => {
                    drop(sealed);
                    self.buf.borrow_mut()[self.base] = S::from_return_address(ReturnAddress::Exit);
                    self.fp = self.base;
                    self.link = None;
                    return Ok(ReturnAddress::Exit);
                }
            }
        }
        let k = &resolved;
        let kont = k
            .repr()
            .as_any()
            .downcast_ref::<SegKont<S>>()
            .ok_or(StackError::ForeignContinuation { strategy: "segmented" })?;
        self.maybe_split(kont);
        let (src_buf, src_base, size, ra, klink) = {
            let s = kont.0.borrow();
            (s.buf.clone(), s.base, s.size, s.ra, s.link.clone())
        };
        if self.base + size + self.cfg.esp_reserve() > self.end {
            let reused_before = self.metrics.segments_reused;
            let newbuf = self.alloc.alloc(size + self.cfg.esp_reserve(), &mut self.metrics)?;
            let newlen = newbuf.borrow().len();
            self.sink.emit(
                EventKind::SegmentAlloc,
                newlen as u64,
                (self.metrics.segments_reused > reused_before) as u64,
            );
            let old = std::mem::replace(&mut self.buf, newbuf);
            self.alloc.retire(old);
            self.base = 0;
            self.end = newlen;
        }
        if Rc::ptr_eq(&src_buf, &self.buf) {
            // The saved segment lives below the current base in the very
            // same buffer (capture never copied it out); the regions are
            // disjoint by construction.
            debug_assert!(src_base + size <= self.base);
            let mut b = self.buf.borrow_mut();
            for i in 0..size {
                b[self.base + i] = b[src_base + i].clone();
            }
        } else {
            let srcb = src_buf.borrow();
            let mut b = self.buf.borrow_mut();
            for i in 0..size {
                b[self.base + i] = srcb[src_base + i].clone();
            }
        }
        self.metrics.slots_copied += size as u64;
        self.fp = self.base + size - self.code.displacement(ra);
        self.link = klink;
        Ok(ReturnAddress::Code(ra))
    }

    /// Audits the paper-level structural invariants of the whole machine
    /// state: pointer ordering, the overflow reserve (Figure 8 — at least
    /// one frame bound of the reserve survives even an unchecked call),
    /// frame well-formedness of the live region, agreement between the
    /// segment's base word and its link field, and well-formedness of every
    /// sealed record reachable through the link chain.
    ///
    /// Unlike the [`walker`](crate::walker) helpers this never panics on
    /// corrupt state; it returns a description of the first violation
    /// found. The fuzz harness calls it after every operation. The cost is
    /// linear in the total retained stack, so it is a debugging aid, not a
    /// production check.
    pub fn audit_invariants(&self) -> Result<(), String> {
        let bound = self.cfg.frame_bound();
        {
            let buf = self.buf.borrow();
            if !(self.base <= self.fp && self.fp <= self.end && self.end <= buf.len()) {
                return Err(format!(
                    "pointer order violated: base={} fp={} end={} buf={}",
                    self.base,
                    self.fp,
                    self.end,
                    buf.len()
                ));
            }
            // Relinking adopts foreign-length buffers, so the machine-wide
            // `end == buffer length` identity must be re-established there;
            // check it holds everywhere.
            if self.end != buf.len() {
                return Err(format!(
                    "segment end {} disagrees with buffer length {}",
                    self.end,
                    buf.len()
                ));
            }
            if self.fp + bound > self.end {
                return Err(format!(
                    "overflow reserve exhausted: fp={} + frame_bound={} > end={}",
                    self.fp, bound, self.end
                ));
            }
            audit_frames(&buf, self.base, self.fp, &*self.code, bound)
                .map_err(|e| format!("live segment: {e}"))?;
            audit_base_word(&buf, self.base, self.link.is_some(), self.cfg.tail_capture_rule())
                .map_err(|e| format!("live segment: {e}"))?;
        }
        let mut link = self.link.clone();
        let mut depth: usize = 0;
        while let Some(k) = link {
            depth += 1;
            let Some(sk) = k.repr().as_any().downcast_ref::<SegKont<S>>() else {
                return Err(format!(
                    "record {depth}: foreign strategy {} in the chain",
                    k.strategy()
                ));
            };
            let next = {
                let s = sk.0.borrow();
                if s.consumed {
                    return Err(format!(
                        "record {depth} was consumed by a relink but is still reachable"
                    ));
                }
                let sbuf = s.buf.borrow();
                if s.base + s.size > sbuf.len() {
                    return Err(format!(
                        "record {depth} overruns its buffer: base={} size={} buf={}",
                        s.base,
                        s.size,
                        sbuf.len()
                    ));
                }
                if s.size == 0 {
                    if self.cfg.tail_capture_rule() {
                        return Err(format!(
                            "record {depth} is empty but the tail-capture rule is active"
                        ));
                    }
                } else {
                    let top = s.base + s.size;
                    let d = self.code.displacement(s.ra);
                    if d == 0 || d > bound {
                        return Err(format!(
                            "record {depth}: topmost displacement {d} outside bound {bound}"
                        ));
                    }
                    if d > s.size {
                        return Err(format!(
                            "record {depth}: topmost displacement {d} underruns size {}",
                            s.size
                        ));
                    }
                    audit_frames(&sbuf, s.base, top - d, &*self.code, bound)
                        .map_err(|e| format!("record {depth}: {e}"))?;
                    audit_base_word(&sbuf, s.base, s.link.is_some(), self.cfg.tail_capture_rule())
                        .map_err(|e| format!("record {depth}: {e}"))?;
                }
                s.link.clone()
            };
            link = next;
        }
        Ok(())
    }
}

/// Non-panicking frame walk from the frame base at `fp` down to `base`:
/// every boundary must hold a return address, code displacements must be
/// nonzero, within the frame bound, and must not underrun `base`, and the
/// underflow/exit word may appear only exactly at `base`.
fn audit_frames<S: StackSlot>(
    buf: &[S],
    base: usize,
    fp: usize,
    code: &dyn FrameSizeTable,
    bound: usize,
) -> Result<(), String> {
    let mut pos = fp;
    loop {
        match buf[pos].as_return_address() {
            Some(ReturnAddress::Code(r)) => {
                if pos == base {
                    return Err(format!("code return address {r} at the segment base {base}"));
                }
                let d = code.displacement(r);
                if d == 0 || d > bound {
                    return Err(format!("frame at {pos}: displacement {d} outside bound {bound}"));
                }
                if d > pos - base {
                    return Err(format!("frame at {pos}: displacement {d} underruns base {base}"));
                }
                pos -= d;
            }
            Some(ReturnAddress::Underflow | ReturnAddress::Exit) => {
                if pos != base {
                    return Err(format!("underflow/exit word above the base at {pos}"));
                }
                return Ok(());
            }
            None => return Err(format!("frame base at {pos} does not hold a return address")),
        }
    }
}

/// The base word and the link field must agree: an underflow handler means
/// a record is linked below; the exit routine means the chain ends (the
/// tail-capture ablation legitimately parks empty linked records above an
/// exit word, so that direction is only checked when the rule is active).
fn audit_base_word<S: StackSlot>(
    buf: &[S],
    base: usize,
    linked: bool,
    tail_rule: bool,
) -> Result<(), String> {
    match buf[base].as_return_address() {
        Some(ReturnAddress::Underflow) => {
            if !linked {
                return Err("underflow handler at the base with no linked record".into());
            }
            Ok(())
        }
        Some(ReturnAddress::Exit) => {
            if tail_rule && linked {
                return Err("exit routine at the base but a record is linked".into());
            }
            Ok(())
        }
        other => Err(format!("base holds {other:?}, not the underflow handler or exit")),
    }
}

impl<S: StackSlot, T: TraceSink> ControlStack<S> for SegmentedStack<S, T> {
    fn name(&self) -> &'static str {
        "segmented"
    }

    fn get(&self, i: usize) -> S {
        debug_assert!(self.fp + i < self.end, "slot read beyond segment end");
        self.buf.borrow()[self.fp + i].clone()
    }

    fn set(&mut self, i: usize, v: S) {
        debug_assert!(self.fp + i < self.end, "slot write beyond segment end");
        self.buf.borrow_mut()[self.fp + i] = v;
    }

    fn call(
        &mut self,
        d: usize,
        ra: CodeAddr,
        nargs: usize,
        check: bool,
    ) -> Result<(), StackError> {
        debug_assert!(d >= 1, "a caller frame occupies at least its return-address slot");
        self.metrics.calls += 1;
        let bound = self.cfg.frame_bound();
        if d > bound || 1 + nargs > bound {
            return Err(StackError::FrameTooLarge { requested: d.max(1 + nargs), bound });
        }
        let new_fp = self.fp + d;
        if check {
            self.metrics.checks_executed += 1;
            if new_fp > self.esp() {
                return self.overflow_call(d, ra, nargs);
            }
        } else {
            self.metrics.checks_elided += 1;
            debug_assert!(
                new_fp + bound <= self.end,
                "unchecked call escaped the two-frame reserve"
            );
        }
        self.buf.borrow_mut()[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
        self.fp = new_fp;
        Ok(())
    }

    fn tail_call(&mut self, src: usize, nargs: usize) {
        // An ascending copy with dst below src never reads a clobbered
        // slot, so src merely needs to sit at or above the target base.
        debug_assert!(src >= 1, "tail-call staging below the frame base");
        self.metrics.tail_calls += 1;
        let mut b = self.buf.borrow_mut();
        for j in 0..nargs {
            b[self.fp + 1 + j] = b[self.fp + src + j].clone();
        }
    }

    fn ret(&mut self) -> Result<ReturnAddress, StackError> {
        self.metrics.returns += 1;
        let ra = self.buf.borrow()[self.fp]
            .as_return_address()
            .expect("frame base must hold a return address");
        match ra {
            ReturnAddress::Code(r) => {
                self.fp -= self.code.displacement(r);
                Ok(ra)
            }
            ReturnAddress::Underflow => {
                debug_assert_eq!(self.fp, self.base, "underflow handler off the segment base");
                self.metrics.underflows += 1;
                let k = self.link.take().expect("underflow with no linked continuation");
                if self.sink.enabled() {
                    let size = k
                        .repr()
                        .as_any()
                        .downcast_ref::<SegKont<S>>()
                        .map_or(0, |sk| sk.0.borrow().size as u64);
                    self.sink.emit(EventKind::Underflow, size, 0);
                }
                // The taken link is owned: it dies at the end of this arm,
                // so the relink fast path may consume the record.
                let result = self.reinstate_resolved(&k, true);
                // An underflow consumes its record; if this was the last
                // reference to the record's buffer, salvage it for reuse.
                // The clone is taken only *after* reinstating so it cannot
                // defeat the relink fast path's buffer accounting, and a
                // relinked record needs no salvage: its buffer *became*
                // the live segment.
                let salvage = k.repr().as_any().downcast_ref::<SegKont<S>>().and_then(|sk| {
                    let s = sk.0.borrow();
                    if s.consumed {
                        None
                    } else {
                        Some(s.buf.clone())
                    }
                });
                drop(k);
                if let Some(buf) = salvage {
                    if !Rc::ptr_eq(&buf, &self.buf) {
                        self.alloc.retire(buf); // pooled only if unshared
                    }
                }
                result
            }
            ReturnAddress::Exit => Ok(ra),
        }
    }

    fn capture(&mut self) -> Continuation<S> {
        self.metrics.captures += 1;
        if self.fp == self.base {
            if self.cfg.tail_capture_rule() {
                // Empty current segment: "no changes are made to the current
                // stack record and the link field of the current stack record
                // serves as the new continuation" (§4). This is what keeps
                // `(define (looper) (call/cc (lambda (k) (looper))))` in
                // constant space.
                self.sink.emit(EventKind::Capture, 0, 1);
                return self.link.clone().unwrap_or_else(Continuation::exit);
            }
            // Ablation: the naive behaviour the paper warns against — chain
            // a fresh empty record on every capture. "The control stack
            // would grow progressively longer and the program would
            // eventually run out of memory" (§4).
            let sealed = SealedSeg {
                buf: self.buf.clone(),
                base: self.base,
                size: 0,
                ra: EMPTY_RECORD_RA,
                link: self.link.take(),
                consumed: false,
            };
            self.metrics.stack_records_allocated += 1;
            let k = Continuation::from_repr(Rc::new(SegKont(RefCell::new(sealed))));
            self.link = Some(k.clone());
            self.sink.emit(EventKind::Capture, 0, 0);
            return k;
        }
        let live_ra = self.buf.borrow()[self.fp]
            .as_return_address()
            .expect("frame base must hold a return address")
            .code()
            .expect("a live frame above the segment base has a code return address");
        let sealed = SealedSeg {
            buf: self.buf.clone(),
            base: self.base,
            size: self.fp - self.base,
            ra: live_ra,
            link: self.link.take(),
            consumed: false,
        };
        self.metrics.stack_records_allocated += 1;
        let k = Continuation::from_repr(Rc::new(SegKont(RefCell::new(sealed))));
        self.buf.borrow_mut()[self.fp] = S::from_return_address(ReturnAddress::Underflow);
        self.sink.emit(EventKind::Capture, (self.fp - self.base) as u64, 0);
        self.base = self.fp;
        self.link = Some(k.clone());
        k
    }

    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        // `call/1cc`: take the inner continuation out of a one-shot
        // wrapper. A spent wrapper errors before any state changes. The
        // taken inner is *owned*: by the one-shot contract a second
        // reinstatement must fail anyway, so the record may be consumed.
        let taken;
        let (k, owned) = match k.unwrap_one_shot() {
            None => (k, false),
            Some(Err(e)) => return Err(e),
            Some(Ok(inner)) => {
                taken = inner;
                (&taken, true)
            }
        };
        self.reinstate_resolved(k, owned)
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn stats(&self) -> StackStats {
        let (chain_records, chain_slots) = match &self.link {
            Some(k) => (k.chain_len(), k.retained_slots()),
            None => (0, 0),
        };
        StackStats {
            chain_records,
            chain_slots,
            current_used_slots: self.fp - self.base,
            current_free_slots: self.esp().saturating_sub(self.fp),
        }
    }

    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let mut out = Vec::new();
        let mut buf = self.buf.clone();
        let mut pos = self.fp;
        let mut link = self.link.clone();
        loop {
            let ra = buf.borrow()[pos].as_return_address().expect("frame base holds an address");
            match ra {
                ReturnAddress::Code(r) => {
                    out.push(r);
                    if out.len() >= limit {
                        return out;
                    }
                    pos -= self.code.displacement(r);
                }
                ReturnAddress::Underflow => {
                    // Continue the walk inside the linked sealed segment.
                    let Some(k) = link.take() else { return out };
                    let Some(sk) = k.repr().as_any().downcast_ref::<SegKont<S>>() else {
                        return out;
                    };
                    let sealed = sk.0.borrow();
                    if sealed.size == 0 {
                        // Empty ablation record: nothing to walk, follow on.
                        let next = sealed.link.clone();
                        drop(sealed);
                        link = next;
                        continue;
                    }
                    out.push(sealed.ra);
                    if out.len() >= limit {
                        return out;
                    }
                    pos = sealed.base + sealed.size - self.code.displacement(sealed.ra);
                    buf = sealed.buf.clone();
                    link = sealed.link.clone();
                }
                ReturnAddress::Exit => return out,
            }
        }
    }

    fn reset(&mut self) {
        self.link = None;
        if Rc::strong_count(&self.buf) > 1 || self.buf.borrow().len() < self.cfg.segment_slots() {
            let fresh = self
                .alloc
                .alloc(self.cfg.segment_slots(), &mut self.metrics)
                .expect("segment budget exhausted during reset");
            let old = std::mem::replace(&mut self.buf, fresh);
            self.alloc.retire(old);
        }
        self.end = self.buf.borrow().len();
        self.base = 0;
        self.fp = 0;
        self.buf.borrow_mut()[0] = S::from_return_address(ReturnAddress::Exit);
    }

    fn trace_summaries(&self) -> Vec<(EventKind, segstack_trace::HistSummary)> {
        self.sink.stats()
    }
}

impl<S: StackSlot, T: TraceSink> fmt::Debug for SegmentedStack<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedStack")
            .field("base", &self.base)
            .field("fp", &self.fp)
            .field("end", &self.end)
            .field("linked", &self.link.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::TestCode;
    use crate::slot::TestSlot;

    fn small_cfg() -> Config {
        Config::builder().segment_slots(256).frame_bound(16).copy_bound(32).build().unwrap()
    }

    fn setup(cfg: Config) -> (Rc<TestCode>, SegmentedStack<TestSlot>) {
        let code = Rc::new(TestCode::new());
        let stack = SegmentedStack::new(cfg, code.clone() as Rc<dyn FrameSizeTable>).unwrap();
        (code, stack)
    }

    /// Stages one argument and calls with displacement `d`.
    fn call1(
        stack: &mut SegmentedStack<TestSlot>,
        code: &TestCode,
        d: usize,
        arg: i64,
        check: bool,
    ) -> CodeAddr {
        let ra = code.ret_point(d);
        stack.set(d + 1, TestSlot::Int(arg));
        stack.call(d, ra, 1, check).unwrap();
        ra
    }

    #[test]
    fn call_and_return_round_trip() {
        let (code, mut stack) = setup(small_cfg());
        let ra = call1(&mut stack, &code, 4, 7, true);
        assert_eq!(stack.fp(), 4);
        assert_eq!(stack.get(0), TestSlot::Ra(ReturnAddress::Code(ra)));
        assert_eq!(stack.get(1), TestSlot::Int(7));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra));
        assert_eq!(stack.fp(), 0);
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let (code, mut stack) = setup(small_cfg());
        let ra1 = call1(&mut stack, &code, 3, 1, true);
        let ra2 = call1(&mut stack, &code, 5, 2, true);
        let ra3 = call1(&mut stack, &code, 2, 3, true);
        assert_eq!(stack.fp(), 10);
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra3));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra2));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra1));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
        assert_eq!(stack.metrics().calls, 3);
        assert_eq!(stack.metrics().returns, 4);
    }

    #[test]
    fn tail_call_shuffles_arguments_in_place() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 7, true);
        let fp_before = stack.fp();
        stack.set(5, TestSlot::Int(100));
        stack.set(6, TestSlot::Int(200));
        stack.tail_call(5, 2);
        assert_eq!(stack.fp(), fp_before, "tail call reuses the frame");
        assert_eq!(stack.get(1), TestSlot::Int(100));
        assert_eq!(stack.get(2), TestSlot::Int(200));
        assert_eq!(stack.metrics().tail_calls, 1);
    }

    #[test]
    fn capture_is_o1_and_copies_nothing() {
        let (code, mut stack) = setup(small_cfg());
        for i in 0..10 {
            call1(&mut stack, &code, 4, i, true);
        }
        let copied_before = stack.metrics().slots_copied;
        let k = stack.capture();
        assert_eq!(stack.metrics().slots_copied, copied_before, "capture copies nothing");
        assert_eq!(k.chain_len(), 1);
        assert_eq!(k.retained_slots(), 40);
        // The live frame's return address was replaced by the underflow
        // handler and the current record now starts at fp.
        assert_eq!(stack.segment_base(), stack.fp());
        assert_eq!(stack.get(0), TestSlot::Ra(ReturnAddress::Underflow));
    }

    #[test]
    fn capture_then_return_underflows_into_continuation() {
        let (code, mut stack) = setup(small_cfg());
        let ra1 = call1(&mut stack, &code, 4, 1, true);
        let ra2 = call1(&mut stack, &code, 4, 2, true);
        let _k = stack.capture();
        // Returning from the live frame goes through the underflow handler
        // and reinstates the sealed segment, resuming at ra2.
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra2));
        assert_eq!(stack.metrics().underflows, 1);
        assert_eq!(stack.metrics().reinstatements, 1);
        // And the reinstated copy unwinds normally from there.
        assert_eq!(stack.get(1), TestSlot::Int(1), "caller frame contents restored");
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra1));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn reinstate_restores_control_multiple_times() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 1, true);
        let ra2 = call1(&mut stack, &code, 4, 2, true);
        let k = stack.capture();
        for round in 0..3 {
            let resumed = stack.reinstate(&k).unwrap();
            assert_eq!(resumed, ReturnAddress::Code(ra2), "round {round}");
            assert_eq!(stack.get(1), TestSlot::Int(1));
        }
        assert_eq!(stack.metrics().reinstatements, 3);
    }

    #[test]
    fn capture_on_empty_segment_returns_link_tail_rule() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 1, true);
        let k1 = stack.capture();
        // fp == base now; a second capture must reuse the link, not grow
        // the chain (the `looper` rule, §4).
        let k2 = stack.capture();
        assert!(k1.ptr_eq(&k2));
        assert_eq!(stack.stats().chain_records, 1);
    }

    #[test]
    fn capture_at_toplevel_returns_exit() {
        let (_code, mut stack) = setup(small_cfg());
        let k = stack.capture();
        assert!(k.is_exit());
    }

    #[test]
    fn reinstate_exit_continuation_halts() {
        let (code, mut stack) = setup(small_cfg());
        let k = Continuation::exit();
        call1(&mut stack, &code, 4, 1, true);
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Exit);
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn overflow_allocates_new_segment_and_seals_old() {
        let (code, mut stack) = setup(small_cfg());
        // segment 256, reserve 32 -> esp = 224; frames of 8 slots.
        let mut depth = 0;
        while stack.metrics().overflows == 0 {
            call1(&mut stack, &code, 8, depth, true);
            depth += 1;
            assert!(depth < 100, "overflow never triggered");
        }
        assert_eq!(stack.metrics().segments_allocated, 2);
        assert_eq!(stack.fp(), 0, "execution continued at the new segment base");
        assert_eq!(stack.get(0), TestSlot::Ra(ReturnAddress::Underflow));
        assert_eq!(stack.get(1), TestSlot::Int(depth - 1), "partial frame moved");
        assert_eq!(stack.stats().chain_records, 1);
    }

    #[test]
    fn deep_recursion_unwinds_across_segments() {
        let (code, mut stack) = setup(small_cfg());
        let mut ras = Vec::new();
        for i in 0..500 {
            ras.push(call1(&mut stack, &code, 8, i, true));
        }
        assert!(stack.metrics().overflows > 10);
        for (i, ra) in ras.into_iter().enumerate().rev() {
            assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra), "return {i}");
            if i > 0 {
                assert_eq!(
                    stack.get(1),
                    TestSlot::Int(i as i64 - 1),
                    "caller arg after return {i}"
                );
            }
        }
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
        // Every overflow's seal is unwound through at least one underflow;
        // splitting of large seals can add more.
        assert!(stack.metrics().underflows >= stack.metrics().overflows);
    }

    #[test]
    fn underflow_reinstate_is_bounded_by_copy_bound() {
        let cfg =
            Config::builder().segment_slots(4096).frame_bound(16).copy_bound(32).build().unwrap();
        let (code, mut stack) = setup(cfg);
        for i in 0..100 {
            call1(&mut stack, &code, 8, i, true);
        }
        let k = stack.capture();
        assert_eq!(k.retained_slots(), 800);
        let before = stack.metrics().slots_copied;
        stack.reinstate(&k).unwrap();
        let copied = stack.metrics().slots_copied - before;
        assert!(copied <= 32, "reinstate copied {copied} slots, bound is 32");
        assert_eq!(stack.metrics().splits, 1);
    }

    #[test]
    fn split_preserves_full_unwind() {
        let cfg =
            Config::builder().segment_slots(4096).frame_bound(16).copy_bound(24).build().unwrap();
        let (code, mut stack) = setup(cfg);
        let mut ras = Vec::new();
        for i in 0..50 {
            ras.push(call1(&mut stack, &code, 8, i, true));
        }
        let k = stack.capture();
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[49]));
        // We resumed at call 50's return point with the frame pointer on
        // frame 48; unwinding yields ras[48]..ras[0] and then the exit.
        for i in (0..49).rev() {
            assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]), "return {i}");
        }
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
        assert!(stack.metrics().splits >= 1);
    }

    #[test]
    fn multiple_reinstatements_after_split_are_consistent() {
        let cfg =
            Config::builder().segment_slots(4096).frame_bound(16).copy_bound(24).build().unwrap();
        let (code, mut stack) = setup(cfg);
        for i in 0..50 {
            call1(&mut stack, &code, 8, i, true);
        }
        let k = stack.capture();
        let first = stack.reinstate(&k).unwrap();
        // Unwind fully to exit.
        loop {
            if stack.ret().unwrap() == ReturnAddress::Exit {
                break;
            }
        }
        // Reinstate the same continuation again; it must resume identically
        // even though it was split in place by the first reinstatement.
        let second = stack.reinstate(&k).unwrap();
        assert_eq!(first, second);
        // The frame pointer sits on frame 48, the topmost *sealed* frame
        // (the frame live at capture time is not part of the continuation).
        assert_eq!(stack.get(1), TestSlot::Int(48));
        loop {
            if stack.ret().unwrap() == ReturnAddress::Exit {
                break;
            }
        }
    }

    #[test]
    fn reinstate_foreign_continuation_errors() {
        #[derive(Debug)]
        struct Foreign;
        impl KontRepr<TestSlot> for Foreign {
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn retained_slots(&self) -> usize {
                0
            }
            fn chain_len(&self) -> usize {
                0
            }
            fn strategy(&self) -> &'static str {
                "foreign"
            }
        }
        let (_code, mut stack) = setup(small_cfg());
        let k = Continuation::from_repr(Rc::new(Foreign));
        assert_eq!(
            stack.reinstate(&k).unwrap_err(),
            StackError::ForeignContinuation { strategy: "segmented" }
        );
    }

    #[test]
    fn frame_bound_is_enforced() {
        let (code, mut stack) = setup(small_cfg());
        let ra = code.ret_point(17);
        let err = stack.call(17, ra, 0, true).unwrap_err();
        assert!(matches!(err, StackError::FrameTooLarge { requested: 17, bound: 16 }));
        let ra = code.ret_point(4);
        let err = stack.call(4, ra, 16, true).unwrap_err();
        assert!(matches!(err, StackError::FrameTooLarge { .. }));
    }

    #[test]
    fn budget_exhaustion_surfaces_from_overflow() {
        let cfg = Config::builder()
            .segment_slots(128)
            .frame_bound(16)
            .copy_bound(32)
            .max_total_slots(128)
            .pool_segments(0)
            .build()
            .unwrap();
        let (code, mut stack) = setup(cfg);
        let mut result = Ok(());
        for i in 0..100 {
            let ra = code.ret_point(8);
            stack.set(9, TestSlot::Int(i));
            result = stack.call(8, ra, 1, true);
            if result.is_err() {
                break;
            }
        }
        assert!(matches!(result, Err(StackError::OutOfStackMemory { .. })));
    }

    #[test]
    fn unchecked_calls_skip_the_compare() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 1, true);
        call1(&mut stack, &code, 4, 2, false);
        assert_eq!(stack.metrics().checks_executed, 1);
        assert_eq!(stack.metrics().checks_elided, 1);
    }

    #[test]
    fn reset_clears_state_for_reuse() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 1, true);
        let _k = stack.capture();
        stack.reset();
        assert_eq!(stack.fp(), 0);
        assert_eq!(stack.segment_base(), 0);
        assert_eq!(stack.stats().chain_records, 0);
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn stats_reflect_usage() {
        let (code, mut stack) = setup(small_cfg());
        assert_eq!(stack.stats().current_used_slots, 0);
        call1(&mut stack, &code, 4, 1, true);
        call1(&mut stack, &code, 4, 2, true);
        let st = stack.stats();
        assert_eq!(st.current_used_slots, 8);
        assert_eq!(st.current_free_slots, 256 - 32 - 8);
        let _k = stack.capture();
        let st = stack.stats();
        assert_eq!(st.chain_records, 1);
        assert_eq!(st.chain_slots, 8);
        assert_eq!(st.current_used_slots, 0);
    }

    #[test]
    fn audit_passes_through_overflow_capture_and_reinstate() {
        let (code, mut stack) = setup(small_cfg());
        stack.audit_invariants().unwrap();
        let mut konts = Vec::new();
        for i in 0..120 {
            call1(&mut stack, &code, 8, i, true);
            stack.audit_invariants().unwrap();
            if i % 17 == 0 {
                konts.push(stack.capture());
                stack.audit_invariants().unwrap();
            }
        }
        for k in &konts {
            stack.reinstate(k).unwrap();
            stack.audit_invariants().unwrap();
        }
        while stack.ret().unwrap() != ReturnAddress::Exit {
            stack.audit_invariants().unwrap();
        }
        stack.audit_invariants().unwrap();
    }

    #[test]
    fn audit_flags_a_clobbered_frame_base() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 1, true);
        call1(&mut stack, &code, 4, 2, true);
        // Smash the caller's return-address word with data.
        stack.set(0, TestSlot::Int(99));
        let err = stack.audit_invariants().unwrap_err();
        assert!(err.contains("does not hold a return address"), "{err}");
    }

    #[test]
    fn audit_flags_a_forged_underflow_word() {
        let (code, mut stack) = setup(small_cfg());
        call1(&mut stack, &code, 4, 1, true);
        call1(&mut stack, &code, 4, 2, true);
        // An underflow handler strictly above the base is corruption.
        stack.set(0, TestSlot::Ra(ReturnAddress::Underflow));
        let err = stack.audit_invariants().unwrap_err();
        assert!(err.contains("underflow"), "{err}");
    }

    #[test]
    fn dropped_capture_underflows_by_relink_in_same_buffer() {
        let (code, mut stack) = setup(small_cfg());
        let ra1 = call1(&mut stack, &code, 4, 1, true);
        let ra2 = call1(&mut stack, &code, 4, 2, true);
        // Capture and immediately drop the handle: only the machine's link
        // still references the record, so the underflow may consume it.
        drop(stack.capture());
        let copied = stack.metrics().slots_copied;
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra2));
        assert_eq!(stack.metrics().slots_copied, copied, "relink copies nothing");
        assert_eq!(stack.metrics().reinstates_relinked, 1);
        assert_eq!(stack.metrics().slots_copy_avoided, 8);
        stack.audit_invariants().unwrap();
        assert_eq!(stack.get(1), TestSlot::Int(1), "caller frame contents intact");
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra1));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn underflow_after_overflow_relinks_without_copying() {
        let (code, mut stack) = setup(small_cfg());
        while stack.metrics().overflows == 0 {
            call1(&mut stack, &code, 8, 7, true);
        }
        // The overflow moved the partial frame; from here the unwind back
        // into the sealed segment must not copy at all.
        let copied = stack.metrics().slots_copied;
        while stack.metrics().underflows == 0 {
            stack.ret().unwrap();
        }
        assert_eq!(stack.metrics().slots_copied, copied, "underflow relinked, no copy");
        assert_eq!(stack.metrics().reinstates_relinked, 1);
        assert!(stack.metrics().slots_copy_avoided > 0);
        stack.audit_invariants().unwrap();
        while stack.ret().unwrap() != ReturnAddress::Exit {}
    }

    #[test]
    fn one_shot_reinstate_relinks_across_buffers() {
        let (code, mut stack) = setup(small_cfg());
        let mut ras = Vec::new();
        for i in 0..10 {
            ras.push(call1(&mut stack, &code, 4, i, true));
        }
        let k = stack.capture_one_shot();
        assert!(k.is_one_shot());
        assert_eq!(k.retained_slots(), 40);
        // Reset drops the machine's handle on the inner record; only the
        // wrapper remains, so the reinstatement may adopt the old buffer.
        stack.reset();
        let copied = stack.metrics().slots_copied;
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[9]));
        assert_eq!(stack.metrics().slots_copied, copied, "relink copies nothing");
        assert_eq!(stack.metrics().reinstates_relinked, 1);
        assert_eq!(stack.metrics().slots_copy_avoided, 40);
        stack.audit_invariants().unwrap();
        assert_eq!(stack.get(1), TestSlot::Int(8), "resumed on the topmost sealed frame");
        // The adopted chain unwinds exactly like a copied one would.
        for i in (0..9).rev() {
            assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]), "return {i}");
        }
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
        // The shot is spent: reinstating again is an error, not corruption.
        assert_eq!(stack.reinstate(&k).unwrap_err(), StackError::OneShotReused);
        assert!(k.one_shot_consumed());
    }

    #[test]
    fn one_shot_with_live_link_falls_back_to_copy() {
        let (code, mut stack) = setup(small_cfg());
        let mut ras = Vec::new();
        for i in 0..5 {
            ras.push(call1(&mut stack, &code, 4, i, true));
        }
        let k = stack.capture_one_shot();
        // The machine's own link still references the inner record, so the
        // fast path must decline; the copy path still consumes the shot.
        let copied = stack.metrics().slots_copied;
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[4]));
        assert!(stack.metrics().slots_copied > copied, "shared inner must copy");
        assert_eq!(stack.metrics().reinstates_relinked, 0);
        stack.audit_invariants().unwrap();
        assert_eq!(stack.reinstate(&k).unwrap_err(), StackError::OneShotReused);
    }

    #[test]
    fn one_shot_of_exit_continuation_reinstates_once() {
        let (_code, mut stack) = setup(small_cfg());
        let k = stack.capture_one_shot();
        assert!(k.is_one_shot());
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Exit);
        assert_eq!(stack.reinstate(&k).unwrap_err(), StackError::OneShotReused);
    }

    #[test]
    fn relink_preserves_chained_multi_shot_records_below() {
        let (code, mut stack) = setup(small_cfg());
        for i in 0..4 {
            call1(&mut stack, &code, 4, i, true);
        }
        let pinned = stack.capture(); // multi-shot record below, user-held
        let mut ras = Vec::new();
        for i in 0..4 {
            ras.push(call1(&mut stack, &code, 4, 10 + i, true));
        }
        let k = stack.capture_one_shot();
        stack.reset();
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[3]));
        stack.audit_invariants().unwrap();
        // Unwind through the relinked region and straight through the
        // pinned record's region; both must be intact.
        while stack.ret().unwrap() != ReturnAddress::Exit {}
        // The pinned multi-shot continuation still reinstates by copying.
        let before = stack.metrics().slots_copied;
        stack.reinstate(&pinned).unwrap();
        assert!(stack.metrics().slots_copied > before);
        assert_eq!(stack.get(1), TestSlot::Int(2));
        stack.audit_invariants().unwrap();
    }

    #[test]
    fn segments_are_pooled_after_reinstatement_replacement() {
        let cfg = Config::builder()
            .segment_slots(128)
            .frame_bound(16)
            .copy_bound(64)
            .pool_segments(2)
            .build()
            .unwrap();
        let (code, mut stack) = setup(cfg);
        // Force a couple of overflows, then unwind everything so old
        // buffers become unshared and poolable on subsequent replacement.
        for i in 0..40 {
            call1(&mut stack, &code, 8, i, true);
        }
        while stack.ret().unwrap() != ReturnAddress::Exit {}
        assert!(stack.metrics().overflows >= 1);
        // Unwinding through underflow reinstated old segments; ensure the
        // system is still consistent and reusable.
        call1(&mut stack, &code, 8, 5, true);
        assert_eq!(stack.get(1), TestSlot::Int(5));
    }
}

#[cfg(test)]
mod ablation_tests {
    use super::*;
    use crate::addr::TestCode;
    use crate::sim;
    use crate::slot::TestSlot;

    /// The §4 rule ablated: every tail-position capture chains an empty
    /// record, so the looper grows without bound — exactly the failure the
    /// paper describes.
    #[test]
    fn without_the_tail_rule_the_looper_chain_grows() {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder()
            .segment_slots(512)
            .frame_bound(16)
            .disable_tail_capture_rule()
            .build()
            .unwrap();
        let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
        let grown = sim::looper_workload(&mut stack, &code, 500, 4);
        assert!(grown >= 500, "chain stayed at {grown}; ablation should grow it");
        // The machine still works: returning unwinds through all the empty
        // records to the real segment and out to the exit.
        assert_eq!(sim::unwind_all(&mut stack), 2);
    }

    #[test]
    fn ablated_continuations_still_reinstate_correctly() {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder()
            .segment_slots(512)
            .frame_bound(16)
            .disable_tail_capture_rule()
            .build()
            .unwrap();
        let mut stack = SegmentedStack::<TestSlot>::new(cfg, code.clone()).unwrap();
        let ras = sim::push_frames(&mut stack, &code, 5, 4);
        let k1 = stack.capture();
        let k2 = stack.capture(); // empty-segment capture: chains a record
        assert!(!k1.ptr_eq(&k2), "ablation mints a fresh record");
        assert_eq!(stack.reinstate(&k2).unwrap(), ReturnAddress::Code(ras[4]));
        assert_eq!(sim::unwind_all(&mut stack), 5);
        assert_eq!(stack.reinstate(&k1).unwrap(), ReturnAddress::Code(ras[4]));
        assert_eq!(sim::unwind_all(&mut stack), 5);
    }
}
