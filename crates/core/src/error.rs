//! Error types for control-stack operations.

use std::error::Error;
use std::fmt;

/// An unrecoverable control-stack failure.
///
/// Ordinary overflow and underflow are *not* errors in this system — the
/// paper's whole point is that they are handled transparently as implicit
/// continuation capture and reinstatement (§5). `StackError` covers genuine
/// misuse or resource exhaustion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StackError {
    /// A continuation created by one strategy was reinstated on another
    /// (e.g. a heap-model continuation handed to a segmented stack).
    ForeignContinuation {
        /// Strategy that was asked to reinstate the continuation.
        strategy: &'static str,
    },
    /// A frame exceeded the configured frame bound (§4: "the number of
    /// arguments to a procedure and the amount of storage necessary for
    /// local bindings and intermediate results must be limited").
    FrameTooLarge {
        /// Slots requested for the frame (displacement + partial frame).
        requested: usize,
        /// The configured bound.
        bound: usize,
    },
    /// The segment allocator refused to allocate (configured hard cap on
    /// total stack memory, used for failure-injection tests).
    OutOfStackMemory {
        /// Slots requested.
        requested: usize,
        /// Slots remaining under the cap.
        available: usize,
    },
    /// A one-shot continuation (`call/1cc`) was reinstated a second time.
    /// One-shot continuations are consumed by their first reinstatement —
    /// that is the contract that makes the zero-copy relink fast path safe.
    OneShotReused,
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::ForeignContinuation { strategy } => {
                write!(f, "continuation was not created by the {strategy} strategy")
            }
            StackError::FrameTooLarge { requested, bound } => {
                write!(f, "frame of {requested} slots exceeds the frame bound of {bound}")
            }
            StackError::OutOfStackMemory { requested, available } => {
                write!(
                    f,
                    "stack memory exhausted: {requested} slots requested, {available} available"
                )
            }
            StackError::OneShotReused => {
                write!(f, "one-shot continuation was already reinstated once")
            }
        }
    }
}

impl Error for StackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StackError::ForeignContinuation { strategy: "segmented" };
        assert_eq!(e.to_string(), "continuation was not created by the segmented strategy");
        let e = StackError::FrameTooLarge { requested: 99, bound: 64 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("64"));
        let e = StackError::OutOfStackMemory { requested: 10, available: 3 };
        assert!(e.to_string().contains("exhausted"));
        let e = StackError::OneShotReused;
        assert!(e.to_string().contains("one-shot"));
    }

    #[test]
    fn implements_error_and_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<StackError>();
    }
}
