//! Return addresses and the code-stream frame-size table (paper §3, Figure 4).
//!
//! The paper stores, *in the code stream immediately before every return
//! point*, a data word holding the size of the frame being returned into —
//! more precisely, the displacement from the base of the callee's frame to
//! the base of the caller's frame. Stack walkers use the return address to
//! find this word and thereby find every frame boundary without any dynamic
//! links in the frames themselves.
//!
//! We model native return addresses as [`CodeAddr`] values (a code chunk plus
//! an instruction offset) and the code stream's data words as the
//! [`FrameSizeTable`] trait: `displacement(ra)` is exactly the paper's
//! "word placed immediately before the return point".

use std::cell::RefCell;
use std::fmt;

/// An address in the (bytecode) code stream: a chunk id plus an instruction
/// offset within that chunk.
///
/// This plays the role of a native return address in the paper. The word
/// logically preceding it in the code stream (see [`FrameSizeTable`]) holds
/// the frame displacement used for stack walking.
///
/// # Examples
///
/// ```
/// use segstack_core::CodeAddr;
/// let ra = CodeAddr::new(0, 17);
/// assert_eq!(ra.chunk(), 0);
/// assert_eq!(ra.offset(), 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CodeAddr {
    chunk: u32,
    offset: u32,
}

impl CodeAddr {
    /// Creates a code address from a chunk id and an instruction offset.
    pub const fn new(chunk: u32, offset: u32) -> Self {
        CodeAddr { chunk, offset }
    }

    /// The code chunk (compilation unit) this address points into.
    pub fn chunk(self) -> u32 {
        self.chunk
    }

    /// The instruction offset within the chunk.
    pub fn offset(self) -> u32 {
        self.offset
    }
}

impl fmt::Debug for CodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.chunk, self.offset)
    }
}

impl fmt::Display for CodeAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.chunk, self.offset)
    }
}

/// A return address stored at the base of a frame (paper §3).
///
/// Besides ordinary return points ([`ReturnAddress::Code`]), two
/// distinguished addresses appear at segment bases:
///
/// * [`ReturnAddress::Underflow`] — the underflow handler. "All other
///   segments have the address of the underflow handler stored at the base
///   of the segment" (§4). Returning through it reinstates the continuation
///   in the link field of the current stack record.
/// * [`ReturnAddress::Exit`] — "The initial stack segment has as its return
///   address at the base of the segment the address of a routine that exits
///   to the operating system" (§4). Returning through it ends the
///   computation.
///
/// # Examples
///
/// ```
/// use segstack_core::{CodeAddr, ReturnAddress};
/// let ra = ReturnAddress::Code(CodeAddr::new(2, 5));
/// assert!(ra.is_code());
/// assert!(!ReturnAddress::Underflow.is_code());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReturnAddress {
    /// A normal return point in the code stream.
    Code(CodeAddr),
    /// The underflow handler (base of every non-initial stack segment).
    Underflow,
    /// The exit routine (base of the initial stack segment).
    Exit,
}

impl ReturnAddress {
    /// Returns `true` if this is an ordinary in-code return point.
    pub fn is_code(self) -> bool {
        matches!(self, ReturnAddress::Code(_))
    }

    /// Returns the code address, if this is an ordinary return point.
    pub fn code(self) -> Option<CodeAddr> {
        match self {
            ReturnAddress::Code(a) => Some(a),
            _ => None,
        }
    }
}

impl fmt::Display for ReturnAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReturnAddress::Code(a) => write!(f, "ra@{a}"),
            ReturnAddress::Underflow => write!(f, "ra@underflow"),
            ReturnAddress::Exit => write!(f, "ra@exit"),
        }
    }
}

/// Access to the frame-size data words the compiler placed in the code
/// stream (paper §3, Figure 4).
///
/// `displacement(ra)` returns the number of slots from the base of the frame
/// whose return address is `ra` to the base of the frame below it (its
/// caller's frame). In the paper this word sits immediately before the
/// return point; here the code store looks it up from the same compiled
/// artifact.
///
/// Implementations must be stable: the displacement for a given return
/// address never changes once code is emitted (code chunks are append-only).
pub trait FrameSizeTable {
    /// The caller→callee frame displacement recorded just before return
    /// point `ra`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `ra` is not a return point they emitted;
    /// that indicates a corrupted stack and is unrecoverable.
    fn displacement(&self, ra: CodeAddr) -> usize;
}

/// A trivial, growable [`FrameSizeTable`] for tests, simulations and
/// benchmarks.
///
/// Each call to [`TestCode::ret_point`] "emits" a return point whose
/// preceding frame-size word is the given displacement.
///
/// # Examples
///
/// ```
/// use segstack_core::{FrameSizeTable, TestCode};
/// let code = TestCode::new();
/// let ra = code.ret_point(4);
/// assert_eq!(code.displacement(ra), 4);
/// ```
#[derive(Debug, Default)]
pub struct TestCode {
    disps: RefCell<Vec<usize>>,
}

impl TestCode {
    /// Creates an empty synthetic code stream.
    pub fn new() -> Self {
        TestCode::default()
    }

    /// Emits a return point preceded by a frame-size word of `displacement`
    /// slots, returning its address.
    pub fn ret_point(&self, displacement: usize) -> CodeAddr {
        let mut disps = self.disps.borrow_mut();
        let offset = disps.len() as u32;
        disps.push(displacement);
        CodeAddr::new(0, offset)
    }

    /// Number of return points emitted so far.
    pub fn len(&self) -> usize {
        self.disps.borrow().len()
    }

    /// Returns `true` if no return points have been emitted.
    pub fn is_empty(&self) -> bool {
        self.disps.borrow().is_empty()
    }
}

impl FrameSizeTable for TestCode {
    fn displacement(&self, ra: CodeAddr) -> usize {
        assert_eq!(ra.chunk(), 0, "TestCode has a single chunk");
        self.disps.borrow()[ra.offset() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_addr_accessors() {
        let a = CodeAddr::new(3, 9);
        assert_eq!(a.chunk(), 3);
        assert_eq!(a.offset(), 9);
        assert_eq!(format!("{a}"), "3:9");
        assert_eq!(format!("{a:?}"), "3:9");
    }

    #[test]
    fn code_addr_ordering_is_lexicographic() {
        assert!(CodeAddr::new(0, 100) < CodeAddr::new(1, 0));
        assert!(CodeAddr::new(1, 1) < CodeAddr::new(1, 2));
    }

    #[test]
    fn return_address_predicates() {
        let ra = ReturnAddress::Code(CodeAddr::new(0, 0));
        assert!(ra.is_code());
        assert_eq!(ra.code(), Some(CodeAddr::new(0, 0)));
        assert!(!ReturnAddress::Underflow.is_code());
        assert_eq!(ReturnAddress::Underflow.code(), None);
        assert_eq!(ReturnAddress::Exit.code(), None);
    }

    #[test]
    fn return_address_display() {
        assert_eq!(format!("{}", ReturnAddress::Code(CodeAddr::new(1, 2))), "ra@1:2");
        assert_eq!(format!("{}", ReturnAddress::Underflow), "ra@underflow");
        assert_eq!(format!("{}", ReturnAddress::Exit), "ra@exit");
    }

    #[test]
    fn test_code_records_displacements() {
        let code = TestCode::new();
        assert!(code.is_empty());
        let a = code.ret_point(3);
        let b = code.ret_point(8);
        assert_eq!(code.len(), 2);
        assert_eq!(code.displacement(a), 3);
        assert_eq!(code.displacement(b), 8);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic]
    fn test_code_rejects_foreign_chunk() {
        let code = TestCode::new();
        code.displacement(CodeAddr::new(1, 0));
    }
}
