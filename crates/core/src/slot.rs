//! The machine-word abstraction stored in stack frames.
//!
//! The paper's frames are sequences of machine words; the first word of each
//! frame is a return address, the rest are arguments, locals, temporaries and
//! partial frames (§3). We abstract a word as the [`StackSlot`] trait so that
//! the same control-stack machinery can carry raw test words in unit tests
//! and full Scheme values in the VM.

use std::fmt::Debug;

use crate::addr::ReturnAddress;

/// A value that can live in a stack-frame slot.
///
/// The only structure the control stack needs from a slot is the ability to
/// store and recover a [`ReturnAddress`] (the word at the base of each
/// frame) and a filler value for unoccupied slots.
///
/// Cloning a slot is the cost model's unit of copying: strategies count
/// `slots_copied` in units of `clone` calls.
pub trait StackSlot: Clone + Debug + 'static {
    /// Encodes a return address as a slot (stored at the frame base).
    fn from_return_address(ra: ReturnAddress) -> Self;

    /// Decodes a return address, if this slot holds one.
    fn as_return_address(&self) -> Option<ReturnAddress>;

    /// The filler value used for freshly allocated, unoccupied slots.
    fn empty() -> Self;
}

/// A minimal slot type for tests, simulations and micro-benchmarks.
///
/// # Examples
///
/// ```
/// use segstack_core::{ReturnAddress, StackSlot, TestSlot};
/// let s = TestSlot::from_return_address(ReturnAddress::Underflow);
/// assert_eq!(s.as_return_address(), Some(ReturnAddress::Underflow));
/// assert_eq!(TestSlot::Int(7).as_return_address(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum TestSlot {
    /// An unoccupied slot.
    #[default]
    Empty,
    /// An integer payload (stands in for an arbitrary datum).
    Int(i64),
    /// A return address (frame base word).
    Ra(ReturnAddress),
}

impl TestSlot {
    /// Returns the integer payload, if any.
    pub fn int(self) -> Option<i64> {
        match self {
            TestSlot::Int(n) => Some(n),
            _ => None,
        }
    }
}

impl StackSlot for TestSlot {
    fn from_return_address(ra: ReturnAddress) -> Self {
        TestSlot::Ra(ra)
    }

    fn as_return_address(&self) -> Option<ReturnAddress> {
        match self {
            TestSlot::Ra(ra) => Some(*ra),
            _ => None,
        }
    }

    fn empty() -> Self {
        TestSlot::Empty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CodeAddr;

    #[test]
    fn round_trips_return_addresses() {
        for ra in [
            ReturnAddress::Code(CodeAddr::new(0, 3)),
            ReturnAddress::Underflow,
            ReturnAddress::Exit,
        ] {
            assert_eq!(TestSlot::from_return_address(ra).as_return_address(), Some(ra));
        }
    }

    #[test]
    fn non_addresses_decode_to_none() {
        assert_eq!(TestSlot::Empty.as_return_address(), None);
        assert_eq!(TestSlot::Int(-3).as_return_address(), None);
    }

    #[test]
    fn empty_is_default() {
        assert_eq!(TestSlot::empty(), TestSlot::default());
        assert_eq!(TestSlot::Int(5).int(), Some(5));
        assert_eq!(TestSlot::Empty.int(), None);
    }
}
