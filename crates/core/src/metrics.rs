//! Architecture-independent cost counters.
//!
//! The paper's comparisons (heap vs. copy vs. cache vs. hybrid vs.
//! segmented) are about *what work each model does per operation*: slots
//! copied, frames heap-allocated, overflow checks executed, segments
//! created. Every strategy maintains a [`Metrics`] record so benchmarks can
//! report these counts alongside wall-clock time; the counts reproduce the
//! paper's claims independently of the host machine.

use std::fmt;

/// Operation counters accumulated by a control-stack strategy.
///
/// All counters are monotonically increasing; [`Metrics::reset`] zeroes them
/// between benchmark phases.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Metrics {
    /// Non-tail procedure calls performed.
    pub calls: u64,
    /// Tail calls performed.
    pub tail_calls: u64,
    /// Returns performed (including those that triggered underflow).
    pub returns: u64,
    /// Continuations captured (`call/cc`).
    pub captures: u64,
    /// Continuations reinstated (invocations of continuation objects,
    /// including implicit reinstatement on underflow).
    pub reinstatements: u64,
    /// Reinstatements served by the zero-copy relink fast path: the target
    /// record and its buffer were unshared, so the segment chain was
    /// adopted as the current stack without copying a single slot.
    pub reinstates_relinked: u64,
    /// Slots the relink fast path would otherwise have copied (the sizes of
    /// relinked records; the counterpart of `slots_copied` on the copy
    /// path).
    pub slots_copy_avoided: u64,
    /// Continuation splits performed before reinstatement (Figure 7).
    pub splits: u64,
    /// Stack overflows handled (implicit captures, §5).
    pub overflows: u64,
    /// Stack underflows handled (implicit reinstatements, §4–5).
    pub underflows: u64,
    /// Stack segments allocated (fresh allocations, not pool reuses).
    pub segments_allocated: u64,
    /// Stack segments obtained from the reuse pool.
    pub segments_reused: u64,
    /// Slots copied (the unit of copying cost: one slot clone).
    pub slots_copied: u64,
    /// Frames allocated in the heap (heap/cache/hybrid baselines; stack
    /// records for the segmented strategy are counted separately).
    pub heap_frames_allocated: u64,
    /// Heap slots allocated for frames or flushed stack images.
    pub heap_slots_allocated: u64,
    /// Stack records (continuation descriptors) allocated.
    pub stack_records_allocated: u64,
    /// Overflow checks actually executed (Figure 8 cost model).
    pub checks_executed: u64,
    /// Call sites that skipped the overflow check thanks to the two-frame
    /// reserve (leaf procedures, tail loops; §5).
    pub checks_elided: u64,
    /// Subset of `checks_elided` proved safe by the interprocedural
    /// bounded-depth analysis (whole proven subgraphs, not just leaf
    /// bodies). Always also counted in `checks_elided`.
    pub checks_elided_interproc: u64,
    /// Fused superinstructions dispatched (each replaces two or more
    /// plain opcodes on the interpreter hot path).
    pub superinstructions_dispatched: u64,
    /// Inline-cache hits at global-operator call sites.
    pub ic_hits: u64,
    /// Inline-cache misses (first execution or invalidated by a global
    /// redefinition) at global-operator call sites.
    pub ic_misses: u64,
}

impl Metrics {
    /// Creates a zeroed metrics record.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = Metrics::default();
    }

    /// Total procedure-call interface operations (calls + tail calls +
    /// returns) — the denominator for per-call overhead figures.
    pub fn call_interface_ops(&self) -> u64 {
        self.calls + self.tail_calls + self.returns
    }

    /// Adds every counter of `other` into `self`.
    pub fn absorb(&mut self, other: &Metrics) {
        self.merge(other);
    }

    /// Merges `other` into `self` counter by counter — lossless
    /// aggregation of per-worker records into a runtime-wide total
    /// (saturating, so a pathological sum cannot wrap).
    pub fn merge(&mut self, other: &Metrics) {
        for (mine, theirs) in self.fields_mut().into_iter().zip(other.fields()) {
            *mine = mine.saturating_add(theirs);
        }
    }

    /// Every counter, in the fixed field order used by
    /// [`Metrics::FIELD_NAMES`].
    pub fn fields(&self) -> [u64; 22] {
        [
            self.calls,
            self.tail_calls,
            self.returns,
            self.captures,
            self.reinstatements,
            self.reinstates_relinked,
            self.slots_copy_avoided,
            self.splits,
            self.overflows,
            self.underflows,
            self.segments_allocated,
            self.segments_reused,
            self.slots_copied,
            self.heap_frames_allocated,
            self.heap_slots_allocated,
            self.stack_records_allocated,
            self.checks_executed,
            self.checks_elided,
            self.checks_elided_interproc,
            self.superinstructions_dispatched,
            self.ic_hits,
            self.ic_misses,
        ]
    }

    fn fields_mut(&mut self) -> [&mut u64; 22] {
        [
            &mut self.calls,
            &mut self.tail_calls,
            &mut self.returns,
            &mut self.captures,
            &mut self.reinstatements,
            &mut self.reinstates_relinked,
            &mut self.slots_copy_avoided,
            &mut self.splits,
            &mut self.overflows,
            &mut self.underflows,
            &mut self.segments_allocated,
            &mut self.segments_reused,
            &mut self.slots_copied,
            &mut self.heap_frames_allocated,
            &mut self.heap_slots_allocated,
            &mut self.stack_records_allocated,
            &mut self.checks_executed,
            &mut self.checks_elided,
            &mut self.checks_elided_interproc,
            &mut self.superinstructions_dispatched,
            &mut self.ic_hits,
            &mut self.ic_misses,
        ]
    }

    /// Counter names matching [`Metrics::fields`] positionally.
    pub const FIELD_NAMES: [&'static str; 22] = [
        "calls",
        "tail_calls",
        "returns",
        "captures",
        "reinstatements",
        "reinstates_relinked",
        "slots_copy_avoided",
        "splits",
        "overflows",
        "underflows",
        "segments_allocated",
        "segments_reused",
        "slots_copied",
        "heap_frames_allocated",
        "heap_slots_allocated",
        "stack_records_allocated",
        "checks_executed",
        "checks_elided",
        "checks_elided_interproc",
        "superinstructions_dispatched",
        "ic_hits",
        "ic_misses",
    ];

    /// A single-line JSON object with one member per counter, in
    /// [`Metrics::FIELD_NAMES`] order. Counters are plain JSON numbers.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in Self::FIELD_NAMES.iter().zip(self.fields()).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} tail={} rets={} captures={} reinstates={} relinked={} \
             copy-avoided={} splits={} ovf={} unf={} segs={}+{}r copied={} \
             heap-frames={} heap-slots={} records={} checks={}/{} elided \
             ({} interproc) super={} ic={}/{}",
            self.calls,
            self.tail_calls,
            self.returns,
            self.captures,
            self.reinstatements,
            self.reinstates_relinked,
            self.slots_copy_avoided,
            self.splits,
            self.overflows,
            self.underflows,
            self.segments_allocated,
            self.segments_reused,
            self.slots_copied,
            self.heap_frames_allocated,
            self.heap_slots_allocated,
            self.stack_records_allocated,
            self.checks_executed,
            self.checks_elided,
            self.checks_elided_interproc,
            self.superinstructions_dispatched,
            self.ic_hits,
            self.ic_misses,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed_and_resets() {
        let mut m = Metrics::new();
        assert_eq!(m, Metrics::default());
        m.calls = 5;
        m.slots_copied = 100;
        m.reset();
        assert_eq!(m, Metrics::default());
    }

    #[test]
    fn call_interface_ops_sums_calls_and_returns() {
        let m = Metrics { calls: 3, tail_calls: 2, returns: 4, ..Metrics::default() };
        assert_eq!(m.call_interface_ops(), 9);
    }

    #[test]
    fn absorb_adds_fieldwise() {
        let mut a = Metrics { calls: 1, splits: 2, ..Metrics::default() };
        let b = Metrics { calls: 10, underflows: 7, ..Metrics::default() };
        a.absorb(&b);
        assert_eq!(a.calls, 11);
        assert_eq!(a.splits, 2);
        assert_eq!(a.underflows, 7);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Metrics::new().to_string().is_empty());
    }

    #[test]
    fn merge_is_lossless_over_every_field() {
        // Build two records with distinct primes in every counter so any
        // dropped or double-counted field changes the sum.
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        for (i, f) in a.fields_mut().into_iter().enumerate() {
            *f = (i as u64 + 1) * 3;
        }
        for (i, f) in b.fields_mut().into_iter().enumerate() {
            *f = (i as u64 + 1) * 1000;
        }
        let mut merged = a.clone();
        merged.merge(&b);
        for (i, (ma, (fa, fb))) in
            merged.fields().into_iter().zip(a.fields().into_iter().zip(b.fields())).enumerate()
        {
            assert_eq!(ma, fa + fb, "field {} dropped by merge", Metrics::FIELD_NAMES[i]);
        }
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = Metrics { calls: u64::MAX - 1, ..Metrics::default() };
        let b = Metrics { calls: 100, ..Metrics::default() };
        a.merge(&b);
        assert_eq!(a.calls, u64::MAX);
    }

    #[test]
    fn json_names_every_field() {
        let m = Metrics { calls: 7, checks_elided: 9, ..Metrics::default() };
        let json = m.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"calls\":7"));
        assert!(json.contains("\"checks_elided\":9"));
        for name in Metrics::FIELD_NAMES {
            assert!(json.contains(&format!("\"{name}\":")), "missing {name}");
        }
    }
}
