//! Deep-chain teardown for the baseline strategies: flushed-segment
//! chains (cache) and dynamic-link frame chains (heap) with 100k+ links
//! must measure and drop without native-stack recursion, mirroring the
//! equivalent test for the segmented machine in `segstack-core`.

use segstack_baselines::Strategy;
use segstack_core::{Config, TestCode, TestSlot};
use std::rc::Rc;

const DEEP: usize = 120_000;

fn tiny_cfg() -> Config {
    Config::builder().segment_slots(12).frame_bound(4).copy_bound(4).build().unwrap()
}

/// The stack cache flushes one record per overflow; a long computation
/// on a tiny cache builds a 100k-record chain. The chain accessors and
/// the teardown must both be iterative.
#[test]
fn cache_flush_chain_tears_down_iteratively() {
    let code = Rc::new(TestCode::new());
    let ra = code.ret_point(4);
    let mut stack = Strategy::Cache.build::<TestSlot>(tiny_cfg(), code.clone()).unwrap();
    while (stack.metrics().overflows as usize) < DEEP {
        stack.call(4, ra, 0, true).unwrap();
    }
    let k = stack.capture();
    assert!(k.chain_len() >= DEEP, "chain has {} records", k.chain_len());
    assert!(k.retained_slots() >= 4 * DEEP);
    drop(stack);
    drop(k);
}

/// The heap strategy links one frame per call through dynamic links; a
/// deep non-tail recursion is a 100k-frame linked list. Dropping the
/// machine (and a capture sharing the spine) must not recurse.
#[test]
fn heap_frame_chain_tears_down_iteratively() {
    let code = Rc::new(TestCode::new());
    let ra = code.ret_point(4);
    let mut stack = Strategy::Heap.build::<TestSlot>(tiny_cfg(), code.clone()).unwrap();
    for _ in 0..DEEP {
        stack.call(4, ra, 0, true).unwrap();
    }
    assert_eq!(stack.metrics().heap_frames_allocated, DEEP as u64);
    let k = stack.capture();
    drop(stack);
    drop(k);
}
