//! Model-based property testing of every control-stack strategy.
//!
//! A trivially correct reference model (a vector of frames plus snapshot
//! continuations) is driven through random call / return / capture /
//! reinstate sequences in lockstep with each real strategy. Every
//! observable — resumption addresses, argument slots, exit timing — must
//! match. This is the deepest correctness net for the capture/reinstate
//! machinery: it explores interleavings no hand-written test reaches.

use std::rc::Rc;

use segstack_baselines::Strategy;
use segstack_core::rng::SplitMix64;
use segstack_core::{
    CodeAddr, Config, Continuation, ControlStack, ReturnAddress, TestCode, TestSlot,
};

/// One scripted operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Push a frame carrying this argument.
    Call(i64),
    /// Pop a frame (skipped when only the initial frame remains).
    Ret,
    /// Capture the current continuation and remember it.
    Capture,
    /// Reinstate a previously captured continuation (index modulo count).
    Reinstate(usize),
    /// Replace the live frame's argument via a proper tail call.
    TailCall(i64),
}

/// The reference model: frames are `(return-address, argument)` pairs; a
/// continuation is a snapshot of the frames *below* the live frame plus
/// the live frame's return address.
#[derive(Clone, Debug, Default)]
struct Model {
    /// Frames below the live frame (the live frame is tracked separately).
    below: Vec<(CodeAddr, i64)>,
    /// The live frame: `None` means we sit on the initial frame.
    live: Option<(CodeAddr, i64)>,
    konts: Vec<(Vec<(CodeAddr, i64)>, CodeAddr)>,
}

impl Model {
    fn call(&mut self, ra: CodeAddr, arg: i64) {
        if let Some(prev) = self.live.take() {
            self.below.push(prev);
        }
        self.live = Some((ra, arg));
    }

    /// Returns what `ret` should yield, and pops.
    fn ret(&mut self) -> Option<CodeAddr> {
        let (ra, _) = self.live.take()?;
        self.live = self.below.pop();
        Some(ra)
    }

    fn capture(&mut self) {
        if let Some((ra, _)) = self.live {
            self.konts.push((self.below.clone(), ra));
        }
        // Capturing on the initial frame yields the exit continuation; the
        // driver models that case separately.
    }

    /// Reinstating kont `i`: afterwards the live frame is the snapshot's
    /// top frame and execution resumes at the snapshot's return address.
    fn reinstate(&mut self, i: usize) -> CodeAddr {
        let (below, ra) = self.konts[i].clone();
        let mut below = below;
        self.live = below.pop();
        self.below = below;
        ra
    }

    fn top_arg(&self) -> Option<i64> {
        self.live.map(|(_, a)| a)
    }

    /// A tail call reuses the live frame: same return address, new arg.
    fn tail_call(&mut self, arg: i64) -> bool {
        match self.live {
            Some((ra, _)) => {
                self.live = Some((ra, arg));
                true
            }
            None => false,
        }
    }
}

const D: usize = 6;

fn run_script(strategy: Strategy, cfg: &Config, ops: &[Op]) {
    let code = Rc::new(TestCode::new());
    let mut stack: Box<dyn ControlStack<TestSlot>> =
        strategy.build(cfg.clone(), code.clone()).unwrap();
    let mut model = Model::default();
    let mut konts: Vec<Continuation<TestSlot>> = Vec::new();

    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Call(arg) => {
                let ra = code.ret_point(D);
                stack.set(D + 1, TestSlot::Int(arg));
                stack.call(D, ra, 1, true).unwrap();
                model.call(ra, arg);
            }
            Op::Ret => {
                let Some(expected) = model.ret() else { continue };
                let got = stack.ret().unwrap();
                assert_eq!(
                    got,
                    ReturnAddress::Code(expected),
                    "{strategy} step {step}: wrong resumption address"
                );
            }
            Op::Capture => {
                let k = stack.capture();
                if model.live.is_some() {
                    model.capture();
                    konts.push(k);
                }
            }
            Op::TailCall(arg) => {
                // Only meaningful with a live frame (the initial frame has
                // no argument slot convention in the model).
                if !model.tail_call(arg) {
                    continue;
                }
                stack.set(D + 1, TestSlot::Int(arg));
                stack.tail_call(D + 1, 1);
            }
            Op::Reinstate(i) => {
                if konts.is_empty() {
                    continue;
                }
                let i = i % konts.len();
                let got = stack.reinstate(&konts[i]).unwrap();
                let expected = model.reinstate(i);
                assert_eq!(
                    got,
                    ReturnAddress::Code(expected),
                    "{strategy} step {step}: wrong reinstate address"
                );
            }
        }
        // The live frame's argument slot must always agree.
        if let Some(arg) = model.top_arg() {
            assert_eq!(
                stack.get(1),
                TestSlot::Int(arg),
                "{strategy} step {step}: wrong argument in the live frame"
            );
        }
    }

    // Drain to the exit and verify the full unwind order.
    loop {
        match model.ret() {
            Some(expected) => {
                assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(expected), "{strategy} drain");
                if let Some(arg) = model.top_arg() {
                    assert_eq!(stack.get(1), TestSlot::Int(arg), "{strategy} drain arg");
                }
            }
            None => {
                assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit, "{strategy} exit");
                break;
            }
        }
    }
}

/// Draws an op script with the same weighting the old proptest strategy
/// used: call 3, ret 3, capture 1, reinstate 1, tail-call 2.
fn arb_ops(rng: &mut SplitMix64, len: usize) -> Vec<Op> {
    let count = rng.gen_range(0, len as u64) as usize;
    (0..count)
        .map(|_| match rng.gen_range(0, 10) {
            0..=2 => Op::Call(rng.gen_range_i64(0, 1000)),
            3..=5 => Op::Ret,
            6 => Op::Capture,
            7 => Op::Reinstate(rng.gen_range(0, 8) as usize),
            _ => Op::TailCall(rng.gen_range_i64(1000, 2000)),
        })
        .collect()
}

fn small_cfg() -> Config {
    // Small segments + tiny copy bound: every path (overflow, underflow,
    // splitting) is exercised constantly.
    Config::builder().segment_slots(128).frame_bound(16).copy_bound(8).build().unwrap()
}

#[test]
fn all_strategies_match_the_model() {
    for seed in 0..128u64 {
        let ops = arb_ops(&mut SplitMix64::new(seed), 120);
        for s in Strategy::ALL {
            run_script(s, &Config::default(), &ops);
        }
    }
}

#[test]
fn all_strategies_match_the_model_under_stress() {
    // Offset the seed space so the stress run explores different scripts.
    for seed in 1000..1128u64 {
        let ops = arb_ops(&mut SplitMix64::new(seed), 120);
        for s in Strategy::ALL {
            run_script(s, &small_cfg(), &ops);
        }
    }
}

/// A long deterministic soak: heavily interleaved captures and reinstates
/// at depth, across segment boundaries.
#[test]
fn deterministic_soak() {
    let mut ops = Vec::new();
    for i in 0..40 {
        for j in 0..25 {
            ops.push(Op::Call(i * 100 + j));
        }
        ops.push(Op::Capture);
        for _ in 0..10 {
            ops.push(Op::Ret);
        }
        ops.push(Op::Reinstate(i as usize / 2));
        ops.push(Op::Ret);
    }
    for s in Strategy::ALL {
        run_script(s, &small_cfg(), &ops);
    }
}
