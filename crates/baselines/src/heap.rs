//! The heap model (paper Figure 1, §2).
//!
//! "The simplest way to support continuation operations is to abandon the
//! use of a reusable stack to store activation records and to maintain
//! activation records as a linked list in the heap. ... A continuation may
//! be captured or reinstated for little more than the cost of an ordinary
//! procedure call."
//!
//! The price, which this implementation pays faithfully, is that *every*
//! call (including tail calls — frames may never be reused or modified once
//! linked) allocates a fresh heap frame and copies the staged arguments
//! into it, and every call maintains an explicit dynamic link.

use std::any::Any;
use std::rc::Rc;

use segstack_core::{
    CodeAddr, Config, Continuation, ControlStack, KontRepr, Metrics, ReturnAddress, StackError,
    StackSlot, StackStats,
};

use crate::frames::HeapFrame;

/// Continuation representation of the heap model: a pointer to the caller
/// chain plus the resume address. Capture and reinstatement are O(1).
#[derive(Debug)]
struct HeapKont<S: StackSlot> {
    frame: Rc<HeapFrame<S>>,
    ra: CodeAddr,
}

impl<S: StackSlot> KontRepr<S> for HeapKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        self.frame.chain_slots()
    }

    fn chain_len(&self) -> usize {
        self.frame.chain_len()
    }

    fn strategy(&self) -> &'static str {
        "heap"
    }
}

/// Control stack strategy that allocates every activation record in the
/// heap (Figure 1).
///
/// # Examples
///
/// ```
/// use segstack_baselines::HeapStack;
/// use segstack_core::{Config, ControlStack, ReturnAddress, TestCode, TestSlot};
/// use std::rc::Rc;
///
/// let code = Rc::new(TestCode::new());
/// let mut stack = HeapStack::<TestSlot>::new(Config::default());
/// let ra = code.ret_point(4);
/// stack.set(5, TestSlot::Int(1));
/// stack.call(4, ra, 1, true)?;
/// let k = stack.capture(); // O(1): just the chain pointer + resume address
/// assert_eq!(stack.ret()?, ReturnAddress::Code(ra));
/// assert_eq!(stack.reinstate(&k)?, ReturnAddress::Code(ra));
/// # Ok::<(), segstack_core::StackError>(())
/// ```
#[derive(Debug)]
pub struct HeapStack<S: StackSlot> {
    cur: Rc<HeapFrame<S>>,
    metrics: Metrics,
}

impl<S: StackSlot> HeapStack<S> {
    /// Creates a heap-model stack. The configuration is accepted for
    /// interface uniformity; the heap model has no segments, bounds or
    /// checks to configure.
    pub fn new(_cfg: Config) -> Self {
        HeapStack { cur: Self::initial_frame(), metrics: Metrics::new() }
    }

    fn initial_frame() -> Rc<HeapFrame<S>> {
        HeapFrame::new(None, vec![S::from_return_address(ReturnAddress::Exit)])
    }

    /// Depth of the current frame chain (including the initial frame).
    pub fn depth(&self) -> usize {
        self.cur.chain_len()
    }

    /// Ensures the current frame is privately owned before execution
    /// writes into it. "The frame cannot be reused or modified" once it is
    /// part of a captured continuation (§2): returning or re-entering into
    /// a frame some continuation still references clones it first, so the
    /// continuation's view stays frozen. The cost is bounded by the frame
    /// size, never by the stack depth.
    fn make_private(&mut self) {
        if Rc::strong_count(&self.cur) > 1 {
            let slots = self.cur.slots.borrow().clone();
            self.metrics.heap_frames_allocated += 1;
            self.metrics.heap_slots_allocated += slots.len() as u64;
            self.metrics.slots_copied += slots.len() as u64;
            self.cur = HeapFrame::new(self.cur.link.clone(), slots);
        }
    }
}

impl<S: StackSlot> Default for HeapStack<S> {
    fn default() -> Self {
        HeapStack::new(Config::default())
    }
}

impl<S: StackSlot> ControlStack<S> for HeapStack<S> {
    fn name(&self) -> &'static str {
        "heap"
    }

    fn get(&self, i: usize) -> S {
        self.cur.get(i)
    }

    fn set(&mut self, i: usize, v: S) {
        self.cur.set(i, v);
    }

    fn call(
        &mut self,
        d: usize,
        ra: CodeAddr,
        nargs: usize,
        _check: bool,
    ) -> Result<(), StackError> {
        self.metrics.calls += 1;
        let mut slots = Vec::with_capacity(1 + nargs);
        slots.push(S::from_return_address(ReturnAddress::Code(ra)));
        for j in 0..nargs {
            slots.push(self.cur.get(d + 1 + j));
        }
        self.metrics.slots_copied += nargs as u64;
        self.metrics.heap_frames_allocated += 1;
        self.metrics.heap_slots_allocated += (1 + nargs) as u64;
        self.cur = HeapFrame::new(Some(self.cur.clone()), slots);
        Ok(())
    }

    fn tail_call(&mut self, src: usize, nargs: usize) {
        self.metrics.tail_calls += 1;
        // A linked frame may be shared with a captured continuation, so it
        // can never be reused: proper tail calls still allocate (§2 — "the
        // frame cannot be reused or modified").
        let mut slots = Vec::with_capacity(1 + nargs);
        slots.push(self.cur.get(0));
        for j in 0..nargs {
            slots.push(self.cur.get(src + j));
        }
        self.metrics.slots_copied += nargs as u64;
        self.metrics.heap_frames_allocated += 1;
        self.metrics.heap_slots_allocated += (1 + nargs) as u64;
        self.cur = HeapFrame::new(self.cur.link.clone(), slots);
    }

    fn ret(&mut self) -> Result<ReturnAddress, StackError> {
        self.metrics.returns += 1;
        let ra =
            self.cur.get(0).as_return_address().expect("frame slot 0 must hold a return address");
        match ra {
            ReturnAddress::Code(_) => {
                // "The called procedure uses the link to restore the old
                // frame pointer before returning" — the extra memory read
                // of the heap model.
                let link = self.cur.link.clone().expect("a code return address implies a caller");
                self.cur = link;
                self.make_private();
                Ok(ra)
            }
            ReturnAddress::Exit => Ok(ra),
            ReturnAddress::Underflow => unreachable!("the heap model has no underflow handler"),
        }
    }

    fn capture(&mut self) -> Continuation<S> {
        self.metrics.captures += 1;
        let ra =
            self.cur.get(0).as_return_address().expect("frame slot 0 must hold a return address");
        match ra {
            ReturnAddress::Code(ra) => {
                let frame = self.cur.link.clone().expect("a code return address implies a caller");
                self.metrics.stack_records_allocated += 1;
                Continuation::from_repr(Rc::new(HeapKont { frame, ra }))
            }
            ReturnAddress::Exit => Continuation::exit(),
            ReturnAddress::Underflow => unreachable!("the heap model has no underflow handler"),
        }
    }

    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        // `call/1cc`: take the inner continuation out of a one-shot
        // wrapper; a spent wrapper errors before any state changes.
        let taken;
        let k = match k.unwrap_one_shot() {
            None => k,
            Some(Err(e)) => return Err(e),
            Some(Ok(inner)) => {
                taken = inner;
                &taken
            }
        };
        self.metrics.reinstatements += 1;
        if k.is_exit() {
            self.cur = Self::initial_frame();
            return Ok(ReturnAddress::Exit);
        }
        let kont = k
            .repr()
            .as_any()
            .downcast_ref::<HeapKont<S>>()
            .ok_or(StackError::ForeignContinuation { strategy: "heap" })?;
        self.cur = kont.frame.clone();
        self.make_private();
        Ok(ReturnAddress::Code(kont.ra))
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn stats(&self) -> StackStats {
        let (chain_records, chain_slots) = match &self.cur.link {
            Some(f) => (f.chain_len(), f.chain_slots()),
            None => (0, 0),
        };
        StackStats {
            chain_records,
            chain_slots,
            current_used_slots: self.cur.slots.borrow().len(),
            current_free_slots: usize::MAX, // the heap never overflows
        }
    }

    fn reset(&mut self) {
        self.cur = Self::initial_frame();
    }

    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let mut out = Vec::new();
        let mut f = Some(self.cur.clone());
        while let Some(frame) = f {
            match frame.get(0).as_return_address() {
                Some(ReturnAddress::Code(r)) => out.push(r),
                _ => break,
            }
            if out.len() >= limit {
                break;
            }
            f = frame.link.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::{sim, TestCode, TestSlot};

    fn setup() -> (Rc<TestCode>, HeapStack<TestSlot>) {
        (Rc::new(TestCode::new()), HeapStack::new(Config::default()))
    }

    #[test]
    fn call_return_round_trip() {
        let (code, mut stack) = setup();
        let ras = sim::push_frames(&mut stack, &code, 3, 4);
        assert_eq!(stack.get(1), TestSlot::Int(2));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[2]));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[1]));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[0]));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn every_call_allocates_a_heap_frame() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 10, 4);
        assert_eq!(stack.metrics().heap_frames_allocated, 10);
        assert!(stack.metrics().heap_slots_allocated >= 20);
    }

    #[test]
    fn tail_calls_also_allocate() {
        let (code, mut stack) = setup();
        sim::tail_loop_workload(&mut stack, &code, 100, 4);
        assert_eq!(stack.metrics().tail_calls, 100);
        assert_eq!(stack.metrics().heap_frames_allocated, 101);
        // But the *chain* does not grow: proper tail calls.
        assert_eq!(stack.depth(), 1);
    }

    #[test]
    fn capture_and_reinstate_are_o1() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 100, 4);
        let copied = stack.metrics().slots_copied;
        let k = stack.capture();
        assert_eq!(stack.metrics().slots_copied, copied, "capture copies nothing");
        assert_eq!(k.chain_len(), 100, "chain excludes the live frame, includes the initial frame");
        stack.reinstate(&k).unwrap();
        // Re-entering a shared frame clones just that frame (never the
        // chain), so the continuation's view stays frozen.
        assert!(
            stack.metrics().slots_copied - copied <= 8,
            "reinstate cost is one frame, not O(depth)"
        );
        assert_eq!(stack.get(1), TestSlot::Int(98), "resumed on the caller's frame");
    }

    #[test]
    fn reinstate_resumes_and_unwinds() {
        let (code, mut stack) = setup();
        let ras = sim::push_frames(&mut stack, &code, 5, 4);
        let k = stack.capture();
        assert_eq!(sim::unwind_all(&mut stack), 6);
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[4]));
        // Resumed below frame 4: the remaining returns are ras[3..0] + exit.
        assert_eq!(sim::unwind_all(&mut stack), 5);
    }

    #[test]
    fn multiple_reinstatements_share_frames() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 5, 4);
        let k = stack.capture();
        let retained = k.retained_slots();
        for _ in 0..3 {
            stack.reinstate(&k).unwrap();
            assert_eq!(k.retained_slots(), retained, "no duplication in the heap model");
            sim::unwind_all(&mut stack);
        }
    }

    #[test]
    fn capture_at_toplevel_is_exit() {
        let (_code, mut stack) = setup();
        let k = stack.capture();
        assert!(k.is_exit());
        sim::push_frames(&mut stack, &Rc::new(TestCode::new()), 2, 4);
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Exit);
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn looper_rule_holds() {
        let (code, mut stack) = setup();
        let max_chain = sim::looper_workload(&mut stack, &code, 1000, 4);
        assert_eq!(max_chain, 1, "heap-model looper keeps a constant chain");
    }

    #[test]
    fn foreign_continuation_is_rejected() {
        let (code, mut stack) = setup();
        let seg_code: Rc<dyn segstack_core::FrameSizeTable> = code.clone();
        let mut seg =
            segstack_core::SegmentedStack::<TestSlot>::new(Config::default(), seg_code).unwrap();
        let k = sim::capture_at_depth(&mut seg, &code, 3, 4);
        assert_eq!(
            stack.reinstate(&k).unwrap_err(),
            StackError::ForeignContinuation { strategy: "heap" }
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 5, 4);
        stack.reset();
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
        assert_eq!(stack.stats().chain_records, 0);
    }
}
