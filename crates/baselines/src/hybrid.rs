//! The hybrid stack/heap model (Clinger, Hartheimer & Ost 1988; paper §6).
//!
//! Frames are allocated on a stack and *moved into a heap-allocated linked
//! list when a continuation is created*. The list stays in the heap
//! indefinitely; frames are never copied back onto the stack — execution
//! returns *into* heap frames. Its advantage is that "there is never more
//! than one copy of a given frame"; its costs, which this implementation
//! pays faithfully, are that every return must check whether it returns to
//! a stack frame or a heap frame, objects with dynamic extent cannot be
//! stack allocated (frames move on capture), and the stack must be kept
//! small to bound capture cost.

use std::any::Any;
use std::rc::Rc;

use segstack_core::{
    CodeAddr, Config, Continuation, ControlStack, FrameSizeTable, KontRepr, Metrics, ReturnAddress,
    StackError, StackSlot, StackStats,
};

use crate::frames::HeapFrame;

/// Continuation representation of the hybrid model: the head of the heap
/// frame list plus the resume address. Because frames were *moved* (not
/// copied) into the heap, capture after the first one is O(1) until new
/// stack frames accumulate.
#[derive(Debug)]
struct HybridKont<S: StackSlot> {
    frame: Rc<HeapFrame<S>>,
    ra: CodeAddr,
}

impl<S: StackSlot> KontRepr<S> for HybridKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        self.frame.chain_slots()
    }

    fn chain_len(&self) -> usize {
        self.frame.chain_len()
    }

    fn strategy(&self) -> &'static str {
        "hybrid"
    }
}

/// Where execution currently lives.
#[derive(Debug)]
enum Mode<S: StackSlot> {
    /// Current frame on the stack; `deep` is the heap chain beneath the
    /// stack's bottom frame.
    Stack { deep: Option<Rc<HeapFrame<S>>> },
    /// Current frame in the heap (we returned into a migrated frame).
    Heap(Rc<HeapFrame<S>>),
}

/// Control-stack strategy with stack allocation and migrate-to-heap
/// continuation capture (the Clinger et al. hybrid).
///
/// `cfg.segment_slots()` is the stack size; the model itself requires it to
/// be small "so that the cost of creating a continuation is bounded" (§6) —
/// at the price of more frequent overflow migrations.
///
/// # Examples
///
/// ```
/// use segstack_baselines::HybridStack;
/// use segstack_core::{Config, ControlStack, TestCode, TestSlot, sim};
/// use std::rc::Rc;
///
/// let code = Rc::new(TestCode::new());
/// let cfg = Config::builder().segment_slots(512).frame_bound(16).build()?;
/// let mut stack = HybridStack::<TestSlot>::new(cfg, code.clone());
/// sim::push_frames(&mut stack, &code, 10, 4);
/// let k = stack.capture(); // migrates the 10 stack frames into the heap
/// assert_eq!(stack.metrics().heap_frames_allocated, 10); // callers + initial frame
/// let _ = k;
/// # Ok::<(), segstack_core::StackError>(())
/// ```
pub struct HybridStack<S: StackSlot> {
    code: Rc<dyn FrameSizeTable>,
    cfg: Config,
    buf: Vec<S>,
    fp: usize,
    mode: Mode<S>,
    metrics: Metrics,
}

impl<S: StackSlot> std::fmt::Debug for HybridStack<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridStack")
            .field("fp", &self.fp)
            .field("stack", &self.buf.len())
            .field("mode", &self.mode)
            .finish()
    }
}

impl<S: StackSlot> HybridStack<S> {
    /// Creates a hybrid stack with a stack buffer of `cfg.segment_slots()`
    /// slots.
    pub fn new(cfg: Config, code: Rc<dyn FrameSizeTable>) -> Self {
        let mut buf: Vec<S> = std::iter::repeat_with(S::empty).take(cfg.segment_slots()).collect();
        buf[0] = S::from_return_address(ReturnAddress::Exit);
        HybridStack {
            code,
            cfg,
            buf,
            fp: 0,
            mode: Mode::Stack { deep: None },
            metrics: Metrics::new(),
        }
    }

    /// Returns `true` when the current frame lives in the heap (execution
    /// returned into a migrated frame).
    pub fn in_heap(&self) -> bool {
        matches!(self.mode, Mode::Heap(_))
    }

    fn esp(&self) -> usize {
        self.buf.len() - self.cfg.esp_reserve()
    }

    /// Migrates every stack frame below `fp` into the heap chain, on top of
    /// the current `deep` chain. `live_ra` is the live frame's return
    /// address (`buf[fp]`). Returns the new chain head (the live frame's
    /// caller). The migrated frames are *moved*: this is the one-copy-only
    /// property of the hybrid model.
    fn migrate_below(&mut self, live_ra: CodeAddr) -> Rc<HeapFrame<S>> {
        let Mode::Stack { deep } = &mut self.mode else {
            unreachable!("migration only happens in stack mode")
        };
        // Collect frame extents top-down by walking displacement words.
        let mut extents = Vec::new();
        let mut top = self.fp;
        let mut ra = live_ra;
        loop {
            let d = self.code.displacement(ra);
            let b = top - d;
            extents.push((b, top));
            if b == 0 {
                break;
            }
            ra = self.buf[b]
                .as_return_address()
                .expect("frame base must hold a return address")
                .code()
                .expect("hybrid stack frames above the base hold code return addresses");
            top = b;
        }
        // Build heap frames bottom-up.
        let mut parent = deep.take();
        for &(b, t) in extents.iter().rev() {
            let slots = self.buf[b..t].to_vec();
            self.metrics.heap_frames_allocated += 1;
            self.metrics.heap_slots_allocated += (t - b) as u64;
            self.metrics.slots_copied += (t - b) as u64;
            parent = Some(HeapFrame::new(parent, slots));
        }
        parent.expect("at least the base frame was migrated")
    }

    /// Ensures the heap frame we are about to execute in is privately
    /// owned: if a captured continuation still references it, clone it so
    /// the continuation's view stays frozen (frames in the heap list are
    /// immutable once shared, §6). Bounded by the frame size.
    fn make_private_heap(&mut self) {
        let Mode::Heap(h) = &self.mode else { return };
        if Rc::strong_count(h) > 1 {
            let slots = h.slots.borrow().clone();
            self.metrics.heap_frames_allocated += 1;
            self.metrics.heap_slots_allocated += slots.len() as u64;
            self.metrics.slots_copied += slots.len() as u64;
            self.mode = Mode::Heap(HeapFrame::new(h.link.clone(), slots));
        }
    }

    /// Slides `width` slots of the live frame from `fp` down to the stack
    /// base after a migration.
    fn slide_live_frame(&mut self, width: usize) {
        let width = width.min(self.buf.len() - self.fp);
        for i in 0..width {
            self.buf[i] = self.buf[self.fp + i].clone();
        }
        self.metrics.slots_copied += width as u64;
        self.fp = 0;
    }
}

impl<S: StackSlot> ControlStack<S> for HybridStack<S> {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn get(&self, i: usize) -> S {
        match &self.mode {
            Mode::Stack { .. } => self.buf[self.fp + i].clone(),
            Mode::Heap(h) => h.get(i),
        }
    }

    fn set(&mut self, i: usize, v: S) {
        match &self.mode {
            Mode::Stack { .. } => self.buf[self.fp + i] = v,
            Mode::Heap(h) => h.set(i, v),
        }
    }

    fn call(
        &mut self,
        d: usize,
        ra: CodeAddr,
        nargs: usize,
        check: bool,
    ) -> Result<(), StackError> {
        debug_assert!(d >= 1);
        self.metrics.calls += 1;
        let bound = self.cfg.frame_bound();
        if d > bound || 1 + nargs > bound {
            return Err(StackError::FrameTooLarge { requested: d.max(1 + nargs), bound });
        }
        match &self.mode {
            Mode::Heap(h) => {
                // Push the callee at the stack base; the heap frame becomes
                // the chain beneath the stack.
                let h = h.clone();
                self.buf[0] = S::from_return_address(ReturnAddress::Code(ra));
                for j in 0..nargs {
                    self.buf[1 + j] = h.get(d + 1 + j);
                }
                self.metrics.slots_copied += nargs as u64;
                self.fp = 0;
                self.mode = Mode::Stack { deep: Some(h) };
                Ok(())
            }
            Mode::Stack { .. } => {
                let new_fp = self.fp + d;
                if check {
                    self.metrics.checks_executed += 1;
                    if new_fp > self.esp() {
                        // Stack overflow: migrate everything below the live
                        // frame into the heap and slide the live frame (and
                        // the staged partial frame) to the base.
                        self.metrics.overflows += 1;
                        if self.fp > 0 {
                            let live_ra = self.buf[self.fp]
                                .as_return_address()
                                .expect("frame base must hold a return address")
                                .code()
                                .expect("a frame above the stack base has a code return address");
                            let head = self.migrate_below(live_ra);
                            match &mut self.mode {
                                Mode::Stack { deep } => *deep = Some(head),
                                Mode::Heap(_) => unreachable!(),
                            }
                            self.slide_live_frame(d + 1 + nargs);
                        }
                        let new_fp = self.fp + d;
                        self.buf[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
                        self.fp = new_fp;
                        return Ok(());
                    }
                } else {
                    self.metrics.checks_elided += 1;
                }
                self.buf[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
                self.fp = new_fp;
                Ok(())
            }
        }
    }

    fn tail_call(&mut self, src: usize, nargs: usize) {
        debug_assert!(src >= 1);
        self.metrics.tail_calls += 1;
        match &self.mode {
            Mode::Stack { .. } => {
                // Stack frames are private: reuse in place (the hybrid
                // model's advantage over the pure heap model).
                for j in 0..nargs {
                    self.buf[self.fp + 1 + j] = self.buf[self.fp + src + j].clone();
                }
            }
            Mode::Heap(h) => {
                // Heap frames may be shared with captured continuations and
                // can never be reused.
                let h = h.clone();
                let mut slots = Vec::with_capacity(1 + nargs);
                slots.push(h.get(0));
                for j in 0..nargs {
                    slots.push(h.get(src + j));
                }
                self.metrics.slots_copied += nargs as u64;
                self.metrics.heap_frames_allocated += 1;
                self.metrics.heap_slots_allocated += (1 + nargs) as u64;
                self.mode = Mode::Heap(HeapFrame::new(h.link.clone(), slots));
            }
        }
    }

    fn ret(&mut self) -> Result<ReturnAddress, StackError> {
        self.metrics.returns += 1;
        // Every return pays the "stack or heap?" check — the small extra
        // return cost the paper attributes to this model (§6).
        match &self.mode {
            Mode::Stack { deep } => {
                let ra = self.buf[self.fp]
                    .as_return_address()
                    .expect("frame base must hold a return address");
                match ra {
                    ReturnAddress::Code(r) => {
                        if self.fp == 0 {
                            // Returning off the stack into the heap chain.
                            let h =
                                deep.clone().expect("stack base with code ra implies a heap chain");
                            self.mode = Mode::Heap(h);
                            self.make_private_heap();
                        } else {
                            self.fp -= self.code.displacement(r);
                        }
                        Ok(ra)
                    }
                    ReturnAddress::Exit => Ok(ra),
                    ReturnAddress::Underflow => {
                        unreachable!("the hybrid model has no underflow handler")
                    }
                }
            }
            Mode::Heap(h) => {
                let ra =
                    h.get(0).as_return_address().expect("frame slot 0 must hold a return address");
                match ra {
                    ReturnAddress::Code(_) => {
                        let link = h.link.clone().expect("a code return address implies a caller");
                        self.mode = Mode::Heap(link);
                        self.make_private_heap();
                        Ok(ra)
                    }
                    ReturnAddress::Exit => Ok(ra),
                    ReturnAddress::Underflow => {
                        unreachable!("the hybrid model has no underflow handler")
                    }
                }
            }
        }
    }

    fn capture(&mut self) -> Continuation<S> {
        self.metrics.captures += 1;
        match &self.mode {
            Mode::Heap(h) => {
                let ra =
                    h.get(0).as_return_address().expect("frame slot 0 must hold a return address");
                match ra {
                    ReturnAddress::Code(ra) => {
                        let frame = h.link.clone().expect("a code return address implies a caller");
                        self.metrics.stack_records_allocated += 1;
                        Continuation::from_repr(Rc::new(HybridKont { frame, ra }))
                    }
                    _ => Continuation::exit(),
                }
            }
            Mode::Stack { deep } => {
                let ra = self.buf[self.fp]
                    .as_return_address()
                    .expect("frame base must hold a return address");
                let ReturnAddress::Code(live_ra) = ra else {
                    // Live frame at the stack base: the continuation is the
                    // existing heap chain (or exit) — O(1), no migration.
                    return Continuation::exit();
                };
                if self.fp == 0 {
                    let frame = deep.clone().expect("stack base with code ra implies a heap chain");
                    self.metrics.stack_records_allocated += 1;
                    return Continuation::from_repr(Rc::new(HybridKont { frame, ra: live_ra }));
                }
                // Migrate the frames below the live frame into the heap;
                // they are never copied back.
                let head = self.migrate_below(live_ra);
                match &mut self.mode {
                    Mode::Stack { deep } => *deep = Some(head.clone()),
                    Mode::Heap(_) => unreachable!(),
                }
                self.slide_live_frame(self.cfg.frame_bound());
                self.metrics.stack_records_allocated += 1;
                Continuation::from_repr(Rc::new(HybridKont { frame: head, ra: live_ra }))
            }
        }
    }

    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        // `call/1cc`: take the inner continuation out of a one-shot
        // wrapper; a spent wrapper errors before any state changes.
        let taken;
        let k = match k.unwrap_one_shot() {
            None => k,
            Some(Err(e)) => return Err(e),
            Some(Ok(inner)) => {
                taken = inner;
                &taken
            }
        };
        self.metrics.reinstatements += 1;
        if k.is_exit() {
            self.fp = 0;
            self.buf[0] = S::from_return_address(ReturnAddress::Exit);
            self.mode = Mode::Stack { deep: None };
            return Ok(ReturnAddress::Exit);
        }
        let kont = k
            .repr()
            .as_any()
            .downcast_ref::<HybridKont<S>>()
            .ok_or(StackError::ForeignContinuation { strategy: "hybrid" })?;
        // Execution resumes *in* the heap frame; nothing is copied back to
        // the *stack*, though a shared frame is cloned within the heap so
        // the continuation can be re-entered again.
        self.mode = Mode::Heap(kont.frame.clone());
        self.make_private_heap();
        Ok(ReturnAddress::Code(kont.ra))
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn stats(&self) -> StackStats {
        let (chain_records, chain_slots) = match &self.mode {
            Mode::Stack { deep: Some(h) } => (h.chain_len(), h.chain_slots()),
            Mode::Stack { deep: None } => (0, 0),
            Mode::Heap(h) => match &h.link {
                Some(l) => (l.chain_len(), l.chain_slots()),
                None => (0, 0),
            },
        };
        let (used, free) = match &self.mode {
            Mode::Stack { .. } => (self.fp, self.esp().saturating_sub(self.fp)),
            Mode::Heap(_) => (0, self.esp()),
        };
        StackStats {
            chain_records,
            chain_slots,
            current_used_slots: used,
            current_free_slots: free,
        }
    }

    fn reset(&mut self) {
        self.fp = 0;
        self.buf[0] = S::from_return_address(ReturnAddress::Exit);
        self.mode = Mode::Stack { deep: None };
    }

    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let mut out = Vec::new();
        let mut heap_part: Option<Rc<HeapFrame<S>>> = None;
        match &self.mode {
            Mode::Stack { deep } => {
                let mut pos = self.fp;
                while let Some(ReturnAddress::Code(r)) = self.buf[pos].as_return_address() {
                    out.push(r);
                    if out.len() >= limit {
                        return out;
                    }
                    if pos == 0 {
                        heap_part = deep.clone();
                        break;
                    }
                    pos -= self.code.displacement(r);
                }
            }
            Mode::Heap(h) => heap_part = Some(h.clone()),
        }
        let mut f = heap_part;
        while let Some(frame) = f {
            if out.len() >= limit {
                break;
            }
            match frame.get(0).as_return_address() {
                Some(ReturnAddress::Code(r)) => out.push(r),
                _ => break,
            }
            f = frame.link.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::{sim, TestCode, TestSlot};

    fn setup(stack_slots: usize) -> (Rc<TestCode>, HybridStack<TestSlot>) {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder().segment_slots(stack_slots).frame_bound(16).build().unwrap();
        let stack = HybridStack::new(cfg, code.clone() as Rc<dyn FrameSizeTable>);
        (code, stack)
    }

    #[test]
    fn call_return_round_trip_on_stack() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 5, 4);
        assert!(!stack.in_heap());
        assert_eq!(stack.get(1), TestSlot::Int(4));
        assert_eq!(sim::unwind_all(&mut stack), 6);
        assert_eq!(stack.metrics().heap_frames_allocated, 0, "no captures, no heap frames");
    }

    #[test]
    fn capture_migrates_frames_once() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 10, 4);
        let k1 = stack.capture();
        assert_eq!(stack.metrics().heap_frames_allocated, 10, "9 caller frames + initial");
        assert_eq!(k1.chain_len(), 10, "chain head is the live frame's caller");
        // A second capture from the same point is O(1): frames are already
        // in the heap (fp == 0 now).
        let allocated = stack.metrics().heap_frames_allocated;
        let k2 = stack.capture();
        assert_eq!(stack.metrics().heap_frames_allocated, allocated);
        assert_eq!(k2.retained_slots(), k1.retained_slots());
    }

    #[test]
    fn returns_into_heap_frames_work() {
        let (code, mut stack) = setup(512);
        let ras = sim::push_frames(&mut stack, &code, 5, 4);
        let _k = stack.capture();
        // Unwind through the migrated heap frames.
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[4]));
        assert!(stack.in_heap(), "returned into a migrated frame");
        assert_eq!(stack.get(1), TestSlot::Int(3));
        assert_eq!(sim::unwind_all(&mut stack), 5);
    }

    #[test]
    fn calls_from_heap_frames_push_on_the_stack() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 3, 4);
        let _k = stack.capture();
        stack.ret().unwrap(); // now in a heap frame
        assert!(stack.in_heap());
        let ra = code.ret_point(4);
        stack.set(5, TestSlot::Int(99));
        stack.call(4, ra, 1, true).unwrap();
        assert!(!stack.in_heap(), "callee frame is on the stack");
        assert_eq!(stack.get(1), TestSlot::Int(99));
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ra));
        assert!(stack.in_heap(), "returned back into the heap frame");
    }

    #[test]
    fn reinstate_never_copies_frames_back() {
        let (code, mut stack) = setup(512);
        let ras = sim::push_frames(&mut stack, &code, 10, 4);
        let k = stack.capture();
        sim::unwind_all(&mut stack);
        let copied = stack.metrics().slots_copied;
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[9]));
        // At most the one re-entered frame is cloned (within the heap);
        // nothing is copied back to the stack.
        assert!(
            stack.metrics().slots_copied - copied <= 8,
            "reinstate cost is one frame, not O(depth)"
        );
        assert!(stack.in_heap());
        assert_eq!(sim::unwind_all(&mut stack), 10);
    }

    #[test]
    fn single_copy_property_holds_across_repeated_capture() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 20, 4);
        let k1 = stack.capture();
        let k2 = stack.capture();
        let k3 = stack.capture();
        // All three continuations share the same migrated frames: "there is
        // never more than one copy of a given frame".
        assert_eq!(stack.metrics().heap_frames_allocated, 20);
        assert_eq!(k1.retained_slots(), k2.retained_slots());
        assert_eq!(k2.retained_slots(), k3.retained_slots());
    }

    #[test]
    fn overflow_migrates_and_continues() {
        let (code, mut stack) = setup(128);
        sim::push_frames(&mut stack, &code, 100, 8);
        assert!(stack.metrics().overflows > 0);
        assert!(stack.metrics().heap_frames_allocated > 50);
        assert_eq!(sim::unwind_all(&mut stack), 101);
    }

    #[test]
    fn looper_rule_holds() {
        let (code, mut stack) = setup(512);
        let max_chain = sim::looper_workload(&mut stack, &code, 500, 4);
        assert!(max_chain <= 1, "looper must not grow the chain (got {max_chain})");
    }

    #[test]
    fn capture_at_toplevel_is_exit() {
        let (_code, mut stack) = setup(512);
        assert!(stack.capture().is_exit());
    }

    #[test]
    fn foreign_continuation_is_rejected() {
        let (code, mut stack) = setup(512);
        let mut heap = crate::heap::HeapStack::<TestSlot>::new(Config::default());
        let k = sim::capture_at_depth(&mut heap, &code, 3, 4);
        assert_eq!(
            stack.reinstate(&k).unwrap_err(),
            StackError::ForeignContinuation { strategy: "hybrid" }
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 5, 4);
        let _k = stack.capture();
        stack.reset();
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }
}
