//! # segstack-baselines
//!
//! The baseline control-stack strategies that *Representing Control in the
//! Presence of First-Class Continuations* (Hieb, Dybvig & Bruggeman, PLDI
//! 1990) compares its segmented stack against:
//!
//! | Strategy | Paper source | Character |
//! |---|---|---|
//! | [`HeapStack`] | Figure 1, §2 | every frame heap-allocated and linked; O(1) capture/reinstate; every call (even tail calls) allocates |
//! | [`CopyStack`] | Figure 2, §2 (McDermott 1980) | one contiguous stack; capture/reinstate copy the whole stack image |
//! | [`CacheStack`] | §2 (Bartley & Jensen 1986) | bounded stack cache; flush/refill on overflow/underflow — exhibits "bouncing" |
//! | [`HybridStack`] | §6 (Clinger, Hartheimer & Ost 1988) | frames migrate to the heap on capture and are never copied back; returns check stack-vs-heap |
//! | [`IncrementalStack`] | Clinger et al.'s fourth strategy | frames migrate to the heap on capture; returns copy one frame back at a time |
//!
//! All implement [`segstack_core::ControlStack`], so they are drop-in
//! replacements for [`segstack_core::SegmentedStack`] under the same VM —
//! which is how every experiment in this workspace compares them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod copy;
mod frames;
mod heap;
mod hybrid;
mod incremental;

use std::rc::Rc;

pub use cache::CacheStack;
pub use copy::CopyStack;
pub use heap::HeapStack;
pub use hybrid::HybridStack;
pub use incremental::IncrementalStack;

use segstack_core::{Config, ControlStack, FrameSizeTable, SegmentedStack, StackError, StackSlot};

/// Identifies one of the six control-stack strategies.
///
/// # Examples
///
/// ```
/// use segstack_baselines::Strategy;
/// let s: Strategy = "segmented".parse()?;
/// assert_eq!(s, Strategy::Segmented);
/// assert_eq!(s.to_string(), "segmented");
/// # Ok::<(), segstack_baselines::ParseStrategyError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// The paper's segmented stack ([`SegmentedStack`]).
    Segmented,
    /// The heap model ([`HeapStack`]).
    Heap,
    /// The naive stack-copy model ([`CopyStack`]).
    Copy,
    /// The bounded stack-cache model ([`CacheStack`]).
    Cache,
    /// The hybrid stack/heap model ([`HybridStack`]).
    Hybrid,
    /// The incremental stack/heap model ([`IncrementalStack`]).
    Incremental,
}

impl Strategy {
    /// All strategies, in the order the experiments report them.
    pub const ALL: [Strategy; 6] = [
        Strategy::Segmented,
        Strategy::Heap,
        Strategy::Copy,
        Strategy::Cache,
        Strategy::Hybrid,
        Strategy::Incremental,
    ];

    /// The strategy's canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Segmented => "segmented",
            Strategy::Heap => "heap",
            Strategy::Copy => "copy",
            Strategy::Cache => "cache",
            Strategy::Hybrid => "hybrid",
            Strategy::Incremental => "incremental",
        }
    }

    /// Builds a boxed control stack of this strategy.
    ///
    /// # Errors
    ///
    /// Returns [`StackError::OutOfStackMemory`] if the segmented strategy
    /// cannot allocate its initial segment under a configured budget.
    pub fn build<S: StackSlot>(
        self,
        cfg: Config,
        code: Rc<dyn FrameSizeTable>,
    ) -> Result<Box<dyn ControlStack<S>>, StackError> {
        Ok(match self {
            Strategy::Segmented => Box::new(SegmentedStack::<S>::new(cfg, code)?),
            Strategy::Heap => Box::new(HeapStack::new(cfg)),
            Strategy::Copy => Box::new(CopyStack::new(cfg, code)),
            Strategy::Cache => Box::new(CacheStack::new(cfg, code)),
            Strategy::Hybrid => Box::new(HybridStack::new(cfg, code)),
            Strategy::Incremental => Box::new(IncrementalStack::new(cfg, code)),
        })
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`Strategy`] from a string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseStrategyError {
    input: String,
}

impl std::fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown strategy {:?}; expected one of segmented, heap, copy, cache, hybrid, incremental",
            self.input
        )
    }
}

impl std::error::Error for ParseStrategyError {}

impl std::str::FromStr for Strategy {
    type Err = ParseStrategyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "segmented" => Ok(Strategy::Segmented),
            "heap" => Ok(Strategy::Heap),
            "copy" => Ok(Strategy::Copy),
            "cache" => Ok(Strategy::Cache),
            "hybrid" => Ok(Strategy::Hybrid),
            "incremental" => Ok(Strategy::Incremental),
            _ => Err(ParseStrategyError { input: s.to_owned() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::{sim, ReturnAddress, StackError, TestCode, TestSlot};

    #[test]
    fn parse_and_display_round_trip() {
        for s in Strategy::ALL {
            assert_eq!(s.name().parse::<Strategy>().unwrap(), s);
            assert_eq!(s.to_string(), s.name());
        }
        assert!("bogus".parse::<Strategy>().is_err());
    }

    #[test]
    fn factory_builds_working_stacks() {
        for s in Strategy::ALL {
            let code = Rc::new(TestCode::new());
            let cfg = Config::builder().segment_slots(512).frame_bound(16).build().unwrap();
            let mut stack: Box<dyn ControlStack<TestSlot>> = s.build(cfg, code.clone()).unwrap();
            assert_eq!(stack.name(), s.name());
            sim::push_frames(&mut *stack, &code, 10, 4);
            assert_eq!(sim::unwind_all(&mut *stack), 11, "{s}");
        }
    }

    /// The cross-strategy behavioral contract: identical call/return/
    /// capture/reinstate observable behavior on the same synthetic program.
    #[test]
    fn strategies_agree_on_capture_reinstate_observables() {
        for s in Strategy::ALL {
            let code = Rc::new(TestCode::new());
            let cfg = Config::builder()
                .segment_slots(512)
                .frame_bound(16)
                .copy_bound(32)
                .build()
                .unwrap();
            let mut stack: Box<dyn ControlStack<TestSlot>> = s.build(cfg, code.clone()).unwrap();
            let ras = sim::push_frames(&mut *stack, &code, 8, 4);
            let k = stack.capture();
            // Unwind to the top, reinstate, observe identical resumption.
            assert_eq!(sim::unwind_all(&mut *stack), 9, "{s}");
            assert_eq!(
                stack.reinstate(&k).unwrap(),
                ReturnAddress::Code(ras[7]),
                "{s}: resumption address"
            );
            assert_eq!(stack.get(1), TestSlot::Int(6), "{s}: caller frame argument");
            assert_eq!(sim::unwind_all(&mut *stack), 8, "{s}: remaining unwind");
        }
    }

    /// The `call/1cc` contract on every strategy: a one-shot continuation
    /// resumes exactly like its multi-shot counterpart the first time, and
    /// every later reinstatement fails with `OneShotReused` without
    /// touching machine state.
    #[test]
    fn one_shot_contract_holds_on_all_strategies() {
        for s in Strategy::ALL {
            let code = Rc::new(TestCode::new());
            let cfg = Config::builder()
                .segment_slots(512)
                .frame_bound(16)
                .copy_bound(32)
                .build()
                .unwrap();
            let mut stack: Box<dyn ControlStack<TestSlot>> = s.build(cfg, code.clone()).unwrap();
            let ras = sim::push_frames(&mut *stack, &code, 8, 4);
            let k = stack.capture_one_shot();
            assert!(k.is_one_shot(), "{s}");
            assert_eq!(k.strategy(), s.name(), "{s}: wrapper reports the creator");
            assert_eq!(sim::unwind_all(&mut *stack), 9, "{s}");
            assert_eq!(
                stack.reinstate(&k).unwrap(),
                ReturnAddress::Code(ras[7]),
                "{s}: first shot resumes normally"
            );
            assert_eq!(stack.get(1), TestSlot::Int(6), "{s}: caller frame argument");
            assert_eq!(sim::unwind_all(&mut *stack), 8, "{s}: remaining unwind");
            // The shot is spent: reuse is an error and leaves the (now
            // quiescent) machine reusable.
            assert_eq!(stack.reinstate(&k).unwrap_err(), StackError::OneShotReused, "{s}");
            assert!(k.one_shot_consumed(), "{s}");
            sim::push_frames(&mut *stack, &code, 3, 4);
            assert_eq!(sim::unwind_all(&mut *stack), 4, "{s}: machine still works");
        }
    }

    #[test]
    fn looper_is_constant_space_on_all_strategies() {
        for s in Strategy::ALL {
            let code = Rc::new(TestCode::new());
            let cfg = Config::builder().segment_slots(512).frame_bound(16).build().unwrap();
            let mut stack: Box<dyn ControlStack<TestSlot>> = s.build(cfg, code.clone()).unwrap();
            let max_chain = sim::looper_workload(&mut *stack, &code, 300, 4);
            assert!(max_chain <= 1, "{s}: looper grew the chain to {max_chain}");
        }
    }
}
