//! Heap-allocated activation records, shared by the heap and hybrid models.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use segstack_core::StackSlot;

/// A heap-allocated activation record (paper Figure 1).
///
/// Slot 0 holds the frame's return address, exactly as for stack frames;
/// the explicit `link` field is the dynamic link the paper's segmented
/// model avoids ("the frame pointer must be saved and restored on each
/// call, resulting in an extra memory write and read for each recursive
/// call", §2).
pub struct HeapFrame<S: StackSlot> {
    /// The caller's frame, or `None` for the initial frame.
    pub link: Option<Rc<HeapFrame<S>>>,
    /// Frame slots; index 0 is the return-address word.
    pub slots: RefCell<Vec<S>>,
}

impl<S: StackSlot> HeapFrame<S> {
    /// Allocates a frame with the given link and initial slots.
    pub fn new(link: Option<Rc<HeapFrame<S>>>, slots: Vec<S>) -> Rc<Self> {
        Rc::new(HeapFrame { link, slots: RefCell::new(slots) })
    }

    /// Reads slot `i`, yielding the empty slot for indices never written.
    pub fn get(&self, i: usize) -> S {
        self.slots.borrow().get(i).cloned().unwrap_or_else(S::empty)
    }

    /// Writes slot `i`, growing the frame as needed.
    pub fn set(&self, i: usize, v: S) {
        let mut slots = self.slots.borrow_mut();
        if i >= slots.len() {
            slots.resize_with(i + 1, S::empty);
        }
        slots[i] = v;
    }

    /// Number of frames in the chain starting here.
    pub fn chain_len(self: &Rc<Self>) -> usize {
        let mut n = 0;
        let mut cur = Some(self.clone());
        while let Some(f) = cur {
            n += 1;
            cur = f.link.clone();
        }
        n
    }

    /// Total slots held by the chain starting here.
    pub fn chain_slots(self: &Rc<Self>) -> usize {
        let mut n = 0;
        let mut cur = Some(self.clone());
        while let Some(f) = cur {
            n += f.slots.borrow().len();
            cur = f.link.clone();
        }
        n
    }
}

impl<S: StackSlot> Drop for HeapFrame<S> {
    fn drop(&mut self) {
        // Dynamic-link chains are as long as the recursion was deep, and
        // frame slots may hold continuation values whose saved frames hold
        // further continuations; free both iteratively. Shared links are a
        // plain refcount decrement.
        if let Some(link) = self.link.take() {
            if Rc::strong_count(&link) == 1 {
                segstack_core::defer_drop(link);
            }
        }
        let slots = std::mem::take(&mut *self.slots.borrow_mut());
        if !slots.is_empty() {
            segstack_core::defer_drop(slots);
        }
    }
}

impl<S: StackSlot> fmt::Debug for HeapFrame<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeapFrame")
            .field("slots", &self.slots.borrow().len())
            .field("linked", &self.link.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::TestSlot;

    #[test]
    fn get_and_set_grow_on_demand() {
        let f = HeapFrame::<TestSlot>::new(None, Vec::new());
        assert_eq!(f.get(3), TestSlot::Empty);
        f.set(3, TestSlot::Int(7));
        assert_eq!(f.get(3), TestSlot::Int(7));
        assert_eq!(f.get(0), TestSlot::Empty);
        assert_eq!(f.slots.borrow().len(), 4);
    }

    #[test]
    fn chain_measurements() {
        let a = HeapFrame::<TestSlot>::new(None, vec![TestSlot::Empty; 2]);
        let b = HeapFrame::new(Some(a.clone()), vec![TestSlot::Empty; 3]);
        let c = HeapFrame::new(Some(b.clone()), vec![TestSlot::Empty; 5]);
        assert_eq!(c.chain_len(), 3);
        assert_eq!(c.chain_slots(), 10);
        assert_eq!(a.chain_len(), 1);
    }
}
