//! The naive stack-copy model (paper Figure 2, §2; McDermott 1980).
//!
//! Ordinary stack management until a continuation operation happens: capture
//! copies the *entire* occupied stack into the heap, reinstatement copies the
//! entire image back. "Unless continuation operations are relatively rare or
//! the size of the stack is usually quite small, the cost of copying stack
//! images makes continuation operations inordinately expensive" — and
//! repeated captures of the same deep stack duplicate it wholesale (Danvy's
//! observation, §6). Experiments E2/E5/E11 quantify exactly this.

use std::any::Any;
use std::rc::Rc;

use segstack_core::{
    CodeAddr, Config, Continuation, ControlStack, FrameSizeTable, KontRepr, Metrics, ReturnAddress,
    StackError, StackSlot, StackStats,
};

/// Continuation representation of the copy model: a full copy of the stack
/// below the capture point.
#[derive(Debug)]
struct CopyKont<S: StackSlot> {
    image: Vec<S>,
    ra: CodeAddr,
}

impl<S: StackSlot> Drop for CopyKont<S> {
    fn drop(&mut self) {
        // The image may hold further continuation values (chains of saved
        // stacks); free it iteratively.
        segstack_core::defer_drop(std::mem::take(&mut self.image));
    }
}

impl<S: StackSlot> KontRepr<S> for CopyKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        self.image.len()
    }

    fn chain_len(&self) -> usize {
        1
    }

    fn strategy(&self) -> &'static str {
        "copy"
    }
}

/// Control-stack strategy using one contiguous stack with whole-stack
/// copying for continuation operations (Figure 2).
///
/// The stack grows by doubling when exhausted (counted in the metrics); the
/// naive model has no segmentation to recover with.
///
/// # Examples
///
/// ```
/// use segstack_baselines::CopyStack;
/// use segstack_core::{Config, ControlStack, TestCode, TestSlot};
/// use std::rc::Rc;
///
/// let code = Rc::new(TestCode::new());
/// let mut stack = CopyStack::<TestSlot>::new(Config::default(), code.clone());
/// let ra = code.ret_point(4);
/// stack.call(4, ra, 0, true)?;
/// let before = stack.metrics().slots_copied;
/// let _k = stack.capture();
/// assert!(stack.metrics().slots_copied > before, "capture copies the stack");
/// # Ok::<(), segstack_core::StackError>(())
/// ```
pub struct CopyStack<S: StackSlot> {
    code: Rc<dyn FrameSizeTable>,
    cfg: Config,
    buf: Vec<S>,
    fp: usize,
    metrics: Metrics,
}

impl<S: StackSlot> std::fmt::Debug for CopyStack<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CopyStack")
            .field("fp", &self.fp)
            .field("capacity", &self.buf.len())
            .finish()
    }
}

impl<S: StackSlot> CopyStack<S> {
    /// Creates a copy-model stack with an initial buffer of
    /// `cfg.segment_slots()` slots.
    pub fn new(cfg: Config, code: Rc<dyn FrameSizeTable>) -> Self {
        let mut buf: Vec<S> = std::iter::repeat_with(S::empty).take(cfg.segment_slots()).collect();
        buf[0] = S::from_return_address(ReturnAddress::Exit);
        CopyStack { code, cfg, buf, fp: 0, metrics: Metrics::new() }
    }

    /// The frame pointer (absolute index of the current frame base).
    pub fn fp(&self) -> usize {
        self.fp
    }

    /// Current stack capacity in slots.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Grows the stack so that `need` slots are addressable, doubling to
    /// amortize. The whole occupied portion is copied (and counted).
    fn ensure(&mut self, need: usize) {
        if need <= self.buf.len() {
            return;
        }
        let new_len = need.max(self.buf.len() * 2);
        self.metrics.slots_copied += self.fp as u64; // realloc moves the live stack
        self.buf.resize_with(new_len, S::empty);
    }
}

impl<S: StackSlot> ControlStack<S> for CopyStack<S> {
    fn name(&self) -> &'static str {
        "copy"
    }

    fn get(&self, i: usize) -> S {
        self.buf.get(self.fp + i).cloned().unwrap_or_else(S::empty)
    }

    fn set(&mut self, i: usize, v: S) {
        self.ensure(self.fp + i + 1);
        self.buf[self.fp + i] = v;
    }

    fn call(
        &mut self,
        d: usize,
        ra: CodeAddr,
        nargs: usize,
        check: bool,
    ) -> Result<(), StackError> {
        debug_assert!(d >= 1);
        let _ = nargs;
        self.metrics.calls += 1;
        if check {
            self.metrics.checks_executed += 1;
        } else {
            self.metrics.checks_elided += 1;
        }
        let new_fp = self.fp + d;
        self.ensure(new_fp + self.cfg.esp_reserve());
        self.buf[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
        self.fp = new_fp;
        Ok(())
    }

    fn tail_call(&mut self, src: usize, nargs: usize) {
        debug_assert!(src >= 1);
        self.metrics.tail_calls += 1;
        self.ensure(self.fp + src + nargs);
        for j in 0..nargs {
            self.buf[self.fp + 1 + j] = self.buf[self.fp + src + j].clone();
        }
    }

    fn ret(&mut self) -> Result<ReturnAddress, StackError> {
        self.metrics.returns += 1;
        let ra =
            self.buf[self.fp].as_return_address().expect("frame base must hold a return address");
        match ra {
            ReturnAddress::Code(r) => {
                self.fp -= self.code.displacement(r);
                Ok(ra)
            }
            ReturnAddress::Exit => Ok(ra),
            ReturnAddress::Underflow => {
                unreachable!("the copy model keeps the whole stack resident")
            }
        }
    }

    fn capture(&mut self) -> Continuation<S> {
        self.metrics.captures += 1;
        if self.fp == 0 {
            return Continuation::exit();
        }
        let ra = self.buf[self.fp]
            .as_return_address()
            .expect("frame base must hold a return address")
            .code()
            .expect("a live frame above the stack base has a code return address");
        // "When a continuation is captured, the stack is copied into the
        // heap" — all of it, every time.
        let image: Vec<S> = self.buf[..self.fp].to_vec();
        self.metrics.slots_copied += image.len() as u64;
        self.metrics.heap_slots_allocated += image.len() as u64;
        self.metrics.stack_records_allocated += 1;
        Continuation::from_repr(Rc::new(CopyKont { image, ra }))
    }

    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        // `call/1cc`: take the inner continuation out of a one-shot
        // wrapper; a spent wrapper errors before any state changes.
        let taken;
        let k = match k.unwrap_one_shot() {
            None => k,
            Some(Err(e)) => return Err(e),
            Some(Ok(inner)) => {
                taken = inner;
                &taken
            }
        };
        self.metrics.reinstatements += 1;
        if k.is_exit() {
            self.fp = 0;
            self.buf[0] = S::from_return_address(ReturnAddress::Exit);
            return Ok(ReturnAddress::Exit);
        }
        let kont = k
            .repr()
            .as_any()
            .downcast_ref::<CopyKont<S>>()
            .ok_or(StackError::ForeignContinuation { strategy: "copy" })?;
        // "When a continuation is invoked, the stack image in the heap is
        // copied into the stack area."
        self.ensure(kont.image.len() + self.cfg.esp_reserve());
        for (i, s) in kont.image.iter().enumerate() {
            self.buf[i] = s.clone();
        }
        self.metrics.slots_copied += kont.image.len() as u64;
        self.fp = kont.image.len() - self.code.displacement(kont.ra);
        Ok(ReturnAddress::Code(kont.ra))
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn stats(&self) -> StackStats {
        StackStats {
            chain_records: 0, // continuations are flat images, never chained
            chain_slots: 0,
            current_used_slots: self.fp,
            current_free_slots: self.buf.len().saturating_sub(self.fp + self.cfg.esp_reserve()),
        }
    }

    fn reset(&mut self) {
        self.fp = 0;
        self.buf[0] = S::from_return_address(ReturnAddress::Exit);
    }

    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let mut out = Vec::new();
        let mut pos = self.fp;
        while let Some(ReturnAddress::Code(r)) = self.buf[pos].as_return_address() {
            out.push(r);
            if out.len() >= limit {
                break;
            }
            pos -= self.code.displacement(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::{sim, TestCode, TestSlot};

    fn setup() -> (Rc<TestCode>, CopyStack<TestSlot>) {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder().segment_slots(256).frame_bound(16).build().unwrap();
        let stack = CopyStack::new(cfg, code.clone() as Rc<dyn FrameSizeTable>);
        (code, stack)
    }

    #[test]
    fn call_return_round_trip() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 5, 4);
        assert_eq!(stack.get(1), TestSlot::Int(4));
        assert_eq!(sim::unwind_all(&mut stack), 6);
    }

    #[test]
    fn capture_cost_is_proportional_to_depth() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 50, 4);
        let before = stack.metrics().slots_copied;
        let k = stack.capture();
        assert_eq!(stack.metrics().slots_copied - before, 200);
        assert_eq!(k.retained_slots(), 200);
    }

    #[test]
    fn repeated_capture_duplicates_the_stack() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 50, 4);
        let konts: Vec<_> = (0..4).map(|_| stack.capture()).collect();
        let total: usize = konts.iter().map(|k| k.retained_slots()).sum();
        assert_eq!(total, 800, "four captures retain four full copies (Danvy's concern)");
    }

    #[test]
    fn reinstate_restores_and_resumes() {
        let (code, mut stack) = setup();
        let ras = sim::push_frames(&mut stack, &code, 5, 4);
        let k = stack.capture();
        sim::unwind_all(&mut stack);
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[4]));
        assert_eq!(stack.get(1), TestSlot::Int(3), "resumed on the caller frame");
        assert_eq!(sim::unwind_all(&mut stack), 5);
    }

    #[test]
    fn multiple_reinstatements_are_stable() {
        let (code, mut stack) = setup();
        let ras = sim::push_frames(&mut stack, &code, 5, 4);
        let k = stack.capture();
        for _ in 0..3 {
            assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[4]));
            assert_eq!(sim::unwind_all(&mut stack), 5);
        }
    }

    #[test]
    fn deep_recursion_grows_the_buffer() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 500, 8);
        assert!(stack.capacity() >= 4000 + 32);
        assert_eq!(sim::unwind_all(&mut stack), 501);
    }

    #[test]
    fn capture_at_toplevel_is_exit() {
        let (_code, mut stack) = setup();
        assert!(stack.capture().is_exit());
    }

    #[test]
    fn looper_rule_holds() {
        let (code, mut stack) = setup();
        // The copy model has no chain; the important property is that the
        // captured image stays one frame deep, not that copying is avoided.
        let max_chain = sim::looper_workload(&mut stack, &code, 100, 4);
        assert_eq!(max_chain, 0);
        assert_eq!(stack.metrics().captures, 100);
    }

    #[test]
    fn foreign_continuation_is_rejected() {
        let (code, mut stack) = setup();
        let mut heap = crate::heap::HeapStack::<TestSlot>::new(Config::default());
        let k = sim::capture_at_depth(&mut heap, &code, 3, 4);
        assert_eq!(
            stack.reinstate(&k).unwrap_err(),
            StackError::ForeignContinuation { strategy: "copy" }
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let (code, mut stack) = setup();
        sim::push_frames(&mut stack, &code, 5, 4);
        stack.reset();
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }
}
