//! The stack-cache model (Bartley & Jensen, PC Scheme; paper §2).
//!
//! Frames are "optimistically" allocated in a stack cache of limited size.
//! Overflowing the cache flushes all but the top frame to the heap — an
//! implicit continuation capture *with copying* — and underflow copies the
//! most recent flushed block back. This bounds continuation-operation cost
//! by the cache size, but "there is a direct relationship between the bound
//! on the cost of continuation operations and the bound on the depth of
//! recursion without stack overflows": a small cache makes deep recursion
//! pay flush/refill costs constantly, and a loop straddling the cache
//! boundary exhibits the worst-case "bouncing" the paper describes.
//! Experiment E9 reproduces that phenomenon.

use std::any::Any;
use std::rc::Rc;

use segstack_core::{
    CodeAddr, Config, Continuation, ControlStack, FrameSizeTable, KontRepr, Metrics, ReturnAddress,
    StackError, StackSlot, StackStats,
};

/// A flushed block of frames: a copied stack image plus the usual record
/// fields (return address of the topmost frame, link to the next block).
#[derive(Debug)]
struct CacheKont<S: StackSlot> {
    image: Vec<S>,
    ra: CodeAddr,
    link: Option<Continuation<S>>,
}

impl<S: StackSlot> Drop for CacheKont<S> {
    fn drop(&mut self) {
        // Both the block chain and the saved images can hold long chains
        // of continuations; free them iteratively.
        segstack_core::defer_drop(std::mem::take(&mut self.image));
        if let Some(link) = self.link.take() {
            segstack_core::defer_drop(link);
        }
    }
}

impl<S: StackSlot> KontRepr<S> for CacheKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        // Iterative: a deep recursion flushes one block per overflow, so
        // chains reach hundreds of thousands of links — recursing here
        // would overflow the native stack.
        let mut total = self.image.len();
        let mut link = self.link.clone();
        while let Some(k) = link {
            match k.repr().as_any().downcast_ref::<CacheKont<S>>() {
                Some(b) => {
                    total += b.image.len();
                    link = b.link.clone();
                }
                None => {
                    total += k.retained_slots();
                    break;
                }
            }
        }
        total
    }

    fn chain_len(&self) -> usize {
        let mut n = 1;
        let mut link = self.link.clone();
        while let Some(k) = link {
            match k.repr().as_any().downcast_ref::<CacheKont<S>>() {
                Some(b) => {
                    n += 1;
                    link = b.link.clone();
                }
                None => {
                    n += k.chain_len();
                    break;
                }
            }
        }
        n
    }

    fn strategy(&self) -> &'static str {
        "cache"
    }
}

/// Control-stack strategy using a bounded stack cache with flush-to-heap on
/// overflow and capture, and refill-from-heap on underflow.
///
/// `cfg.segment_slots()` is the cache size; keep it small to see the model's
/// characteristic behavior (that is the model's own requirement — the cache
/// size *is* the continuation-cost bound).
///
/// # Examples
///
/// ```
/// use segstack_baselines::CacheStack;
/// use segstack_core::{Config, ControlStack, TestCode, TestSlot, sim};
/// use std::rc::Rc;
///
/// let code = Rc::new(TestCode::new());
/// let cfg = Config::builder().segment_slots(256).frame_bound(16).build()?;
/// let mut stack = CacheStack::<TestSlot>::new(cfg, code.clone());
/// sim::push_frames(&mut stack, &code, 100, 8); // deep recursion…
/// assert!(stack.metrics().overflows > 0);      // …bounces through the cache
/// # Ok::<(), segstack_core::StackError>(())
/// ```
pub struct CacheStack<S: StackSlot> {
    code: Rc<dyn FrameSizeTable>,
    cfg: Config,
    buf: Vec<S>,
    fp: usize,
    link: Option<Continuation<S>>,
    metrics: Metrics,
}

impl<S: StackSlot> std::fmt::Debug for CacheStack<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheStack")
            .field("fp", &self.fp)
            .field("cache", &self.buf.len())
            .field("linked", &self.link.is_some())
            .finish()
    }
}

impl<S: StackSlot> CacheStack<S> {
    /// Creates a cache-model stack with a cache of `cfg.segment_slots()`
    /// slots.
    pub fn new(cfg: Config, code: Rc<dyn FrameSizeTable>) -> Self {
        let mut buf: Vec<S> = std::iter::repeat_with(S::empty).take(cfg.segment_slots()).collect();
        buf[0] = S::from_return_address(ReturnAddress::Exit);
        CacheStack { code, cfg, buf, fp: 0, link: None, metrics: Metrics::new() }
    }

    /// The frame pointer (absolute index within the cache).
    pub fn fp(&self) -> usize {
        self.fp
    }

    fn esp(&self) -> usize {
        self.buf.len() - self.cfg.esp_reserve()
    }

    /// Flushes the occupied cache below `seal_top` into a heap block whose
    /// topmost frame resumes at `ra`, chaining it onto the current link.
    fn flush(&mut self, seal_top: usize, ra: CodeAddr) -> Continuation<S> {
        let image: Vec<S> = self.buf[..seal_top].to_vec();
        self.metrics.slots_copied += image.len() as u64;
        self.metrics.heap_slots_allocated += image.len() as u64;
        self.metrics.stack_records_allocated += 1;
        Continuation::from_repr(Rc::new(CacheKont { image, ra, link: self.link.take() }))
    }
}

impl<S: StackSlot> ControlStack<S> for CacheStack<S> {
    fn name(&self) -> &'static str {
        "cache"
    }

    fn get(&self, i: usize) -> S {
        self.buf[self.fp + i].clone()
    }

    fn set(&mut self, i: usize, v: S) {
        self.buf[self.fp + i] = v;
    }

    fn call(
        &mut self,
        d: usize,
        ra: CodeAddr,
        nargs: usize,
        check: bool,
    ) -> Result<(), StackError> {
        debug_assert!(d >= 1);
        self.metrics.calls += 1;
        let bound = self.cfg.frame_bound();
        if d > bound || 1 + nargs > bound {
            return Err(StackError::FrameTooLarge { requested: d.max(1 + nargs), bound });
        }
        let new_fp = self.fp + d;
        if check {
            self.metrics.checks_executed += 1;
            if new_fp > self.esp() {
                // Cache overflow: flush everything below the callee frame.
                self.metrics.overflows += 1;
                let k = self.flush(new_fp, ra);
                self.buf[0] = S::from_return_address(ReturnAddress::Underflow);
                for j in 0..nargs {
                    self.buf[1 + j] = self.buf[new_fp + 1 + j].clone();
                }
                self.metrics.slots_copied += nargs as u64;
                self.fp = 0;
                self.link = Some(k);
                return Ok(());
            }
        } else {
            self.metrics.checks_elided += 1;
        }
        self.buf[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
        self.fp = new_fp;
        Ok(())
    }

    fn tail_call(&mut self, src: usize, nargs: usize) {
        debug_assert!(src >= 1);
        self.metrics.tail_calls += 1;
        for j in 0..nargs {
            self.buf[self.fp + 1 + j] = self.buf[self.fp + src + j].clone();
        }
    }

    fn ret(&mut self) -> Result<ReturnAddress, StackError> {
        self.metrics.returns += 1;
        let ra =
            self.buf[self.fp].as_return_address().expect("frame base must hold a return address");
        match ra {
            ReturnAddress::Code(r) => {
                self.fp -= self.code.displacement(r);
                Ok(ra)
            }
            ReturnAddress::Underflow => {
                debug_assert_eq!(self.fp, 0);
                self.metrics.underflows += 1;
                let k = self.link.clone().expect("underflow with no linked block");
                self.reinstate(&k)
            }
            ReturnAddress::Exit => Ok(ra),
        }
    }

    fn capture(&mut self) -> Continuation<S> {
        self.metrics.captures += 1;
        if self.fp == 0 {
            return self.link.clone().unwrap_or_else(Continuation::exit);
        }
        let ra = self.buf[self.fp]
            .as_return_address()
            .expect("frame base must hold a return address")
            .code()
            .expect("a live frame above the cache base has a code return address");
        let k = self.flush(self.fp, ra);
        // Slide the live frame down to the cache base. Without a stack
        // pointer its extent is unknown; one frame bound is always enough.
        let width = self.cfg.frame_bound().min(self.buf.len() - self.fp);
        for i in 0..width {
            self.buf[i] = self.buf[self.fp + i].clone();
        }
        self.metrics.slots_copied += width as u64;
        self.buf[0] = S::from_return_address(ReturnAddress::Underflow);
        self.fp = 0;
        self.link = Some(k.clone());
        k
    }

    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        // `call/1cc`: take the inner continuation out of a one-shot
        // wrapper; a spent wrapper errors before any state changes.
        let taken;
        let k = match k.unwrap_one_shot() {
            None => k,
            Some(Err(e)) => return Err(e),
            Some(Ok(inner)) => {
                taken = inner;
                &taken
            }
        };
        self.metrics.reinstatements += 1;
        if k.is_exit() {
            self.fp = 0;
            self.buf[0] = S::from_return_address(ReturnAddress::Exit);
            self.link = None;
            return Ok(ReturnAddress::Exit);
        }
        let kont = k
            .repr()
            .as_any()
            .downcast_ref::<CacheKont<S>>()
            .ok_or(StackError::ForeignContinuation { strategy: "cache" })?;
        // The whole block is copied back: the cache model has no splitting,
        // so every underflow refills (and every overflow flushed) up to a
        // cache-full of slots — the "bouncing" cost.
        for (i, s) in kont.image.iter().enumerate() {
            self.buf[i] = s.clone();
        }
        self.metrics.slots_copied += kont.image.len() as u64;
        self.fp = kont.image.len() - self.code.displacement(kont.ra);
        self.link = kont.link.clone();
        Ok(ReturnAddress::Code(kont.ra))
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn stats(&self) -> StackStats {
        let (chain_records, chain_slots) = match &self.link {
            Some(k) => (k.chain_len(), k.retained_slots()),
            None => (0, 0),
        };
        StackStats {
            chain_records,
            chain_slots,
            current_used_slots: self.fp,
            current_free_slots: self.esp().saturating_sub(self.fp),
        }
    }

    fn reset(&mut self) {
        self.fp = 0;
        self.buf[0] = S::from_return_address(ReturnAddress::Exit);
        self.link = None;
    }

    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let mut out = Vec::new();
        let mut image: Vec<S> = self.buf.clone();
        let mut pos = self.fp;
        let mut link = self.link.clone();
        loop {
            match image[pos].as_return_address() {
                Some(ReturnAddress::Code(r)) => {
                    out.push(r);
                    if out.len() >= limit {
                        return out;
                    }
                    pos -= self.code.displacement(r);
                }
                Some(ReturnAddress::Underflow) => {
                    let Some(k) = link.take() else { return out };
                    let Some(block) = k.repr().as_any().downcast_ref::<CacheKont<S>>() else {
                        return out;
                    };
                    out.push(block.ra);
                    if out.len() >= limit {
                        return out;
                    }
                    pos = block.image.len() - self.code.displacement(block.ra);
                    image = block.image.clone();
                    link = block.link.clone();
                }
                _ => return out,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::{sim, TestCode, TestSlot};

    fn setup(cache: usize) -> (Rc<TestCode>, CacheStack<TestSlot>) {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder().segment_slots(cache).frame_bound(16).build().unwrap();
        let stack = CacheStack::new(cfg, code.clone() as Rc<dyn FrameSizeTable>);
        (code, stack)
    }

    #[test]
    fn call_return_round_trip() {
        let (code, mut stack) = setup(256);
        sim::push_frames(&mut stack, &code, 5, 4);
        assert_eq!(stack.get(1), TestSlot::Int(4));
        assert_eq!(sim::unwind_all(&mut stack), 6);
        assert_eq!(stack.metrics().overflows, 0);
    }

    #[test]
    fn deep_recursion_flushes_and_refills() {
        let (code, mut stack) = setup(128);
        sim::push_frames(&mut stack, &code, 200, 8);
        assert!(stack.metrics().overflows > 10);
        let flushed = stack.metrics().slots_copied;
        assert!(flushed > 1000, "each overflow copies ~a cacheful ({flushed})");
        assert_eq!(sim::unwind_all(&mut stack), 201);
        assert_eq!(stack.metrics().underflows, stack.metrics().overflows);
    }

    #[test]
    fn bouncing_returns_and_calls_across_the_boundary() {
        let (code, mut stack) = setup(128);
        // Park the stack right at the overflow boundary (esp = 96, frame 8).
        sim::push_frames(&mut stack, &code, 12, 8);
        let base_ovf = stack.metrics().overflows;
        // Now a loop that calls (overflow) and returns (underflow) each
        // iteration: the worst case the paper warns about.
        for _ in 0..50 {
            let ra = code.ret_point(8);
            stack.call(8, ra, 0, true).unwrap();
            stack.ret().unwrap();
        }
        let ovf = stack.metrics().overflows - base_ovf;
        assert_eq!(ovf, 50, "every iteration overflows");
        assert_eq!(stack.metrics().underflows, stack.metrics().overflows);
    }

    #[test]
    fn capture_flushes_the_cache() {
        let (code, mut stack) = setup(256);
        sim::push_frames(&mut stack, &code, 10, 4);
        let before = stack.metrics().slots_copied;
        let k = stack.capture();
        assert!(stack.metrics().slots_copied - before >= 40);
        assert_eq!(k.retained_slots(), 40);
        assert_eq!(stack.fp(), 0, "live frame slid to the cache base");
    }

    #[test]
    fn capture_then_return_underflows_into_block() {
        let (code, mut stack) = setup(256);
        let ras = sim::push_frames(&mut stack, &code, 10, 4);
        let _k = stack.capture();
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[9]));
        assert_eq!(stack.get(1), TestSlot::Int(8));
        assert_eq!(sim::unwind_all(&mut stack), 10);
    }

    #[test]
    fn reinstate_after_unwind_resumes_correctly() {
        let (code, mut stack) = setup(256);
        let ras = sim::push_frames(&mut stack, &code, 10, 4);
        let k = stack.capture();
        sim::unwind_all(&mut stack);
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[9]));
        assert_eq!(sim::unwind_all(&mut stack), 10);
    }

    #[test]
    fn multi_block_continuations_survive_multiple_reinstatement() {
        let (code, mut stack) = setup(128);
        let ras = sim::push_frames(&mut stack, &code, 60, 8);
        let k = stack.capture();
        assert!(k.chain_len() > 1, "deep capture spans several flushed blocks");
        for _ in 0..2 {
            assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[59]));
            assert_eq!(sim::unwind_all(&mut stack), 60);
        }
    }

    #[test]
    fn looper_rule_holds() {
        let (code, mut stack) = setup(256);
        let max_chain = sim::looper_workload(&mut stack, &code, 1000, 4);
        assert_eq!(max_chain, 1);
    }

    #[test]
    fn foreign_continuation_is_rejected() {
        let (code, mut stack) = setup(256);
        let mut heap = crate::heap::HeapStack::<TestSlot>::new(Config::default());
        let k = sim::capture_at_depth(&mut heap, &code, 3, 4);
        assert_eq!(
            stack.reinstate(&k).unwrap_err(),
            StackError::ForeignContinuation { strategy: "cache" }
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let (code, mut stack) = setup(256);
        sim::push_frames(&mut stack, &code, 5, 4);
        stack.reset();
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }
}
