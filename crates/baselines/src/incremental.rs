//! The incremental stack/heap model (Clinger, Hartheimer & Ost 1988).
//!
//! The fourth strategy in Clinger's taxonomy, sitting between the hybrid
//! stack/heap model and the paper's segmented stack: frames migrate to the
//! heap when a continuation is captured (like the hybrid model), but a
//! return *into* a heap frame copies that one frame back onto the stack and
//! execution continues there. Returns stay cheap and uniform; the price is
//! one frame's copy per underflow and the same capture-time migration cost
//! as the hybrid model. The paper's §6 comparison of duplication bounds
//! applies to this model directly: at most one copy of one frame is made
//! per re-entry.

use std::any::Any;
use std::rc::Rc;

use segstack_core::{
    CodeAddr, Config, Continuation, ControlStack, FrameSizeTable, KontRepr, Metrics, ReturnAddress,
    StackError, StackSlot, StackStats,
};

use crate::frames::HeapFrame;

/// Continuation representation: the head of the migrated frame list plus
/// the resume address (shared with any number of captures).
#[derive(Debug)]
struct IncKont<S: StackSlot> {
    frame: Rc<HeapFrame<S>>,
    ra: CodeAddr,
}

impl<S: StackSlot> KontRepr<S> for IncKont<S> {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn retained_slots(&self) -> usize {
        self.frame.chain_slots()
    }

    fn chain_len(&self) -> usize {
        self.frame.chain_len()
    }

    fn strategy(&self) -> &'static str {
        "incremental"
    }
}

/// Control-stack strategy with migrate-on-capture and copy-one-frame-back
/// on underflow (Clinger et al.'s "incremental stack/heap").
///
/// `cfg.segment_slots()` is the stack size.
///
/// # Examples
///
/// ```
/// use segstack_baselines::IncrementalStack;
/// use segstack_core::{Config, ControlStack, TestCode, TestSlot, sim};
/// use std::rc::Rc;
///
/// let code = Rc::new(TestCode::new());
/// let cfg = Config::builder().segment_slots(512).frame_bound(16).build()?;
/// let mut stack = IncrementalStack::<TestSlot>::new(cfg, code.clone());
/// sim::push_frames(&mut stack, &code, 10, 4);
/// let k = stack.capture();                 // migrates frames to the heap
/// stack.ret()?;                            // copies one frame back
/// assert!(stack.metrics().slots_copied > 0);
/// let _ = k;
/// # Ok::<(), segstack_core::StackError>(())
/// ```
pub struct IncrementalStack<S: StackSlot> {
    code: Rc<dyn FrameSizeTable>,
    cfg: Config,
    buf: Vec<S>,
    fp: usize,
    /// Heap chain beneath the stack's bottom frame.
    deep: Option<Rc<HeapFrame<S>>>,
    metrics: Metrics,
}

impl<S: StackSlot> std::fmt::Debug for IncrementalStack<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalStack")
            .field("fp", &self.fp)
            .field("stack", &self.buf.len())
            .field("deep", &self.deep.is_some())
            .finish()
    }
}

impl<S: StackSlot> IncrementalStack<S> {
    /// Creates an incremental stack/heap strategy with a stack buffer of
    /// `cfg.segment_slots()` slots.
    pub fn new(cfg: Config, code: Rc<dyn FrameSizeTable>) -> Self {
        let mut buf: Vec<S> = std::iter::repeat_with(S::empty).take(cfg.segment_slots()).collect();
        buf[0] = S::from_return_address(ReturnAddress::Exit);
        IncrementalStack { code, cfg, buf, fp: 0, deep: None, metrics: Metrics::new() }
    }

    fn esp(&self) -> usize {
        self.buf.len() - self.cfg.esp_reserve()
    }

    /// Migrates every stack frame below `fp` into the heap chain; `live_ra`
    /// is `buf[fp]`. Returns the new chain head.
    fn migrate_below(&mut self, live_ra: CodeAddr) -> Rc<HeapFrame<S>> {
        let mut extents = Vec::new();
        let mut top = self.fp;
        let mut ra = live_ra;
        loop {
            let d = self.code.displacement(ra);
            let b = top - d;
            extents.push((b, top));
            if b == 0 {
                break;
            }
            ra = self.buf[b]
                .as_return_address()
                .expect("frame base must hold a return address")
                .code()
                .expect("frames above the stack base hold code return addresses");
            top = b;
        }
        let mut parent = self.deep.take();
        for &(b, t) in extents.iter().rev() {
            let slots = self.buf[b..t].to_vec();
            self.metrics.heap_frames_allocated += 1;
            self.metrics.heap_slots_allocated += (t - b) as u64;
            self.metrics.slots_copied += (t - b) as u64;
            parent = Some(HeapFrame::new(parent, slots));
        }
        parent.expect("at least the base frame migrated")
    }

    /// Copies heap frame `h` onto the stack base and makes it current: the
    /// defining "incremental" move. The heap original stays frozen for any
    /// continuations that share it.
    fn install_at_base(&mut self, h: &Rc<HeapFrame<S>>) {
        let slots = h.slots.borrow();
        debug_assert!(slots.len() <= self.esp() + self.cfg.esp_reserve());
        for (i, s) in slots.iter().enumerate() {
            self.buf[i] = s.clone();
        }
        self.metrics.slots_copied += slots.len() as u64;
        self.metrics.underflows += 1;
        self.fp = 0;
        self.deep = h.link.clone();
    }
}

impl<S: StackSlot> ControlStack<S> for IncrementalStack<S> {
    fn name(&self) -> &'static str {
        "incremental"
    }

    fn get(&self, i: usize) -> S {
        self.buf[self.fp + i].clone()
    }

    fn set(&mut self, i: usize, v: S) {
        self.buf[self.fp + i] = v;
    }

    fn call(
        &mut self,
        d: usize,
        ra: CodeAddr,
        nargs: usize,
        check: bool,
    ) -> Result<(), StackError> {
        debug_assert!(d >= 1);
        self.metrics.calls += 1;
        let bound = self.cfg.frame_bound();
        if d > bound || 1 + nargs > bound {
            return Err(StackError::FrameTooLarge { requested: d.max(1 + nargs), bound });
        }
        let new_fp = self.fp + d;
        if check {
            self.metrics.checks_executed += 1;
            if new_fp > self.esp() {
                // Stack overflow: migrate everything below the live frame,
                // slide the live frame (plus staged partial frame) down.
                self.metrics.overflows += 1;
                if self.fp > 0 {
                    let live_ra = self.buf[self.fp]
                        .as_return_address()
                        .expect("frame base must hold a return address")
                        .code()
                        .expect("a frame above the stack base has a code return address");
                    let head = self.migrate_below(live_ra);
                    self.deep = Some(head);
                    let width = (d + 1 + nargs).min(self.buf.len() - self.fp);
                    for i in 0..width {
                        self.buf[i] = self.buf[self.fp + i].clone();
                    }
                    self.metrics.slots_copied += width as u64;
                    self.fp = 0;
                }
                let new_fp = self.fp + d;
                self.buf[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
                self.fp = new_fp;
                return Ok(());
            }
        } else {
            self.metrics.checks_elided += 1;
        }
        self.buf[new_fp] = S::from_return_address(ReturnAddress::Code(ra));
        self.fp = new_fp;
        Ok(())
    }

    fn tail_call(&mut self, src: usize, nargs: usize) {
        debug_assert!(src >= 1);
        self.metrics.tail_calls += 1;
        // Stack frames are private: reuse in place.
        for j in 0..nargs {
            self.buf[self.fp + 1 + j] = self.buf[self.fp + src + j].clone();
        }
    }

    fn ret(&mut self) -> Result<ReturnAddress, StackError> {
        self.metrics.returns += 1;
        let ra =
            self.buf[self.fp].as_return_address().expect("frame base must hold a return address");
        match ra {
            ReturnAddress::Code(r) => {
                if self.fp == 0 {
                    // Returning off the stack base: copy the next heap
                    // frame back onto the stack — the incremental step.
                    let h = self
                        .deep
                        .clone()
                        .expect("stack base with a code return address implies a heap chain");
                    self.install_at_base(&h);
                } else {
                    self.fp -= self.code.displacement(r);
                }
                Ok(ra)
            }
            ReturnAddress::Exit => Ok(ra),
            ReturnAddress::Underflow => {
                unreachable!("the incremental model stores real return addresses at the base")
            }
        }
    }

    fn capture(&mut self) -> Continuation<S> {
        self.metrics.captures += 1;
        let ra =
            self.buf[self.fp].as_return_address().expect("frame base must hold a return address");
        let ReturnAddress::Code(live_ra) = ra else {
            return Continuation::exit();
        };
        if self.fp == 0 {
            // The caller chain is already fully in the heap: O(1) capture.
            let frame = self.deep.clone().expect("code ra at base implies a chain");
            self.metrics.stack_records_allocated += 1;
            return Continuation::from_repr(Rc::new(IncKont { frame, ra: live_ra }));
        }
        let head = self.migrate_below(live_ra);
        self.deep = Some(head.clone());
        // Slide the live frame to the base (its extent is unknown without a
        // stack pointer; one frame bound always covers it).
        let width = self.cfg.frame_bound().min(self.buf.len() - self.fp);
        for i in 0..width {
            self.buf[i] = self.buf[self.fp + i].clone();
        }
        self.metrics.slots_copied += width as u64;
        self.fp = 0;
        self.metrics.stack_records_allocated += 1;
        Continuation::from_repr(Rc::new(IncKont { frame: head, ra: live_ra }))
    }

    fn reinstate(&mut self, k: &Continuation<S>) -> Result<ReturnAddress, StackError> {
        // `call/1cc`: take the inner continuation out of a one-shot
        // wrapper; a spent wrapper errors before any state changes.
        let taken;
        let k = match k.unwrap_one_shot() {
            None => k,
            Some(Err(e)) => return Err(e),
            Some(Ok(inner)) => {
                taken = inner;
                &taken
            }
        };
        self.metrics.reinstatements += 1;
        if k.is_exit() {
            self.fp = 0;
            self.buf[0] = S::from_return_address(ReturnAddress::Exit);
            self.deep = None;
            return Ok(ReturnAddress::Exit);
        }
        let kont = k
            .repr()
            .as_any()
            .downcast_ref::<IncKont<S>>()
            .ok_or(StackError::ForeignContinuation { strategy: "incremental" })?;
        // Copy the topmost saved frame onto the stack; the rest arrives
        // incrementally as returns pull frames back.
        self.install_at_base(&kont.frame);
        self.metrics.underflows -= 1; // install counted one; reinstate is explicit
        Ok(ReturnAddress::Code(kont.ra))
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn stats(&self) -> StackStats {
        let (chain_records, chain_slots) = match &self.deep {
            Some(h) => (h.chain_len(), h.chain_slots()),
            None => (0, 0),
        };
        StackStats {
            chain_records,
            chain_slots,
            current_used_slots: self.fp,
            current_free_slots: self.esp().saturating_sub(self.fp),
        }
    }

    fn reset(&mut self) {
        self.fp = 0;
        self.buf[0] = S::from_return_address(ReturnAddress::Exit);
        self.deep = None;
    }

    fn backtrace(&self, limit: usize) -> Vec<CodeAddr> {
        let mut out = Vec::new();
        let mut pos = self.fp;
        loop {
            match self.buf[pos].as_return_address() {
                Some(ReturnAddress::Code(r)) => {
                    out.push(r);
                    if out.len() >= limit {
                        return out;
                    }
                    if pos == 0 {
                        break;
                    }
                    pos -= self.code.displacement(r);
                }
                _ => return out,
            }
        }
        let mut f = self.deep.clone();
        while let Some(frame) = f {
            if out.len() >= limit {
                break;
            }
            match frame.get(0).as_return_address() {
                Some(ReturnAddress::Code(r)) => out.push(r),
                _ => break,
            }
            f = frame.link.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_core::{sim, TestCode, TestSlot};

    fn setup(stack_slots: usize) -> (Rc<TestCode>, IncrementalStack<TestSlot>) {
        let code = Rc::new(TestCode::new());
        let cfg = Config::builder().segment_slots(stack_slots).frame_bound(16).build().unwrap();
        let stack = IncrementalStack::new(cfg, code.clone() as Rc<dyn FrameSizeTable>);
        (code, stack)
    }

    #[test]
    fn plain_calls_never_touch_the_heap() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 5, 4);
        assert_eq!(sim::unwind_all(&mut stack), 6);
        assert_eq!(stack.metrics().heap_frames_allocated, 0);
    }

    #[test]
    fn returns_after_capture_copy_one_frame_each() {
        let (code, mut stack) = setup(512);
        let ras = sim::push_frames(&mut stack, &code, 10, 4);
        let _k = stack.capture();
        let copied_after_capture = stack.metrics().slots_copied;
        // Each of the next returns pulls exactly one 4-slot frame back.
        for i in (0..10).rev() {
            assert_eq!(stack.ret().unwrap(), ReturnAddress::Code(ras[i]));
        }
        let per_frame = stack.metrics().slots_copied - copied_after_capture;
        assert_eq!(per_frame, 40, "ten frames of four slots, one at a time");
        assert_eq!(stack.metrics().underflows, 10);
        assert_eq!(stack.ret().unwrap(), ReturnAddress::Exit);
    }

    #[test]
    fn reinstate_costs_one_frame_and_resumes() {
        let (code, mut stack) = setup(512);
        let ras = sim::push_frames(&mut stack, &code, 10, 4);
        let k = stack.capture();
        sim::unwind_all(&mut stack);
        let before = stack.metrics().slots_copied;
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[9]));
        assert_eq!(stack.metrics().slots_copied - before, 4, "one frame copied back");
        assert_eq!(stack.get(1), TestSlot::Int(8));
        assert_eq!(sim::unwind_all(&mut stack), 10);
        // Multi-shot.
        assert_eq!(stack.reinstate(&k).unwrap(), ReturnAddress::Code(ras[9]));
        assert_eq!(sim::unwind_all(&mut stack), 10);
    }

    #[test]
    fn overflow_migrates_and_continues() {
        let (code, mut stack) = setup(128);
        sim::push_frames(&mut stack, &code, 100, 8);
        assert!(stack.metrics().overflows > 0);
        assert_eq!(sim::unwind_all(&mut stack), 101);
    }

    #[test]
    fn looper_rule_holds() {
        let (code, mut stack) = setup(512);
        let max_chain = sim::looper_workload(&mut stack, &code, 500, 4);
        assert!(max_chain <= 1, "chain grew to {max_chain}");
    }

    #[test]
    fn capture_at_base_is_o1() {
        let (code, mut stack) = setup(512);
        sim::push_frames(&mut stack, &code, 5, 4);
        let k1 = stack.capture(); // migrates; fp now 0
        let copied = stack.metrics().slots_copied;
        let k2 = stack.capture(); // chain already in heap
        assert_eq!(stack.metrics().slots_copied, copied, "second capture copies nothing");
        assert_eq!(k1.retained_slots(), k2.retained_slots());
    }

    #[test]
    fn foreign_continuation_is_rejected() {
        let (code, mut stack) = setup(512);
        let mut heap = crate::heap::HeapStack::<TestSlot>::new(Config::default());
        let k = sim::capture_at_depth(&mut heap, &code, 3, 4);
        assert_eq!(
            stack.reinstate(&k).unwrap_err(),
            StackError::ForeignContinuation { strategy: "incremental" }
        );
    }
}
