//! Runtime values.
//!
//! A [`Value`] is both a Scheme datum and a machine word: frames in the
//! control stack hold `Value`s directly (the `StackSlot` impl), so copying
//! a stack segment clones values — one clone is one "slot copied" in the
//! cost model.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use segstack_core::{Continuation, ReturnAddress, StackSlot};

use crate::error::SchemeError;
use crate::intern::Symbol;

/// A cons cell with mutable fields (`set-car!` / `set-cdr!`).
#[derive(Debug)]
pub struct Pair {
    /// The car field.
    pub car: RefCell<Value>,
    /// The cdr field.
    pub cdr: RefCell<Value>,
}

impl Drop for Pair {
    fn drop(&mut self) {
        // Unlink long cdr chains iteratively: a recursive drop of a
        // million-element list would overflow the native stack. Cars (and
        // shared tails) drop normally; deep *car* nesting is rare.
        let mut cdr = self.cdr.replace(Value::Nil);
        while let Value::Pair(p) = cdr {
            match Rc::try_unwrap(p) {
                // Sole owner: detach its tail before `inner` drops at the
                // end of this arm, keeping each drop shallow.
                Ok(inner) => cdr = inner.cdr.replace(Value::Nil),
                Err(_) => break,
            }
        }
        // Continuation values stored in the car (or in a shared tail's
        // car) are handled by the strategies' own deferred drops.
        segstack_core::defer_drop(self.car.replace(Value::Nil));
    }
}

/// A compiled procedure: a code chunk plus captured free-variable values
/// (flat "display" closures, as in Chez).
#[derive(Debug)]
pub struct Closure {
    /// Index of the compiled code chunk for the body.
    pub chunk: u32,
    /// Number of required parameters.
    pub nparams: u16,
    /// Whether extra arguments are collected into a rest list.
    pub variadic: bool,
    /// Captured free-variable values.
    pub free: Box<[Value]>,
    /// Name for error messages, if known.
    pub name: Option<Symbol>,
}

/// Index into the primitive-procedure table (see
/// [`crate::primitives::PRIMITIVES`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Primitive(pub u16);

/// A Scheme runtime value.
///
/// Immediate values (`Fixnum`, `Bool`, …) are unboxed; aggregates are
/// reference-counted with interior mutability, matching Scheme's object
/// identity semantics.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// Exact integer.
    Fixnum(i64),
    /// Inexact real.
    Flonum(f64),
    /// Boolean.
    Bool(bool),
    /// Character.
    Char(char),
    /// The empty list `()`.
    Nil,
    /// The unspecified value (result of `set!`, `define`, …).
    #[default]
    Unspecified,
    /// Interned symbol.
    Sym(Symbol),
    /// Mutable string.
    Str(Rc<RefCell<String>>),
    /// Cons cell.
    Pair(Rc<Pair>),
    /// Mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// Compiled closure.
    Closure(Rc<Closure>),
    /// Primitive procedure.
    Primitive(Primitive),
    /// First-class continuation.
    Kont(Continuation<Value>),
    /// Assignment-converted variable cell ("pointers to cells in the heap
    /// containing the actual parameters if the parameters are assignable",
    /// paper §3).
    Cell(Rc<RefCell<Value>>),
    /// An in-memory output port (`open-output-string`).
    Port(Rc<RefCell<String>>),
    /// Multiple return values (`values`); consumed by
    /// `call-with-values`.
    Values(Rc<Vec<Value>>),
    /// A return address occupying a frame-base slot (never a user datum).
    Ra(ReturnAddress),
}

impl Value {
    /// Builds a cons cell.
    pub fn cons(car: Value, cdr: Value) -> Value {
        Value::Pair(Rc::new(Pair { car: RefCell::new(car), cdr: RefCell::new(cdr) }))
    }

    /// Builds a proper list from the items.
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Value
    where
        I::IntoIter: DoubleEndedIterator,
    {
        let mut out = Value::Nil;
        for v in items.into_iter().rev() {
            out = Value::cons(v, out);
        }
        out
    }

    /// Builds an interned symbol value.
    pub fn sym(name: &str) -> Value {
        Value::Sym(Symbol::intern(name))
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::Str(Rc::new(RefCell::new(s.into())))
    }

    /// Builds a fresh assignment-conversion cell holding `v`.
    pub fn cell(v: Value) -> Value {
        Value::Cell(Rc::new(RefCell::new(v)))
    }

    /// Builds a fresh string output port.
    pub fn string_port() -> Value {
        Value::Port(Rc::new(RefCell::new(String::new())))
    }

    /// Scheme truthiness: everything but `#f` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// Returns the car of a pair.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Runtime`] if `self` is not a pair.
    pub fn car(&self) -> Result<Value, SchemeError> {
        match self {
            Value::Pair(p) => Ok(p.car.borrow().clone()),
            _ => Err(SchemeError::runtime(format!("car: not a pair: {self}"))),
        }
    }

    /// Returns the cdr of a pair.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Runtime`] if `self` is not a pair.
    pub fn cdr(&self) -> Result<Value, SchemeError> {
        match self {
            Value::Pair(p) => Ok(p.cdr.borrow().clone()),
            _ => Err(SchemeError::runtime(format!("cdr: not a pair: {self}"))),
        }
    }

    /// Collects a proper list into a vector of its elements.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Runtime`] if `self` is not a proper list.
    pub fn list_to_vec(&self) -> Result<Vec<Value>, SchemeError> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Nil => return Ok(out),
                Value::Pair(p) => {
                    out.push(p.car.borrow().clone());
                    let next = p.cdr.borrow().clone();
                    cur = next;
                }
                other => {
                    return Err(SchemeError::runtime(format!("improper list ends in {other}")))
                }
            }
        }
    }

    /// Length of a proper list, or `None` for non-lists/improper lists.
    pub fn list_len(&self) -> Option<usize> {
        let mut n = 0;
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Nil => return Some(n),
                Value::Pair(p) => {
                    n += 1;
                    let next = p.cdr.borrow().clone();
                    cur = next;
                }
                _ => return None,
            }
        }
    }

    /// Identity equality (`eq?`): pointer identity for aggregates,
    /// value identity for immediates.
    pub fn eq_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Fixnum(a), Value::Fixnum(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Char(a), Value::Char(b)) => a == b,
            (Value::Nil, Value::Nil) => true,
            (Value::Unspecified, Value::Unspecified) => true,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => Rc::ptr_eq(a, b),
            (Value::Pair(a), Value::Pair(b)) => Rc::ptr_eq(a, b),
            (Value::Vector(a), Value::Vector(b)) => Rc::ptr_eq(a, b),
            (Value::Closure(a), Value::Closure(b)) => Rc::ptr_eq(a, b),
            (Value::Primitive(a), Value::Primitive(b)) => a == b,
            (Value::Kont(a), Value::Kont(b)) => a.ptr_eq(b),
            (Value::Cell(a), Value::Cell(b)) => Rc::ptr_eq(a, b),
            (Value::Port(a), Value::Port(b)) => Rc::ptr_eq(a, b),
            (Value::Values(a), Value::Values(b)) => Rc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Operational equivalence (`eqv?`): `eq?` plus numeric equality of
    /// flonums of the same kind.
    pub fn eqv_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Flonum(a), Value::Flonum(b)) => a == b,
            _ => self.eq_value(other),
        }
    }

    /// Structural equality (`equal?`).
    pub fn equal_value(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => *a.borrow() == *b.borrow(),
            (Value::Pair(a), Value::Pair(b)) => {
                Rc::ptr_eq(a, b)
                    || (a.car.borrow().equal_value(&b.car.borrow())
                        && a.cdr.borrow().equal_value(&b.cdr.borrow()))
            }
            (Value::Vector(a), Value::Vector(b)) => {
                Rc::ptr_eq(a, b) || {
                    let (a, b) = (a.borrow(), b.borrow());
                    a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.equal_value(y))
                }
            }
            _ => self.eqv_value(other),
        }
    }

    /// The name of this value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Fixnum(_) => "fixnum",
            Value::Flonum(_) => "flonum",
            Value::Bool(_) => "boolean",
            Value::Char(_) => "char",
            Value::Nil => "null",
            Value::Unspecified => "unspecified",
            Value::Sym(_) => "symbol",
            Value::Str(_) => "string",
            Value::Pair(_) => "pair",
            Value::Vector(_) => "vector",
            Value::Closure(_) => "procedure",
            Value::Primitive(_) => "procedure",
            Value::Kont(_) => "continuation",
            Value::Cell(_) => "cell",
            Value::Port(_) => "port",
            Value::Values(_) => "values",
            Value::Ra(_) => "return-address",
        }
    }

    /// Returns the fixnum payload or a type error.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Runtime`] if `self` is not a fixnum.
    pub fn as_fixnum(&self) -> Result<i64, SchemeError> {
        match self {
            Value::Fixnum(n) => Ok(*n),
            _ => Err(SchemeError::runtime(format!("expected a fixnum, got {self}"))),
        }
    }

    /// Is this value a procedure (closure, primitive or continuation)?
    pub fn is_procedure(&self) -> bool {
        matches!(self, Value::Closure(_) | Value::Primitive(_) | Value::Kont(_))
    }
}

/// `PartialEq` is Scheme's `equal?` (structural equality) — convenient for
/// tests; use [`Value::eq_value`] / [`Value::eqv_value`] for the finer
/// predicates.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.equal_value(other)
    }
}

impl StackSlot for Value {
    fn from_return_address(ra: ReturnAddress) -> Self {
        Value::Ra(ra)
    }

    fn as_return_address(&self) -> Option<ReturnAddress> {
        match self {
            Value::Ra(ra) => Some(*ra),
            _ => None,
        }
    }

    fn empty() -> Self {
        Value::Unspecified
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Fixnum(n)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Flonum(x)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<char> for Value {
    fn from(c: char) -> Value {
        Value::Char(c)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::string(s)
    }
}

const PRINT_DEPTH_LIMIT: usize = 64;

/// Writes `v` in `write` style (strings quoted, chars as `#\x`).
fn write_value(v: &Value, f: &mut fmt::Formatter<'_>, display: bool, depth: usize) -> fmt::Result {
    if depth > PRINT_DEPTH_LIMIT {
        return write!(f, "...");
    }
    match v {
        Value::Fixnum(n) => write!(f, "{n}"),
        Value::Flonum(x) => {
            if x.fract() == 0.0 && x.is_finite() {
                write!(f, "{x:.1}")
            } else {
                write!(f, "{x}")
            }
        }
        Value::Bool(true) => write!(f, "#t"),
        Value::Bool(false) => write!(f, "#f"),
        Value::Char(c) if display => write!(f, "{c}"),
        Value::Char(' ') => write!(f, "#\\space"),
        Value::Char('\n') => write!(f, "#\\newline"),
        Value::Char(c) => write!(f, "#\\{c}"),
        Value::Nil => write!(f, "()"),
        Value::Unspecified => write!(f, "#<unspecified>"),
        Value::Sym(s) => write!(f, "{s}"),
        Value::Str(s) if display => write!(f, "{}", s.borrow()),
        Value::Str(s) => write!(f, "{:?}", s.borrow()),
        Value::Pair(_) => {
            write!(f, "(")?;
            let mut cur = v.clone();
            let mut first = true;
            let mut steps = 0;
            loop {
                match cur {
                    Value::Pair(ref p) => {
                        if !first {
                            write!(f, " ")?;
                        }
                        first = false;
                        steps += 1;
                        if steps > 1000 {
                            write!(f, "...")?;
                            break;
                        }
                        write_value(&p.car.borrow(), f, display, depth + 1)?;
                        let next = p.cdr.borrow().clone();
                        cur = next;
                    }
                    Value::Nil => break,
                    other => {
                        write!(f, " . ")?;
                        write_value(&other, f, display, depth + 1)?;
                        break;
                    }
                }
            }
            write!(f, ")")
        }
        Value::Vector(items) => {
            write!(f, "#(")?;
            for (i, x) in items.borrow().iter().enumerate() {
                if i > 0 {
                    write!(f, " ")?;
                }
                write_value(x, f, display, depth + 1)?;
            }
            write!(f, ")")
        }
        Value::Closure(c) => match c.name {
            Some(name) => write!(f, "#<procedure {name}>"),
            None => write!(f, "#<procedure>"),
        },
        Value::Primitive(p) => write!(f, "#<primitive {}>", crate::primitives::name_of(*p)),
        Value::Kont(k) => write!(f, "#<continuation {} records>", k.chain_len()),
        Value::Cell(c) => {
            write!(f, "#<cell ")?;
            write_value(&c.borrow(), f, display, depth + 1)?;
            write!(f, ">")
        }
        Value::Port(p) => write!(f, "#<string-port {} chars>", p.borrow().chars().count()),
        Value::Values(vs) => {
            write!(f, "#<values")?;
            for v in vs.iter() {
                write!(f, " ")?;
                write_value(v, f, display, depth + 1)?;
            }
            write!(f, ">")
        }
        Value::Ra(ra) => write!(f, "#<{ra}>"),
    }
}

impl fmt::Display for Value {
    /// `write`-style representation (strings quoted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self, f, false, 0)
    }
}

/// Wrapper whose `Display` renders `display` style (strings unquoted).
#[derive(Debug, Clone)]
pub struct Displayed<'a>(pub &'a Value);

impl fmt::Display for Displayed<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(self.0, f, true, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_construction_and_flattening() {
        let l = Value::list([Value::Fixnum(1), Value::Fixnum(2), Value::Fixnum(3)]);
        assert_eq!(l.list_len(), Some(3));
        assert_eq!(l.list_to_vec().unwrap(), vec![1.into(), 2.into(), 3.into()]);
        assert_eq!(l.car().unwrap(), Value::Fixnum(1));
        assert_eq!(l.cdr().unwrap().car().unwrap(), Value::Fixnum(2));
    }

    #[test]
    fn improper_lists_are_detected() {
        let d = Value::cons(1.into(), 2.into());
        assert_eq!(d.list_len(), None);
        assert!(d.list_to_vec().is_err());
        assert!(Value::Fixnum(1).car().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Bool(false).is_truthy());
        assert!(Value::Bool(true).is_truthy());
        assert!(Value::Nil.is_truthy());
        assert!(Value::Fixnum(0).is_truthy());
        assert!(Value::Unspecified.is_truthy());
    }

    #[test]
    fn eq_eqv_equal_hierarchy() {
        let a = Value::list([1.into(), 2.into()]);
        let b = Value::list([1.into(), 2.into()]);
        assert!(!a.eq_value(&b));
        assert!(!a.eqv_value(&b));
        assert!(a.equal_value(&b));
        assert!(a.eq_value(&a.clone()));

        assert!(Value::Flonum(1.5).eqv_value(&Value::Flonum(1.5)));
        assert!(!Value::Flonum(1.5).eq_value(&Value::Flonum(1.5)));

        let s1 = Value::string("hi");
        let s2 = Value::string("hi");
        assert!(!s1.eq_value(&s2));
        assert!(s1.equal_value(&s2));

        assert!(Value::sym("x").eq_value(&Value::sym("x")));
    }

    #[test]
    fn partial_eq_is_structural() {
        assert_eq!(Value::list([1.into()]), Value::list([1.into()]));
        assert_ne!(Value::Fixnum(1), Value::Fixnum(2));
    }

    #[test]
    fn write_representations() {
        let l = Value::list(["a".into(), Value::sym("b"), 3.into()]);
        assert_eq!(l.to_string(), r#"("a" b 3)"#);
        assert_eq!(Displayed(&l).to_string(), "(a b 3)");
        assert_eq!(Value::cons(1.into(), 2.into()).to_string(), "(1 . 2)");
        assert_eq!(Value::Bool(true).to_string(), "#t");
        assert_eq!(Value::Char(' ').to_string(), "#\\space");
        assert_eq!(Displayed(&Value::Char('x')).to_string(), "x");
        assert_eq!(Value::Flonum(2.0).to_string(), "2.0");
        assert_eq!(Value::Nil.to_string(), "()");
        let v = Value::Vector(Rc::new(RefCell::new(vec![1.into(), 2.into()])));
        assert_eq!(v.to_string(), "#(1 2)");
    }

    #[test]
    fn cyclic_structures_print_without_hanging() {
        let p =
            Rc::new(Pair { car: RefCell::new(Value::Fixnum(1)), cdr: RefCell::new(Value::Nil) });
        *p.cdr.borrow_mut() = Value::Pair(p.clone());
        let s = Value::Pair(p).to_string();
        assert!(s.contains("..."));
    }

    #[test]
    fn stack_slot_round_trip() {
        let ra = ReturnAddress::Underflow;
        let v = Value::from_return_address(ra);
        assert_eq!(v.as_return_address(), Some(ra));
        assert_eq!(Value::Fixnum(1).as_return_address(), None);
        assert!(matches!(Value::empty(), Value::Unspecified));
    }

    #[test]
    fn cells_share_state() {
        let c = Value::cell(1.into());
        let c2 = c.clone();
        if let Value::Cell(inner) = &c {
            *inner.borrow_mut() = 2.into();
        }
        if let Value::Cell(inner) = &c2 {
            assert_eq!(*inner.borrow(), Value::Fixnum(2));
        }
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Fixnum(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from('c'), Value::Char('c'));
        assert_eq!(Value::from(2.5), Value::Flonum(2.5));
        assert_eq!(Value::from("s"), Value::string("s"));
        assert_eq!(Value::Fixnum(3).as_fixnum().unwrap(), 3);
        assert!(Value::Bool(true).as_fixnum().is_err());
    }
}
