//! Symbol interning.
//!
//! Scheme symbols are interned so that `eq?` is pointer (here: index)
//! equality. The interner is thread-local: symbols are plain `u32` indices
//! and may be freely copied within a thread.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::new());
}

#[derive(Default)]
struct Interner {
    names: Vec<String>,
    map: HashMap<String, u32>,
}

impl Interner {
    fn new() -> Self {
        Interner::default()
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.map.insert(name.to_owned(), id);
        id
    }
}

/// An interned Scheme symbol.
///
/// # Examples
///
/// ```
/// use segstack_scheme::Symbol;
/// let a = Symbol::intern("lambda");
/// let b = Symbol::intern("lambda");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "lambda");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Interns `name`, returning its symbol.
    pub fn intern(name: &str) -> Symbol {
        INTERNER.with(|i| Symbol(i.borrow_mut().intern(name)))
    }

    /// The symbol's print name.
    pub fn as_str(self) -> String {
        INTERNER.with(|i| i.borrow().names[self.0 as usize].clone())
    }

    /// The raw interner index (stable within a thread).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        INTERNER.with(|i| f.write_str(&i.borrow().names[self.0 as usize]))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn round_trips_names() {
        let s = Symbol::intern("call-with-current-continuation");
        assert_eq!(s.as_str(), "call-with-current-continuation");
        assert_eq!(s.to_string(), "call-with-current-continuation");
        assert_eq!(format!("{s:?}"), "'call-with-current-continuation");
    }

    #[test]
    fn distinguishes_case() {
        assert_ne!(Symbol::intern("Foo"), Symbol::intern("foo"));
    }
}
