//! Bytecode generation from resolved core forms.
//!
//! The generated code follows the paper's calling convention (§3):
//!
//! * the caller stages the callee's partial frame at the current frame
//!   displacement (operator at `d+1`, arguments above it), then transfers
//!   control;
//! * a `FrameSize` data word is emitted immediately before every return
//!   point — and before every `Call`/`TailCall` instruction, which serves
//!   as the re-entry point for timer interrupts — so stack walkers can
//!   recover frame boundaries from return addresses alone (Figure 4);
//! * tail calls reuse the current frame (arguments are staged above the
//!   live slots and shuffled down);
//! * overflow checks are emitted per call site according to the
//!   [`CheckPolicy`]; direct applications of *leaf* lambdas skip the check,
//!   the paper's §5 elision.

use std::fmt;

use crate::code::{Check, Chunk, CodeStore, IcSlot, Instr};
use crate::error::SchemeError;
use crate::expand::Expander;
use crate::interproc::InterprocDecisions;
use crate::primitives::PrimKind;
use crate::resolve::{resolve_toplevel, Capture, RExpr, RLambda, PARAM_BASE};
use crate::value::Value;

/// When call sites emit the stack-overflow check (Figure 8 / §5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CheckPolicy {
    /// Every call site checks.
    Always,
    /// Direct applications of leaf lambdas skip the check (sound under the
    /// two-frame reserve); everything else checks. The default.
    #[default]
    Elide,
    /// No call site checks. Sound only when the segment is known to be
    /// deeper than the program's recursion (used as the experiment E8
    /// lower bound).
    Never,
}

/// Compilation options.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Overflow-check policy.
    pub policy: CheckPolicy,
    /// Maximum frame size in slots; compilation fails beyond it. Should
    /// match the control stack's configured frame bound.
    pub frame_bound: usize,
    /// Under [`CheckPolicy::Elide`], also skip the overflow check for
    /// direct applications of lambdas whose bodies call nothing but
    /// globals bound (at compile time) to ordinary primitives. Primitives
    /// complete without pushing a Scheme frame, so such a body stays
    /// within the two-frame reserve exactly like a true leaf.
    ///
    /// The flag's assumption is that those globals are never rebound to
    /// Scheme procedures. Even if they are, safety degrades gracefully:
    /// the rebound procedure's own call sites still carry their checks, so
    /// only one unchecked frame can land in the reserve — but the elision
    /// is no longer justified by the compile-time analysis, hence the
    /// opt-in default of `false`.
    pub stable_primitive_bindings: bool,
    /// Under [`CheckPolicy::Elide`], additionally run the
    /// [interprocedural bounded-depth analysis](crate::interproc) and
    /// elide the overflow check at every call site it proves stays
    /// within the two-frame reserve transitively — whole proven
    /// subgraphs rather than single leaf bodies. Carries the same
    /// compile-time-bindings promise as `stable_primitive_bindings`
    /// (globals resolved by the analysis are never rebound), hence the
    /// opt-in default of `false`.
    pub interprocedural_elision: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            policy: CheckPolicy::default(),
            frame_bound: 64,
            stable_primitive_bindings: false,
            interprocedural_elision: false,
        }
    }
}

/// Compiles one top-level datum to a chunk in `store`, returning its id.
///
/// # Errors
///
/// [`SchemeError::Compile`] for malformed programs or frames exceeding the
/// frame bound.
pub fn compile_toplevel(
    datum: &Value,
    expander: &mut Expander,
    store: &CodeStore,
    globals: &mut crate::code::Globals,
    opts: &CompileOptions,
) -> Result<u32, SchemeError> {
    let ast = expander.expand_toplevel(datum)?;
    let rexpr = resolve_toplevel(&ast, globals)?;
    let globals = &*globals;
    let interproc = if opts.interprocedural_elision && opts.policy == CheckPolicy::Elide {
        Some(crate::interproc::analyze(&rexpr, globals, opts.frame_bound))
    } else {
        None
    };
    let mut g = Gen {
        store,
        opts,
        globals,
        interproc: interproc.as_ref(),
        instrs: Vec::new(),
        consts: Vec::new(),
        max_stage: 1,
        ics: 0,
    };
    g.gen_tail(&rexpr, 1)?;
    let name = format!("toplevel-{}", store.len());
    Ok(store.add(g.finish(name, 0, false)))
}

struct Gen<'a> {
    store: &'a CodeStore,
    opts: &'a CompileOptions,
    /// Global bindings as of compilation time, consulted by the
    /// `stable_primitive_bindings` check-elision analysis.
    globals: &'a crate::code::Globals,
    /// Interprocedural elision decisions for this unit, when enabled.
    interproc: Option<&'a InterprocDecisions>,
    instrs: Vec<Instr>,
    consts: Vec<Value>,
    max_stage: u16,
    /// Inline-cache slots allocated so far in this chunk.
    ics: u32,
}

impl Gen<'_> {
    fn compile_lambda(&self, l: &RLambda) -> Result<u32, SchemeError> {
        let wm = PARAM_BASE + l.nparams;
        if wm as usize > self.opts.frame_bound {
            return Err(SchemeError::compile(format!(
                "procedure {} has too many parameters for the frame bound ({})",
                l.name.map(|s| s.as_str()).unwrap_or_else(|| "anonymous".into()),
                self.opts.frame_bound
            )));
        }
        let mut g = Gen {
            store: self.store,
            opts: self.opts,
            globals: self.globals,
            interproc: self.interproc,
            instrs: Vec::new(),
            consts: Vec::new(),
            max_stage: wm,
            ics: 0,
        };
        for (i, boxed) in l.boxed_params.iter().enumerate() {
            if *boxed {
                g.instrs.push(Instr::WrapCell(PARAM_BASE + i as u16));
            }
        }
        g.gen_tail(&l.body, wm)?;
        let name = l.name.map(|s| s.as_str()).unwrap_or_else(|| "lambda".into());
        Ok(self.store.add(g.finish(name, l.nparams, l.variadic)))
    }

    /// Fuses trailing test+branch pairs and packages the finished chunk.
    fn finish(self, name: String, nparams: u16, variadic: bool) -> Chunk {
        let mut instrs = self.instrs;
        fuse_test_branches(&mut instrs);
        Chunk {
            instrs,
            consts: self.consts,
            nparams,
            variadic,
            name,
            frame_slots: self.max_stage,
            ics: (0..self.ics).map(|_| IcSlot::default()).collect(),
        }
    }

    /// Allocates an inline-cache slot for a `CallGlobal`-family site.
    fn new_ic(&mut self) -> u32 {
        let ic = self.ics;
        self.ics += 1;
        ic
    }

    /// Checks the frame bound and records the high-water mark for a slot
    /// about to be written.
    fn reserve(&mut self, slot: u16) -> Result<(), SchemeError> {
        let top = slot + 1;
        if top as usize > self.opts.frame_bound {
            return Err(SchemeError::compile(format!(
                "expression needs a frame of {top} slots, beyond the frame bound of {}; \
                 split the expression or raise the bound",
                self.opts.frame_bound
            )));
        }
        self.max_stage = self.max_stage.max(top);
        Ok(())
    }

    fn stage(&mut self, slot: u16) -> Result<(), SchemeError> {
        self.reserve(slot)?;
        self.instrs.push(Instr::LocalSet(slot));
        Ok(())
    }

    /// Evaluates `e` directly into `frame[slot]`. Simple operands fuse
    /// the value and the store into one superinstruction that bypasses
    /// the accumulator — sound here because every staging context
    /// overwrites the accumulator before it is next read.
    fn gen_staged(&mut self, e: &RExpr, slot: u16) -> Result<(), SchemeError> {
        match e {
            RExpr::Quote(Value::Fixnum(n)) => {
                self.reserve(slot)?;
                self.instrs.push(Instr::FixStage { n: *n, dst: slot });
                Ok(())
            }
            RExpr::LocalRef(s) => {
                self.reserve(slot)?;
                self.instrs.push(Instr::Move { src: *s, dst: slot });
                Ok(())
            }
            RExpr::GlobalRef(g) => {
                self.reserve(slot)?;
                self.instrs.push(Instr::GlobalStage { g: *g, dst: slot });
                Ok(())
            }
            _ => {
                self.gen(e, slot)?;
                self.stage(slot)
            }
        }
    }

    fn constant(&mut self, v: &Value) {
        let instr = match v {
            Value::Fixnum(n) => Instr::Fix(*n),
            Value::Bool(true) => Instr::True,
            Value::Bool(false) => Instr::False,
            Value::Nil => Instr::Nil,
            Value::Unspecified => Instr::Unspec,
            other => {
                let idx = self.consts.len() as u32;
                self.consts.push(other.clone());
                Instr::Const(idx)
            }
        };
        self.instrs.push(instr);
    }

    /// Generates code leaving the expression's value in the accumulator.
    fn gen(&mut self, e: &RExpr, wm: u16) -> Result<(), SchemeError> {
        match e {
            RExpr::Quote(v) => {
                self.constant(v);
                Ok(())
            }
            RExpr::LocalRef(s) => {
                self.instrs.push(Instr::LocalRef(*s));
                Ok(())
            }
            RExpr::LocalCellRef(s) => {
                self.instrs.push(Instr::CellRef(*s));
                Ok(())
            }
            RExpr::FreeRef(i) => {
                self.instrs.push(Instr::FreeRef(*i));
                Ok(())
            }
            RExpr::FreeCellRef(i) => {
                self.instrs.push(Instr::FreeCellRef(*i));
                Ok(())
            }
            RExpr::GlobalRef(g) => {
                self.instrs.push(Instr::GlobalRef(*g));
                Ok(())
            }
            RExpr::LocalCellSet(s, v) => {
                self.gen(v, wm)?;
                self.instrs.push(Instr::CellSet(*s));
                self.instrs.push(Instr::Unspec);
                Ok(())
            }
            RExpr::FreeCellSet(i, v) => {
                self.gen(v, wm)?;
                self.instrs.push(Instr::FreeCellSet(*i));
                self.instrs.push(Instr::Unspec);
                Ok(())
            }
            RExpr::GlobalSet(g, v) => {
                self.gen(v, wm)?;
                self.instrs.push(Instr::GlobalSet(*g));
                self.instrs.push(Instr::Unspec);
                Ok(())
            }
            RExpr::GlobalDef(g, v) => {
                self.gen(v, wm)?;
                self.instrs.push(Instr::GlobalDef(*g));
                self.instrs.push(Instr::Unspec);
                Ok(())
            }
            RExpr::If(c, t, els) => {
                self.gen(c, wm)?;
                let jf = self.emit_patch(Instr::JumpIfFalse(0));
                self.gen(t, wm)?;
                let j = self.emit_patch(Instr::Jump(0));
                self.patch(jf);
                self.gen(els, wm)?;
                self.patch(j);
                Ok(())
            }
            RExpr::Begin(es) => {
                let Some((last, init)) = es.split_last() else {
                    self.instrs.push(Instr::Unspec);
                    return Ok(());
                };
                for e in init {
                    self.gen(e, wm)?;
                }
                self.gen(last, wm)
            }
            RExpr::Lambda(l) => self.gen_closure(l, wm),
            RExpr::Call(op, args) => {
                let d = wm;
                let nargs = args.len() as u16;
                let check = self.check_for(e, op);
                if let Some(g) = self.ic_operator(op) {
                    // Operator staging is folded into the call itself;
                    // the slot is still part of the frame.
                    self.reserve(d + 1)?;
                    for (j, a) in args.iter().enumerate() {
                        self.gen_staged(a, d + 2 + j as u16)?;
                    }
                    let ic = self.new_ic();
                    self.instrs.push(Instr::FrameSize(u32::from(d + 2 + nargs)));
                    self.instrs.push(Instr::CallGlobal { g, ic, d, nargs, check });
                    self.instrs.push(Instr::FrameSize(u32::from(d)));
                    return Ok(());
                }
                self.gen_staged(op, d + 1)?;
                for (j, a) in args.iter().enumerate() {
                    self.gen_staged(a, d + 2 + j as u16)?;
                }
                // Re-entry word for timer interrupts: a handler frame is
                // pushed above the staged partial frame.
                self.instrs.push(Instr::FrameSize(u32::from(d + 2 + nargs)));
                self.instrs.push(Instr::Call { d, nargs, check });
                // The word before the return point: the displacement.
                self.instrs.push(Instr::FrameSize(u32::from(d)));
                Ok(())
            }
        }
    }

    /// Generates code in tail position: always ends in `Return` or
    /// `TailCall`.
    fn gen_tail(&mut self, e: &RExpr, wm: u16) -> Result<(), SchemeError> {
        match e {
            RExpr::If(c, t, els) => {
                self.gen(c, wm)?;
                let jf = self.emit_patch(Instr::JumpIfFalse(0));
                self.gen_tail(t, wm)?;
                self.patch(jf);
                self.gen_tail(els, wm)
            }
            RExpr::Begin(es) => {
                let Some((last, init)) = es.split_last() else {
                    self.instrs.push(Instr::Unspec);
                    self.instrs.push(Instr::Return);
                    return Ok(());
                };
                for e in init {
                    self.gen(e, wm)?;
                }
                self.gen_tail(last, wm)
            }
            RExpr::Call(op, args) => {
                let nargs = args.len() as u16;
                // src ≥ 2 + nargs keeps the staged slots disjoint from the
                // target slots 1..=1+nargs of the frame reuse shuffle.
                let d = wm.max(1 + nargs);
                if let Some(g) = self.ic_operator(op) {
                    self.reserve(d + 1)?;
                    for (j, a) in args.iter().enumerate() {
                        self.gen_staged(a, d + 2 + j as u16)?;
                    }
                    let ic = self.new_ic();
                    self.instrs.push(Instr::FrameSize(u32::from(d + 2 + nargs)));
                    self.instrs.push(Instr::TailCallGlobal { g, ic, src: d + 1, nargs });
                    return Ok(());
                }
                self.gen_staged(op, d + 1)?;
                for (j, a) in args.iter().enumerate() {
                    self.gen_staged(a, d + 2 + j as u16)?;
                }
                self.instrs.push(Instr::FrameSize(u32::from(d + 2 + nargs)));
                self.instrs.push(Instr::TailCall { src: d + 1, nargs });
                Ok(())
            }
            other => {
                self.gen(other, wm)?;
                self.instrs.push(Instr::Return);
                Ok(())
            }
        }
    }

    fn gen_closure(&mut self, l: &RLambda, wm: u16) -> Result<(), SchemeError> {
        let chunk = self.compile_lambda(l)?;
        let nfree = l.captures.len() as u16;
        for (i, cap) in l.captures.iter().enumerate() {
            let dst = wm + i as u16;
            match cap {
                Capture::Local(slot) => {
                    self.reserve(dst)?;
                    self.instrs.push(Instr::Move { src: *slot, dst });
                }
                Capture::Free(idx) => {
                    self.instrs.push(Instr::FreeRef(*idx));
                    self.stage(dst)?;
                }
            }
        }
        self.instrs.push(Instr::MakeClosure { chunk, src: wm, nfree });
        Ok(())
    }

    /// Can this operator go through the inline-cached `CallGlobal`
    /// family? Globals currently bound to VM-dispatched special
    /// primitives (`call/cc`, `apply`, the timer hooks, …) stay on the
    /// generic path: they can never be cached, so an IC site would count
    /// a miss on every execution.
    fn ic_operator(&self, op: &RExpr) -> Option<u32> {
        let RExpr::GlobalRef(g) = op else { return None };
        match self.globals.get(*g) {
            Ok(Value::Primitive(p))
                if !matches!(crate::primitives::def_of(p).kind, PrimKind::Normal(_)) =>
            {
                None
            }
            _ => Some(*g),
        }
    }

    /// The §5 check-elision decision for one call site. `site` is the
    /// `RExpr::Call` node itself (the interprocedural analysis keys its
    /// decisions on it), `op` its operator.
    fn check_for(&self, site: &RExpr, op: &RExpr) -> Check {
        match self.opts.policy {
            CheckPolicy::Always => Check::Yes,
            CheckPolicy::Never => Check::Elided,
            CheckPolicy::Elide => {
                if let RExpr::Lambda(l) = op {
                    if l.leaf
                        || (self.opts.stable_primitive_bindings && self.prim_leaf_body(&l.body))
                    {
                        return Check::Elided;
                    }
                }
                if self.interproc.is_some_and(|ip| ip.should_elide(site)) {
                    return Check::ElidedInterproc;
                }
                Check::Yes
            }
        }
    }

    /// The `stable_primitive_bindings` analysis: `e` performs no calls
    /// other than direct applications of globals currently bound to
    /// ordinary primitives. Primitives run to completion without pushing a
    /// Scheme frame, so a body of this shape fits the two-frame reserve
    /// exactly like a true leaf. Nested lambda *creation* is fine (their
    /// bodies carry their own call-site checks); a nested lambda in
    /// *operator* position is not, because that call would stack frames.
    fn prim_leaf_body(&self, e: &RExpr) -> bool {
        match e {
            RExpr::Quote(_)
            | RExpr::LocalRef(_)
            | RExpr::LocalCellRef(_)
            | RExpr::FreeRef(_)
            | RExpr::FreeCellRef(_)
            | RExpr::GlobalRef(_)
            | RExpr::Lambda(_) => true,
            RExpr::LocalCellSet(_, v)
            | RExpr::FreeCellSet(_, v)
            | RExpr::GlobalSet(_, v)
            | RExpr::GlobalDef(_, v) => self.prim_leaf_body(v),
            RExpr::If(c, t, f) => {
                self.prim_leaf_body(c) && self.prim_leaf_body(t) && self.prim_leaf_body(f)
            }
            RExpr::Begin(es) => es.iter().all(|e| self.prim_leaf_body(e)),
            RExpr::Call(op, args) => {
                let prim_op = match op.as_ref() {
                    RExpr::GlobalRef(g) => match self.globals.get(*g) {
                        Ok(Value::Primitive(p)) => {
                            matches!(crate::primitives::def_of(p).kind, PrimKind::Normal(_))
                        }
                        _ => false,
                    },
                    _ => false,
                };
                prim_op && args.iter().all(|a| self.prim_leaf_body(a))
            }
        }
    }

    fn emit_patch(&mut self, instr: Instr) -> usize {
        let at = self.instrs.len();
        self.instrs.push(instr);
        at
    }

    fn patch(&mut self, at: usize) {
        let target = self.instrs.len() as u32;
        match &mut self.instrs[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) => *t = target,
            other => panic!("patching a non-jump instruction {other:?}"),
        }
    }
}

/// Rewrites `[CallGlobal, FrameSize(d), JumpIfFalse(t)]` runs into the
/// fused `CallGlobalBr` in place. No instruction is removed or moved, so
/// jump targets stay valid: closure returns still land on the real
/// `JumpIfFalse`, and only the inline-cached primitive hit takes the
/// fused branch. Runs after jump patching, when branch targets are
/// final.
fn fuse_test_branches(instrs: &mut [Instr]) {
    for i in 0..instrs.len() {
        let Instr::CallGlobal { g, ic, d, nargs, check } = instrs[i] else { continue };
        if matches!(instrs.get(i + 1), Some(Instr::FrameSize(_))) {
            if let Some(Instr::JumpIfFalse(t)) = instrs.get(i + 2) {
                let target = *t;
                instrs[i] = Instr::CallGlobalBr { g, ic, d, nargs, check, target };
            }
        }
    }
}

impl fmt::Display for CheckPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CheckPolicy::Always => "always",
            CheckPolicy::Elide => "elide",
            CheckPolicy::Never => "never",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Globals;
    use crate::reader::read_one;

    fn compile(src: &str) -> (CodeStore, Globals, u32) {
        compile_with(src, CheckPolicy::Elide)
    }

    fn compile_with(src: &str, policy: CheckPolicy) -> (CodeStore, Globals, u32) {
        let store = CodeStore::new();
        let mut globals = Globals::new();
        let mut ex = Expander::new();
        let opts = CompileOptions { policy, ..CompileOptions::default() };
        let id = compile_toplevel(&read_one(src).unwrap(), &mut ex, &store, &mut globals, &opts)
            .unwrap();
        (store, globals, id)
    }

    #[test]
    fn constant_compiles_to_inline_and_return() {
        let (store, _, id) = compile("42");
        let c = store.chunk(id);
        assert_eq!(c.instrs, vec![Instr::Fix(42), Instr::Return]);
    }

    #[test]
    fn large_constants_go_to_the_pool() {
        let (store, _, id) = compile("\"hello\"");
        let c = store.chunk(id);
        assert!(matches!(c.instrs[0], Instr::Const(0)));
        assert_eq!(c.consts.len(), 1);
    }

    #[test]
    fn call_emits_frame_size_words_around_it() {
        let (store, _, id) = compile("(f 1 2)");
        let c = store.chunk(id);
        // Tail position at top level; the unbound-global operator goes
        // through the inline-cached superinstruction, still preceded by
        // its FrameSize word.
        let tc = c.instrs.iter().position(|i| matches!(i, Instr::TailCallGlobal { .. })).unwrap();
        assert!(matches!(c.instrs[tc - 1], Instr::FrameSize(_)));
    }

    #[test]
    fn non_tail_call_has_displacement_word_before_return_point() {
        let (store, _, id) = compile("(g (f 1))");
        let c = store.chunk(id);
        let call_at = c
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::CallGlobal { .. }))
            .expect("inner call is non-tail");
        assert!(matches!(c.instrs[call_at - 1], Instr::FrameSize(_)), "re-entry word");
        let Instr::CallGlobal { d, nargs, .. } = c.instrs[call_at] else { unreachable!() };
        assert_eq!(c.instrs[call_at + 1], Instr::FrameSize(u32::from(d)));
        assert_eq!(nargs, 1);
    }

    #[test]
    fn lambda_chunks_are_compiled_with_params() {
        let (store, _, id) = compile("(lambda (a b) a)");
        let c = store.chunk(id);
        let Instr::MakeClosure { chunk, nfree, .. } =
            *c.instrs.iter().find(|i| matches!(i, Instr::MakeClosure { .. })).unwrap()
        else {
            unreachable!()
        };
        assert_eq!(nfree, 0);
        let body = store.chunk(chunk);
        assert_eq!(body.nparams, 2);
        assert_eq!(body.instrs, vec![Instr::LocalRef(2), Instr::Return]);
    }

    #[test]
    fn boxed_params_get_wrap_cell_prologue() {
        let (store, _, id) = compile("(lambda (a) (set! a 1) a)");
        let c = store.chunk(id);
        let Instr::MakeClosure { chunk, .. } =
            *c.instrs.iter().find(|i| matches!(i, Instr::MakeClosure { .. })).unwrap()
        else {
            unreachable!()
        };
        let body = store.chunk(chunk);
        assert_eq!(body.instrs[0], Instr::WrapCell(2));
        assert!(body.instrs.contains(&Instr::CellSet(2)));
        assert!(body.instrs.contains(&Instr::CellRef(2)));
    }

    #[test]
    fn captures_are_staged_before_make_closure() {
        let (store, _, id) = compile("(lambda (a) (lambda () a))");
        let c = store.chunk(id);
        let Instr::MakeClosure { chunk: outer_chunk, .. } =
            *c.instrs.iter().find(|i| matches!(i, Instr::MakeClosure { .. })).unwrap()
        else {
            unreachable!()
        };
        let outer = store.chunk(outer_chunk);
        // Outer body: Move{2→3}; MakeClosure{src:3,nfree:1}; Return
        assert_eq!(outer.instrs[0], Instr::Move { src: 2, dst: 3 });
        assert!(matches!(outer.instrs[1], Instr::MakeClosure { nfree: 1, src: 3, .. }));
    }

    #[test]
    fn check_policy_always_vs_never() {
        for (policy, expect) in
            [(CheckPolicy::Always, Check::Yes), (CheckPolicy::Never, Check::Elided)]
        {
            let (store, _, id) = compile_with("(g (f 1))", policy);
            let c = store.chunk(id);
            let Some(Instr::CallGlobal { check, .. }) =
                c.instrs.iter().find(|i| matches!(i, Instr::CallGlobal { .. }))
            else {
                unreachable!()
            };
            assert_eq!(*check, expect, "{policy:?}");
        }
    }

    #[test]
    fn elide_skips_checks_for_direct_leaf_lambdas() {
        // ((lambda (x) x) (f 1)) — outer call is direct to a leaf.
        let (store, _, id) = compile("(g ((lambda (x) x) 1))");
        let c = store.chunk(id);
        let checks: Vec<Check> = c
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Call { check, .. } => Some(*check),
                _ => None,
            })
            .collect();
        assert_eq!(checks, vec![Check::Elided], "direct leaf application is uncheck");
    }

    #[test]
    fn stable_primitive_bindings_elides_checks_for_prim_leaf_lets() {
        // (let ((t 1)) (* t t)) expands to a direct lambda application whose
        // body only calls a primitive. Plain Elide must keep the check (the
        // body contains a call, so the lambda is not a leaf); with the
        // stable-bindings promise the prim-leaf analysis removes it.
        let src = "(g (let ((t 1)) (* t t)))";
        for (stable, expect) in [(false, Check::Yes), (true, Check::Elided)] {
            let store = CodeStore::new();
            let mut globals = Globals::new();
            crate::primitives::install(&mut globals);
            let mut ex = Expander::new();
            let opts = CompileOptions {
                policy: CheckPolicy::Elide,
                stable_primitive_bindings: stable,
                ..CompileOptions::default()
            };
            let id =
                compile_toplevel(&read_one(src).unwrap(), &mut ex, &store, &mut globals, &opts)
                    .unwrap();
            let c = store.chunk(id);
            let checks: Vec<Check> = c
                .instrs
                .iter()
                .filter_map(|i| match i {
                    Instr::Call { check, .. } => Some(*check),
                    _ => None,
                })
                .collect();
            assert_eq!(checks, vec![expect], "stable={stable}");
        }
    }

    #[test]
    fn stable_primitive_bindings_keeps_checks_for_closure_calls() {
        // The body calls `f`, a global *not* bound to a primitive, so the
        // analysis must leave the check in place even with the flag on.
        let store = CodeStore::new();
        let mut globals = Globals::new();
        crate::primitives::install(&mut globals);
        let mut ex = Expander::new();
        let opts = CompileOptions {
            policy: CheckPolicy::Elide,
            stable_primitive_bindings: true,
            ..CompileOptions::default()
        };
        let id = compile_toplevel(
            &read_one("(g (let ((t 1)) (f t)))").unwrap(),
            &mut ex,
            &store,
            &mut globals,
            &opts,
        )
        .unwrap();
        let c = store.chunk(id);
        let checks: Vec<Check> = c
            .instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Call { check, .. } => Some(*check),
                _ => None,
            })
            .collect();
        assert_eq!(checks, vec![Check::Yes], "non-primitive callee keeps its check");
    }

    #[test]
    fn if_compiles_with_patched_jumps() {
        let (store, _, id) = compile("(if #t 1 2)");
        let c = store.chunk(id);
        assert!(matches!(c.instrs[0], Instr::True));
        let Instr::JumpIfFalse(t) = c.instrs[1] else { panic!("{:?}", c.instrs) };
        // In tail position both arms end with Return; the false target is
        // past the then-arm.
        assert!(matches!(c.instrs[t as usize], Instr::Fix(2)));
    }

    #[test]
    fn frame_bound_violation_is_a_compile_error() {
        let args = (0..70).map(|i| i.to_string()).collect::<Vec<_>>().join(" ");
        let store = CodeStore::new();
        let mut globals = Globals::new();
        let mut ex = Expander::new();
        let opts = CompileOptions { policy: CheckPolicy::Elide, ..CompileOptions::default() };
        let err = compile_toplevel(
            &read_one(&format!("(f {args})")).unwrap(),
            &mut ex,
            &store,
            &mut globals,
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, SchemeError::Compile { .. }));
    }

    #[test]
    fn frame_slots_are_recorded_for_e14() {
        let (store, _, id) = compile("(f (g 1 2) (h 3))");
        let c = store.chunk(id);
        assert!(c.frame_slots >= 5, "frame slots: {}", c.frame_slots);
    }
}
