//! The reader: tokens → s-expression [`Value`]s.

use crate::error::{SchemeError, SourcePos};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::Value;
use std::cell::RefCell;
use std::rc::Rc;

/// Reads every datum in `src`.
///
/// # Errors
///
/// [`SchemeError::Lex`] or [`SchemeError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// use segstack_scheme::read_all;
/// let data = read_all("(a b) 42")?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data[1].to_string(), "42");
/// assert_eq!(data[0].to_string(), "(a b)");
/// # Ok::<(), segstack_scheme::SchemeError>(())
/// ```
pub fn read_all(src: &str) -> Result<Vec<Value>, SchemeError> {
    let tokens = tokenize(src)?;
    let mut r = Reader { tokens, i: 0 };
    let mut out = Vec::new();
    while !r.at_end() {
        out.push(r.datum()?);
    }
    Ok(out)
}

/// Reads exactly one datum from `src`.
///
/// # Errors
///
/// As [`read_all`], plus a parse error when `src` holds zero or more than
/// one datum.
pub fn read_one(src: &str) -> Result<Value, SchemeError> {
    let all = read_all(src)?;
    match <[Value; 1]>::try_from(all) {
        Ok([v]) => Ok(v),
        Err(v) => Err(SchemeError::Parse {
            pos: None,
            message: format!("expected exactly one datum, found {}", v.len()),
        }),
    }
}

struct Reader {
    tokens: Vec<Token>,
    i: usize,
}

impl Reader {
    fn at_end(&self) -> bool {
        self.i >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.i)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn err(&self, pos: Option<SourcePos>, message: impl Into<String>) -> SchemeError {
        SchemeError::Parse { pos, message: message.into() }
    }

    fn datum(&mut self) -> Result<Value, SchemeError> {
        let Some(tok) = self.bump() else {
            return Err(self.err(None, "unexpected end of input"));
        };
        let pos = Some(tok.pos);
        match tok.kind {
            TokenKind::Fixnum(n) => Ok(Value::Fixnum(n)),
            TokenKind::Flonum(x) => Ok(Value::Flonum(x)),
            TokenKind::Bool(b) => Ok(Value::Bool(b)),
            TokenKind::Char(c) => Ok(Value::Char(c)),
            TokenKind::Str(s) => Ok(Value::Str(Rc::new(RefCell::new(s)))),
            TokenKind::Ident(name) => Ok(Value::sym(&name)),
            TokenKind::Quote => self.abbrev("quote"),
            TokenKind::Quasiquote => self.abbrev("quasiquote"),
            TokenKind::Unquote => self.abbrev("unquote"),
            TokenKind::UnquoteSplicing => self.abbrev("unquote-splicing"),
            TokenKind::LParen => self.list_tail(pos),
            TokenKind::VecOpen => {
                let mut items = Vec::new();
                loop {
                    match self.peek() {
                        None => return Err(self.err(pos, "unterminated vector literal")),
                        Some(t) if t.kind == TokenKind::RParen => {
                            self.bump();
                            return Ok(Value::Vector(Rc::new(RefCell::new(items))));
                        }
                        Some(t) if t.kind == TokenKind::Dot => {
                            return Err(self.err(Some(t.pos), "dot not allowed in vector"))
                        }
                        Some(_) => items.push(self.datum()?),
                    }
                }
            }
            TokenKind::RParen => Err(self.err(pos, "unexpected )")),
            TokenKind::Dot => Err(self.err(pos, "unexpected .")),
        }
    }

    fn abbrev(&mut self, head: &str) -> Result<Value, SchemeError> {
        let inner = self.datum()?;
        Ok(Value::list([Value::sym(head), inner]))
    }

    /// Parses the remainder of a list after the opening paren.
    fn list_tail(&mut self, open_pos: Option<SourcePos>) -> Result<Value, SchemeError> {
        let mut items = Vec::new();
        loop {
            match self.peek() {
                None => return Err(self.err(open_pos, "unterminated list")),
                Some(t) if t.kind == TokenKind::RParen => {
                    self.bump();
                    return Ok(Value::list(items));
                }
                Some(t) if t.kind == TokenKind::Dot => {
                    let dot_pos = Some(t.pos);
                    self.bump();
                    if items.is_empty() {
                        return Err(self.err(dot_pos, "dot with no preceding datum"));
                    }
                    let tail = self.datum()?;
                    match self.bump() {
                        Some(t) if t.kind == TokenKind::RParen => {
                            let mut out = tail;
                            for v in items.into_iter().rev() {
                                out = Value::cons(v, out);
                            }
                            return Ok(out);
                        }
                        _ => return Err(self.err(dot_pos, "expected ) after dotted tail")),
                    }
                }
                Some(_) => items.push(self.datum()?),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(src: &str) -> String {
        read_one(src).unwrap().to_string()
    }

    #[test]
    fn atoms() {
        assert_eq!(rt("42"), "42");
        assert_eq!(rt("-2.5"), "-2.5");
        assert_eq!(rt("#t"), "#t");
        assert_eq!(rt("#\\a"), "#\\a");
        assert_eq!(rt("\"s\""), "\"s\"");
        assert_eq!(rt("foo"), "foo");
    }

    #[test]
    fn lists_and_nesting() {
        assert_eq!(rt("()"), "()");
        assert_eq!(rt("(1 2 3)"), "(1 2 3)");
        assert_eq!(rt("(a (b c) d)"), "(a (b c) d)");
        assert_eq!(rt("[a [b]]"), "(a (b))");
    }

    #[test]
    fn dotted_pairs() {
        assert_eq!(rt("(1 . 2)"), "(1 . 2)");
        assert_eq!(rt("(1 2 . 3)"), "(1 2 . 3)");
        assert_eq!(rt("(1 . (2 . ()))"), "(1 2)");
    }

    #[test]
    fn quote_abbreviations() {
        assert_eq!(rt("'a"), "(quote a)");
        assert_eq!(rt("`a"), "(quasiquote a)");
        assert_eq!(rt(",a"), "(unquote a)");
        assert_eq!(rt(",@a"), "(unquote-splicing a)");
        assert_eq!(rt("''a"), "(quote (quote a))");
    }

    #[test]
    fn vectors() {
        assert_eq!(rt("#(1 2 3)"), "#(1 2 3)");
        assert_eq!(rt("#()"), "#()");
        assert_eq!(rt("#(a #(b))"), "#(a #(b))");
    }

    #[test]
    fn read_all_multiple() {
        let data = read_all("1 (2) three").unwrap();
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn read_one_arity() {
        assert!(read_one("").is_err());
        assert!(read_one("1 2").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(read_all("(").is_err());
        assert!(read_all(")").is_err());
        assert!(read_all("(1 . )").is_err());
        assert!(read_all("(. 2)").is_err());
        assert!(read_all("(1 . 2 3)").is_err());
        assert!(read_all("#(1 . 2)").is_err());
        assert!(read_all("'").is_err());
    }

    #[test]
    fn print_read_round_trip() {
        for src in ["(a (b . c) #(1 \"x\") 2.5 #\\z)", "(quote (1 2))", "(((())))"] {
            let v = read_one(src).unwrap();
            let printed = v.to_string();
            let v2 = read_one(&printed).unwrap();
            assert_eq!(v, v2, "round-trip of {src}");
        }
    }
}
