//! The expander: s-expressions → core forms.
//!
//! Rewrites every derived form into the eight core forms of [`Ast`]:
//! `let`/`let*`/`letrec`/named `let` become lambda applications, `cond`,
//! `case`, `and`, `or`, `when`, `unless` become `if` trees, `do` becomes a
//! recursive lambda, quasiquotation becomes `cons`/`append`/`list->vector`
//! calls, and internal defines become a `letrec*`-style binding block.
//!
//! Keywords are only recognized when not shadowed by a lexical binding, so
//! `(let ((if list)) (if 1 2 3))` means what R3RS says it means.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use crate::ast::{Ast, AstLambda, LambdaId};
use crate::error::SchemeError;
use crate::intern::Symbol;
use crate::macros::MacroDef;
use crate::value::Value;

/// Expands one top-level datum into core forms.
///
/// # Errors
///
/// [`SchemeError::Compile`] on malformed special forms.
///
/// # Examples
///
/// ```
/// use segstack_scheme::{expand::Expander, read_one};
/// let mut ex = Expander::new();
/// let ast = ex.expand_toplevel(&read_one("(let ((x 1)) x)")?)?;
/// // `let` became ((lambda (x) x) 1)
/// assert!(matches!(ast, segstack_scheme::ast::Ast::Call(..)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Expander {
    next_lambda: u32,
    next_gensym: u32,
    macros: HashMap<Symbol, MacroDef>,
    macro_depth: u32,
}

/// Lexically bound names, used to suppress shadowed keywords.
type Scope = HashSet<Symbol>;

impl Expander {
    /// Creates an expander.
    pub fn new() -> Self {
        Expander::default()
    }

    /// Expands a top-level datum (definitions allowed).
    ///
    /// # Errors
    ///
    /// [`SchemeError::Compile`] on malformed input.
    pub fn expand_toplevel(&mut self, datum: &Value) -> Result<Ast, SchemeError> {
        self.macro_depth = 0;
        self.expand_toplevel_inner(datum)
    }

    fn expand_toplevel_inner(&mut self, datum: &Value) -> Result<Ast, SchemeError> {
        let scope = Scope::new();
        if let Some((head, rest)) = self.special_head(datum, &scope) {
            match head.as_str().as_str() {
                "define" => return self.expand_define(&rest, &scope),
                "define-syntax" => {
                    let [name, spec] = self.exactly::<2>("define-syntax", rest)?;
                    let Value::Sym(name) = name else {
                        return Err(self.err(format!("define-syntax: bad name {name}")));
                    };
                    let def = MacroDef::parse(&spec)?;
                    self.macros.insert(name, def);
                    return Ok(Ast::unspecified());
                }
                _ if self.macros.contains_key(&head) => {
                    let expanded = self.apply_macro(head, datum)?;
                    return self.expand_toplevel_inner(&expanded);
                }
                "begin" => {
                    // Top-level begin splices: each form may define.
                    let mut out = Vec::new();
                    for d in &rest {
                        out.push(self.expand_toplevel_inner(d)?);
                    }
                    return Ok(match out.len() {
                        0 => Ast::unspecified(),
                        1 => out.into_iter().next().unwrap(),
                        _ => Ast::Begin(out),
                    });
                }
                _ => {}
            }
        }
        self.expand(datum, &scope)
    }

    fn err(&self, msg: impl Into<String>) -> SchemeError {
        SchemeError::compile(msg.into())
    }

    /// Expands one macro use. The counter accumulates across the whole
    /// top-level expansion (it is reset per [`Expander::expand_toplevel`]),
    /// guarding against divergent self-reproducing macros.
    fn apply_macro(&mut self, name: Symbol, form: &Value) -> Result<Value, SchemeError> {
        self.macro_depth += 1;
        if self.macro_depth > 500 {
            return Err(
                self.err(format!("macro expansion of {name} exceeds 500 steps (divergent macro?)"))
            );
        }
        self.macros[&name].expand(form)
    }

    fn gensym(&mut self, hint: &str) -> Symbol {
        self.next_gensym += 1;
        // The leading space makes gensyms unutterable in source text.
        Symbol::intern(&format!(" {hint}{}", self.next_gensym))
    }

    fn lambda_id(&mut self) -> LambdaId {
        self.next_lambda += 1;
        LambdaId(self.next_lambda)
    }

    /// If `datum` is a list headed by an unshadowed keyword-position
    /// symbol, returns the head's name and the remaining forms.
    fn special_head(&self, datum: &Value, scope: &Scope) -> Option<(Symbol, Vec<Value>)> {
        let Value::Pair(_) = datum else { return None };
        let items = datum.list_to_vec().ok()?;
        let (first, rest) = items.split_first()?;
        let Value::Sym(s) = first else { return None };
        if scope.contains(s) {
            return None;
        }
        Some((*s, rest.to_vec()))
    }

    /// Expands an expression (definitions not allowed here).
    fn expand(&mut self, datum: &Value, scope: &Scope) -> Result<Ast, SchemeError> {
        match datum {
            Value::Sym(s) => Ok(Ast::Var(*s)),
            Value::Fixnum(_)
            | Value::Flonum(_)
            | Value::Bool(_)
            | Value::Char(_)
            | Value::Str(_)
            | Value::Vector(_)
            | Value::Unspecified
            // Runtime values spliced into constructed source (e.g. a
            // continuation inside a datum handed to `eval`) are literals.
            | Value::Closure(_)
            | Value::Primitive(_)
            | Value::Kont(_)
            | Value::Port(_) => Ok(Ast::Quote(datum.clone())),
            Value::Nil => Err(self.err("illegal empty combination ()")),
            Value::Pair(_) => self.expand_form(datum, scope),
            other => Err(self.err(format!("cannot evaluate {other}"))),
        }
    }

    fn expand_form(&mut self, datum: &Value, scope: &Scope) -> Result<Ast, SchemeError> {
        if let Some((head, rest)) = self.special_head(datum, scope) {
            match head.as_str().as_str() {
                "quote" => {
                    let [x] = self.exactly::<1>("quote", rest)?;
                    return Ok(Ast::Quote(x));
                }
                "if" => return self.expand_if(rest, scope),
                "set!" => {
                    let [name, value] = self.exactly::<2>("set!", rest)?;
                    let Value::Sym(s) = name else {
                        return Err(self.err(format!("set!: not an identifier: {name}")));
                    };
                    return Ok(Ast::Set(s, Box::new(self.expand(&value, scope)?)));
                }
                "lambda" => return self.expand_lambda(rest, scope, None),
                "begin" => {
                    if rest.is_empty() {
                        return Ok(Ast::unspecified());
                    }
                    return self.expand_body(&rest, scope);
                }
                "define" => {
                    return Err(
                        self.err("define is only allowed at top level or at the head of a body")
                    )
                }
                "let" => return self.expand_let(rest, scope),
                "let*" => return self.expand_let_star(rest, scope),
                "letrec" | "letrec*" => return self.expand_letrec(rest, scope),
                "cond" => return self.expand_cond(rest, scope),
                "case" => return self.expand_case(rest, scope),
                "and" => return self.expand_and(rest, scope),
                "or" => return self.expand_or(rest, scope),
                "when" => return self.expand_when_unless(rest, scope, true),
                "unless" => return self.expand_when_unless(rest, scope, false),
                "do" => return self.expand_do(rest, scope),
                "delay" => {
                    // (delay e) → (make-promise (lambda () e))
                    let [e] = self.exactly::<1>("delay", rest)?;
                    let body = self.expand(&e, scope)?;
                    let thunk = Ast::Lambda(Rc::new(AstLambda {
                        id: self.lambda_id(),
                        params: vec![],
                        variadic: false,
                        body,
                        name: None,
                    }));
                    return Ok(Ast::Call(
                        Box::new(Ast::Var(Symbol::intern("make-promise"))),
                        vec![thunk],
                    ));
                }
                "quasiquote" => {
                    let [x] = self.exactly::<1>("quasiquote", rest)?;
                    let qq = self.quasi(&x, 1)?;
                    return self.expand(&qq, scope);
                }
                "unquote" | "unquote-splicing" => {
                    return Err(self.err(format!("{head} outside quasiquote")));
                }
                "define-syntax" => {
                    return Err(self.err("define-syntax is only allowed at top level"));
                }
                _ => {
                    if self.macros.contains_key(&head) {
                        let expanded = self.apply_macro(head, datum)?;
                        return self.expand(&expanded, scope);
                    }
                }
            }
        }
        // An ordinary combination.
        let items =
            datum.list_to_vec().map_err(|_| self.err(format!("improper combination: {datum}")))?;
        let mut it = items.into_iter();
        let op = self.expand(&it.next().expect("non-empty by construction"), scope)?;
        let args = it.map(|d| self.expand(&d, scope)).collect::<Result<Vec<_>, _>>()?;
        Ok(Ast::Call(Box::new(op), args))
    }

    fn exactly<const N: usize>(
        &self,
        form: &str,
        rest: Vec<Value>,
    ) -> Result<[Value; N], SchemeError> {
        <[Value; N]>::try_from(rest)
            .map_err(|v| self.err(format!("{form}: expected {N} forms, got {}", v.len())))
    }

    fn expand_if(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        match rest.len() {
            2 | 3 => {}
            n => return Err(self.err(format!("if: expected 2 or 3 forms, got {n}"))),
        }
        let test = self.expand(&rest[0], scope)?;
        let then = self.expand(&rest[1], scope)?;
        let els = match rest.get(2) {
            Some(e) => self.expand(e, scope)?,
            None => Ast::unspecified(),
        };
        Ok(Ast::If(Box::new(test), Box::new(then), Box::new(els)))
    }

    /// Parses a lambda parameter list: `(a b)`, `(a b . r)`, or `r`.
    fn param_list(&self, formals: &Value) -> Result<(Vec<Symbol>, bool), SchemeError> {
        let mut params = Vec::new();
        let mut cur = formals.clone();
        loop {
            match cur {
                Value::Nil => return Ok((params, false)),
                Value::Sym(s) => {
                    params.push(s);
                    return Ok((params, true));
                }
                Value::Pair(p) => {
                    let car = p.car.borrow().clone();
                    let Value::Sym(s) = car else {
                        return Err(self.err(format!("lambda: bad parameter: {car}")));
                    };
                    params.push(s);
                    let next = p.cdr.borrow().clone();
                    cur = next;
                }
                other => return Err(self.err(format!("lambda: bad parameter list tail: {other}"))),
            }
        }
    }

    fn expand_lambda(
        &mut self,
        rest: Vec<Value>,
        scope: &Scope,
        name: Option<Symbol>,
    ) -> Result<Ast, SchemeError> {
        let Some((formals, body)) = rest.split_first() else {
            return Err(self.err("lambda: missing parameter list"));
        };
        if body.is_empty() {
            return Err(self.err("lambda: empty body"));
        }
        let (params, variadic) = self.param_list(formals)?;
        {
            let mut seen = HashSet::new();
            for p in &params {
                if !seen.insert(*p) {
                    return Err(self.err(format!("lambda: duplicate parameter {p}")));
                }
            }
        }
        let mut inner = scope.clone();
        inner.extend(params.iter().copied());
        let body = self.expand_body(body, &inner)?;
        Ok(Ast::Lambda(Rc::new(AstLambda { id: self.lambda_id(), params, variadic, body, name })))
    }

    /// Expands a body: leading internal defines become a `letrec*`-style
    /// block, the rest a sequence.
    fn expand_body(&mut self, forms: &[Value], scope: &Scope) -> Result<Ast, SchemeError> {
        let mut defines: Vec<(Symbol, Value)> = Vec::new();
        let mut i = 0;
        while i < forms.len() {
            let Some((head, rest)) = self.special_head(&forms[i], scope) else { break };
            match head.as_str().as_str() {
                "define" => {
                    defines.push(self.parse_define(rest)?);
                    i += 1;
                }
                "begin"
                    if !rest.is_empty()
                        && rest.iter().all(|f| {
                            self.special_head(f, scope).is_some_and(|(h, _)| h.as_str() == "define")
                        }) =>
                {
                    for f in &rest {
                        let (_, r) = self.special_head(f, scope).expect("checked above");
                        defines.push(self.parse_define(r)?);
                    }
                    i += 1;
                }
                _ => break,
            }
        }
        let exprs = &forms[i..];
        if exprs.is_empty() {
            return Err(self.err("body has definitions but no expressions"));
        }
        if defines.is_empty() {
            let mut out = Vec::with_capacity(exprs.len());
            for e in exprs {
                out.push(self.expand(e, scope)?);
            }
            return Ok(if out.len() == 1 {
                out.into_iter().next().unwrap()
            } else {
                Ast::Begin(out)
            });
        }
        // ((lambda (v…) (set! v e)… body…) #unspecified…)
        let mut inner = scope.clone();
        inner.extend(defines.iter().map(|(s, _)| *s));
        let mut seq = Vec::new();
        for (name, value) in &defines {
            let value_ast = self.expand_named(value, &inner, Some(*name))?;
            seq.push(Ast::Set(*name, Box::new(value_ast)));
        }
        let mut tail = Vec::with_capacity(exprs.len());
        for e in exprs {
            tail.push(self.expand(e, &inner)?);
        }
        seq.extend(tail);
        let lambda = Ast::Lambda(Rc::new(AstLambda {
            id: self.lambda_id(),
            params: defines.iter().map(|(s, _)| *s).collect(),
            variadic: false,
            body: Ast::Begin(seq),
            name: None,
        }));
        let args = defines.iter().map(|_| Ast::unspecified()).collect();
        Ok(Ast::Call(Box::new(lambda), args))
    }

    /// Parses `(define name value)` / `(define (name . formals) body…)`
    /// into `(name, value-datum)` with procedure sugar resolved.
    fn parse_define(&mut self, rest: Vec<Value>) -> Result<(Symbol, Value), SchemeError> {
        let Some((target, value_forms)) = rest.split_first() else {
            return Err(self.err("define: missing name"));
        };
        match target {
            Value::Sym(s) => match value_forms.len() {
                0 => Ok((*s, Value::Unspecified)),
                1 => Ok((*s, value_forms[0].clone())),
                n => Err(self.err(format!("define: expected one value form, got {n}"))),
            },
            Value::Pair(p) => {
                // (define (name . formals) body…) → (define name (lambda formals body…))
                let name = p.car.borrow().clone();
                let Value::Sym(s) = name else {
                    return Err(self.err(format!("define: bad procedure name: {name}")));
                };
                let formals = p.cdr.borrow().clone();
                let mut lam = vec![Value::sym("lambda"), formals];
                lam.extend(value_forms.iter().cloned());
                Ok((s, Value::list(lam)))
            }
            other => Err(self.err(format!("define: bad target: {other}"))),
        }
    }

    fn expand_define(&mut self, rest: &[Value], scope: &Scope) -> Result<Ast, SchemeError> {
        let (name, value) = self.parse_define(rest.to_vec())?;
        let value_ast = self.expand_named(&value, scope, Some(name))?;
        Ok(Ast::Define(name, Box::new(value_ast)))
    }

    /// Expands `value`, attaching `name` if it is a lambda (diagnostics).
    fn expand_named(
        &mut self,
        value: &Value,
        scope: &Scope,
        name: Option<Symbol>,
    ) -> Result<Ast, SchemeError> {
        if let Some((head, rest)) = self.special_head(value, scope) {
            if head.as_str() == "lambda" {
                return self.expand_lambda(rest, scope, name);
            }
        }
        self.expand(value, scope)
    }

    /// Parses a binding list `((name init) …)`.
    fn bindings(&self, form: &Value) -> Result<Vec<(Symbol, Value)>, SchemeError> {
        let items =
            form.list_to_vec().map_err(|_| self.err(format!("bad binding list: {form}")))?;
        items
            .into_iter()
            .map(|b| {
                let pair = b.list_to_vec().map_err(|_| self.err(format!("bad binding: {b}")))?;
                match <[Value; 2]>::try_from(pair) {
                    Ok([Value::Sym(s), init]) => Ok((s, init)),
                    Ok([name, _]) => Err(self.err(format!("bad binding name: {name}"))),
                    Err(v) => Err(self.err(format!("bad binding of {} forms", v.len()))),
                }
            })
            .collect()
    }

    fn expand_let(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        // Named let: (let loop ((v i)…) body…)
        if let Some(Value::Sym(loop_name)) = rest.first() {
            let loop_name = *loop_name;
            let binds = self.bindings(&rest[1])?;
            let body = &rest[2..];
            if body.is_empty() {
                return Err(self.err("named let: empty body"));
            }
            // (letrec ((loop (lambda (v…) body…))) (loop i…))
            let lambda = {
                let mut inner = scope.clone();
                inner.insert(loop_name);
                let mut inner2 = inner.clone();
                inner2.extend(binds.iter().map(|(s, _)| *s));
                let body_ast = self.expand_body(body, &inner2)?;
                Ast::Lambda(Rc::new(AstLambda {
                    id: self.lambda_id(),
                    params: binds.iter().map(|(s, _)| *s).collect(),
                    variadic: false,
                    body: body_ast,
                    name: Some(loop_name),
                }))
            };
            let inits =
                binds.iter().map(|(_, i)| self.expand(i, scope)).collect::<Result<Vec<_>, _>>()?;
            // ((lambda (loop) (set! loop <lam>) (loop inits…)) #unspec)
            let call_loop = Ast::Call(Box::new(Ast::Var(loop_name)), inits);
            let outer = Ast::Lambda(Rc::new(AstLambda {
                id: self.lambda_id(),
                params: vec![loop_name],
                variadic: false,
                body: Ast::Begin(vec![Ast::Set(loop_name, Box::new(lambda)), call_loop]),
                name: None,
            }));
            return Ok(Ast::Call(Box::new(outer), vec![Ast::unspecified()]));
        }
        let Some((binds_form, body)) = rest.split_first() else {
            return Err(self.err("let: missing bindings"));
        };
        if body.is_empty() {
            return Err(self.err("let: empty body"));
        }
        let binds = self.bindings(binds_form)?;
        let mut inner = scope.clone();
        inner.extend(binds.iter().map(|(s, _)| *s));
        let body_ast = self.expand_body(body, &inner)?;
        let lambda = Ast::Lambda(Rc::new(AstLambda {
            id: self.lambda_id(),
            params: binds.iter().map(|(s, _)| *s).collect(),
            variadic: false,
            body: body_ast,
            name: None,
        }));
        let inits =
            binds.iter().map(|(_, i)| self.expand(i, scope)).collect::<Result<Vec<_>, _>>()?;
        Ok(Ast::Call(Box::new(lambda), inits))
    }

    fn expand_let_star(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        let Some((binds_form, body)) = rest.split_first() else {
            return Err(self.err("let*: missing bindings"));
        };
        let binds = self.bindings(binds_form)?;
        if binds.len() <= 1 {
            let mut forms = vec![binds_form.clone()];
            forms.extend(body.iter().cloned());
            return self.expand_let(forms, scope);
        }
        // (let ((v1 i1)) (let* rest body…))
        let (first, others) = binds.split_first().expect("len > 1");
        let rest_binds =
            Value::list(others.iter().map(|(s, i)| Value::list([Value::Sym(*s), i.clone()])));
        let mut inner_form = vec![Value::sym("let*"), rest_binds];
        inner_form.extend(body.iter().cloned());
        let outer_binds = Value::list([Value::list([Value::Sym(first.0), first.1.clone()])]);
        self.expand_let(vec![outer_binds, Value::list(inner_form)], scope)
    }

    fn expand_letrec(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        let Some((binds_form, body)) = rest.split_first() else {
            return Err(self.err("letrec: missing bindings"));
        };
        if body.is_empty() {
            return Err(self.err("letrec: empty body"));
        }
        let binds = self.bindings(binds_form)?;
        let mut inner = scope.clone();
        inner.extend(binds.iter().map(|(s, _)| *s));
        let mut seq = Vec::new();
        for (name, init) in &binds {
            let init_ast = self.expand_named(init, &inner, Some(*name))?;
            seq.push(Ast::Set(*name, Box::new(init_ast)));
        }
        let body_ast = self.expand_body(body, &inner)?;
        seq.push(body_ast);
        let lambda = Ast::Lambda(Rc::new(AstLambda {
            id: self.lambda_id(),
            params: binds.iter().map(|(s, _)| *s).collect(),
            variadic: false,
            body: Ast::Begin(seq),
            name: None,
        }));
        let args = binds.iter().map(|_| Ast::unspecified()).collect();
        Ok(Ast::Call(Box::new(lambda), args))
    }

    fn expand_cond(&mut self, clauses: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        let mut out = Ast::unspecified();
        for clause in clauses.into_iter().rev() {
            let parts =
                clause.list_to_vec().map_err(|_| self.err(format!("cond: bad clause {clause}")))?;
            let Some((test, body)) = parts.split_first() else {
                return Err(self.err("cond: empty clause"));
            };
            let is_else =
                matches!(test, Value::Sym(s) if s.as_str() == "else" && !scope.contains(s));
            if is_else {
                if body.is_empty() {
                    return Err(self.err("cond: empty else clause"));
                }
                out = self.expand_body(body, scope)?;
                continue;
            }
            if body.first().is_some_and(
                |b| matches!(b, Value::Sym(s) if s.as_str() == "=>" && !scope.contains(s)),
            ) {
                // (test => receiver): ((lambda (t) (if t (receiver t) else)) test)
                let [_, receiver] = self
                    .exactly::<2>("cond =>", body.to_vec())
                    .map_err(|_| self.err("cond: => clause needs exactly one receiver"))?;
                let t = self.gensym("t");
                let mut inner = scope.clone();
                inner.insert(t);
                let recv = self.expand(&receiver, &inner)?;
                let branch = Ast::If(
                    Box::new(Ast::Var(t)),
                    Box::new(Ast::Call(Box::new(recv), vec![Ast::Var(t)])),
                    Box::new(out),
                );
                let lambda = Ast::Lambda(Rc::new(AstLambda {
                    id: self.lambda_id(),
                    params: vec![t],
                    variadic: false,
                    body: branch,
                    name: None,
                }));
                out = Ast::Call(Box::new(lambda), vec![self.expand(test, scope)?]);
                continue;
            }
            let test_ast = self.expand(test, scope)?;
            if body.is_empty() {
                // (test): the test's value if true.
                let t = self.gensym("t");
                let branch = Ast::If(Box::new(Ast::Var(t)), Box::new(Ast::Var(t)), Box::new(out));
                let lambda = Ast::Lambda(Rc::new(AstLambda {
                    id: self.lambda_id(),
                    params: vec![t],
                    variadic: false,
                    body: branch,
                    name: None,
                }));
                out = Ast::Call(Box::new(lambda), vec![test_ast]);
            } else {
                let body_ast = self.expand_body(body, scope)?;
                out = Ast::If(Box::new(test_ast), Box::new(body_ast), Box::new(out));
            }
        }
        Ok(out)
    }

    fn expand_case(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        let Some((key, clauses)) = rest.split_first() else {
            return Err(self.err("case: missing key"));
        };
        // (let ((t key)) (cond ((memv t '(d…)) body…) … (else …)))
        let t = self.gensym("k");
        let mut inner = scope.clone();
        inner.insert(t);
        let mut out = Ast::unspecified();
        for clause in clauses.iter().rev() {
            let parts =
                clause.list_to_vec().map_err(|_| self.err(format!("case: bad clause {clause}")))?;
            let Some((data, body)) = parts.split_first() else {
                return Err(self.err("case: empty clause"));
            };
            if body.is_empty() {
                return Err(self.err("case: clause without body"));
            }
            let body_ast = self.expand_body(body, &inner)?;
            let is_else =
                matches!(data, Value::Sym(s) if s.as_str() == "else" && !scope.contains(s));
            if is_else {
                out = body_ast;
                continue;
            }
            let data_list =
                data.list_to_vec().map_err(|_| self.err(format!("case: bad datum list {data}")))?;
            let test = Ast::Call(
                Box::new(Ast::Var(Symbol::intern("memv"))),
                vec![Ast::Var(t), Ast::Quote(Value::list(data_list))],
            );
            out = Ast::If(Box::new(test), Box::new(body_ast), Box::new(out));
        }
        let lambda = Ast::Lambda(Rc::new(AstLambda {
            id: self.lambda_id(),
            params: vec![t],
            variadic: false,
            body: out,
            name: None,
        }));
        Ok(Ast::Call(Box::new(lambda), vec![self.expand(key, scope)?]))
    }

    fn expand_and(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        match rest.split_first() {
            None => Ok(Ast::Quote(Value::Bool(true))),
            Some((only, [])) => self.expand(only, scope),
            Some((first, others)) => {
                let first_ast = self.expand(first, scope)?;
                let rest_ast = self.expand_and(others.to_vec(), scope)?;
                Ok(Ast::If(
                    Box::new(first_ast),
                    Box::new(rest_ast),
                    Box::new(Ast::Quote(Value::Bool(false))),
                ))
            }
        }
    }

    fn expand_or(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        match rest.split_first() {
            None => Ok(Ast::Quote(Value::Bool(false))),
            Some((only, [])) => self.expand(only, scope),
            Some((first, others)) => {
                // ((lambda (t) (if t t (or …))) first)
                let t = self.gensym("t");
                let mut inner = scope.clone();
                inner.insert(t);
                let rest_ast = self.expand_or(others.to_vec(), &inner)?;
                let branch =
                    Ast::If(Box::new(Ast::Var(t)), Box::new(Ast::Var(t)), Box::new(rest_ast));
                let lambda = Ast::Lambda(Rc::new(AstLambda {
                    id: self.lambda_id(),
                    params: vec![t],
                    variadic: false,
                    body: branch,
                    name: None,
                }));
                Ok(Ast::Call(Box::new(lambda), vec![self.expand(first, scope)?]))
            }
        }
    }

    fn expand_when_unless(
        &mut self,
        rest: Vec<Value>,
        scope: &Scope,
        when: bool,
    ) -> Result<Ast, SchemeError> {
        let form = if when { "when" } else { "unless" };
        let Some((test, body)) = rest.split_first() else {
            return Err(self.err(format!("{form}: missing test")));
        };
        if body.is_empty() {
            return Err(self.err(format!("{form}: empty body")));
        }
        let test_ast = self.expand(test, scope)?;
        let body_ast = self.expand_body(body, scope)?;
        Ok(if when {
            Ast::If(Box::new(test_ast), Box::new(body_ast), Box::new(Ast::unspecified()))
        } else {
            Ast::If(Box::new(test_ast), Box::new(Ast::unspecified()), Box::new(body_ast))
        })
    }

    fn expand_do(&mut self, rest: Vec<Value>, scope: &Scope) -> Result<Ast, SchemeError> {
        if rest.len() < 2 {
            return Err(self.err("do: expected bindings and a test clause"));
        }
        let specs = rest[0].list_to_vec().map_err(|_| self.err("do: bad binding list"))?;
        let mut vars = Vec::new();
        for spec in &specs {
            let parts =
                spec.list_to_vec().map_err(|_| self.err(format!("do: bad binding {spec}")))?;
            match parts.as_slice() {
                [Value::Sym(s), init] => vars.push((*s, init.clone(), Value::Sym(*s))),
                [Value::Sym(s), init, step] => vars.push((*s, init.clone(), step.clone())),
                _ => return Err(self.err(format!("do: bad binding {spec}"))),
            }
        }
        let test_clause = rest[1].list_to_vec().map_err(|_| self.err("do: bad test clause"))?;
        let Some((test, result)) = test_clause.split_first() else {
            return Err(self.err("do: empty test clause"));
        };
        let body = &rest[2..];
        // (let loop ((v init)…)
        //   (if test (begin result…) (begin body… (loop step…))))
        let loop_name = self.gensym("do-loop");
        let mut inner = scope.clone();
        inner.insert(loop_name);
        inner.extend(vars.iter().map(|(s, _, _)| *s));

        let test_ast = self.expand(test, &inner)?;
        let result_ast =
            if result.is_empty() { Ast::unspecified() } else { self.expand_body(result, &inner)? };
        let steps = vars
            .iter()
            .map(|(_, _, step)| self.expand(step, &inner))
            .collect::<Result<Vec<_>, _>>()?;
        let recur = Ast::Call(Box::new(Ast::Var(loop_name)), steps);
        let mut iter_seq = Vec::new();
        for b in body {
            iter_seq.push(self.expand(b, &inner)?);
        }
        iter_seq.push(recur);
        let loop_body = Ast::If(
            Box::new(test_ast),
            Box::new(result_ast),
            Box::new(if iter_seq.len() == 1 {
                iter_seq.into_iter().next().unwrap()
            } else {
                Ast::Begin(iter_seq)
            }),
        );
        let lambda = Ast::Lambda(Rc::new(AstLambda {
            id: self.lambda_id(),
            params: vars.iter().map(|(s, _, _)| *s).collect(),
            variadic: false,
            body: loop_body,
            name: Some(loop_name),
        }));
        let inits = vars
            .iter()
            .map(|(_, init, _)| self.expand(init, scope))
            .collect::<Result<Vec<_>, _>>()?;
        let call_loop = Ast::Call(Box::new(Ast::Var(loop_name)), inits);
        let outer = Ast::Lambda(Rc::new(AstLambda {
            id: self.lambda_id(),
            params: vec![loop_name],
            variadic: false,
            body: Ast::Begin(vec![Ast::Set(loop_name, Box::new(lambda)), call_loop]),
            name: None,
        }));
        Ok(Ast::Call(Box::new(outer), vec![Ast::unspecified()]))
    }

    /// Quasiquote expansion (R3RS, with nesting) producing a plain datum to
    /// re-expand.
    fn quasi(&mut self, datum: &Value, depth: u32) -> Result<Value, SchemeError> {
        match datum {
            Value::Pair(p) => {
                let car = p.car.borrow().clone();
                let cdr = p.cdr.borrow().clone();
                // (unquote e)
                if let Value::Sym(s) = &car {
                    if s.as_str() == "unquote" {
                        let e = cdr.car()?;
                        return if depth == 1 {
                            Ok(e)
                        } else {
                            Ok(Value::list([
                                Value::sym("list"),
                                Value::list([Value::sym("quote"), Value::sym("unquote")]),
                                self.quasi(&e, depth - 1)?,
                            ]))
                        };
                    }
                    if s.as_str() == "quasiquote" {
                        let e = cdr.car()?;
                        return Ok(Value::list([
                            Value::sym("list"),
                            Value::list([Value::sym("quote"), Value::sym("quasiquote")]),
                            self.quasi(&e, depth + 1)?,
                        ]));
                    }
                }
                // ((unquote-splicing e) . d)
                if let Value::Pair(inner) = &car {
                    let icar = inner.car.borrow().clone();
                    if matches!(&icar, Value::Sym(s) if s.as_str() == "unquote-splicing") {
                        let e = inner.cdr.borrow().car()?;
                        if depth == 1 {
                            return Ok(Value::list([
                                Value::sym("append"),
                                e,
                                self.quasi(&cdr, depth)?,
                            ]));
                        }
                    }
                }
                Ok(Value::list([
                    Value::sym("cons"),
                    self.quasi(&car, depth)?,
                    self.quasi(&cdr, depth)?,
                ]))
            }
            Value::Vector(items) => {
                let as_list = Value::list(items.borrow().iter().cloned());
                Ok(Value::list([Value::sym("list->vector"), self.quasi(&as_list, depth)?]))
            }
            other => Ok(Value::list([Value::sym("quote"), other.clone()])),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_one;

    fn expand(src: &str) -> Ast {
        Expander::new().expand_toplevel(&read_one(src).unwrap()).unwrap()
    }

    fn expand_err(src: &str) -> SchemeError {
        Expander::new().expand_toplevel(&read_one(src).unwrap()).unwrap_err()
    }

    #[test]
    fn atoms_and_quote() {
        assert!(matches!(expand("42"), Ast::Quote(Value::Fixnum(42))));
        assert!(matches!(expand("x"), Ast::Var(_)));
        assert!(matches!(expand("'(1 2)"), Ast::Quote(_)));
        assert!(matches!(expand("\"s\""), Ast::Quote(_)));
    }

    #[test]
    fn if_two_and_three_arm() {
        assert!(matches!(expand("(if 1 2 3)"), Ast::If(..)));
        let Ast::If(_, _, els) = expand("(if 1 2)") else { panic!() };
        assert!(matches!(*els, Ast::Quote(Value::Unspecified)));
        assert!(matches!(expand_err("(if 1)"), SchemeError::Compile { .. }));
    }

    #[test]
    fn lambda_forms() {
        let Ast::Lambda(l) = expand("(lambda (a b) a)") else { panic!() };
        assert_eq!(l.params.len(), 2);
        assert!(!l.variadic);
        let Ast::Lambda(l) = expand("(lambda (a . r) a)") else { panic!() };
        assert_eq!(l.params.len(), 2);
        assert!(l.variadic);
        let Ast::Lambda(l) = expand("(lambda args args)") else { panic!() };
        assert_eq!(l.params.len(), 1);
        assert!(l.variadic);
        assert!(matches!(expand_err("(lambda (a a) a)"), SchemeError::Compile { .. }));
        assert!(matches!(expand_err("(lambda (a))"), SchemeError::Compile { .. }));
    }

    #[test]
    fn define_sugar() {
        let Ast::Define(name, value) = expand("(define (f x) x)") else { panic!() };
        assert_eq!(name, Symbol::intern("f"));
        let Ast::Lambda(l) = *value else { panic!() };
        assert_eq!(l.name, Some(Symbol::intern("f")));
        assert_eq!(l.params.len(), 1);
    }

    #[test]
    fn let_becomes_lambda_application() {
        let Ast::Call(op, args) = expand("(let ((x 1) (y 2)) x)") else { panic!() };
        assert!(matches!(*op, Ast::Lambda(_)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn named_let_and_do_expand_to_loops() {
        assert!(matches!(
            expand("(let loop ((i 0)) (if (< i 10) (loop (+ i 1)) i))"),
            Ast::Call(..)
        ));
        assert!(matches!(expand("(do ((i 0 (+ i 1))) ((= i 10) i))"), Ast::Call(..)));
    }

    #[test]
    fn shadowed_keywords_are_ordinary_variables() {
        // `if` bound by the lambda: the inner (if 1 2 3) is a call.
        let Ast::Lambda(l) = expand("(lambda (if) (if 1 2 3))") else { panic!() };
        assert!(matches!(&l.body, Ast::Call(..)));
    }

    #[test]
    fn and_or_expand() {
        assert!(matches!(expand("(and)"), Ast::Quote(Value::Bool(true))));
        assert!(matches!(expand("(or)"), Ast::Quote(Value::Bool(false))));
        assert!(matches!(expand("(and 1 2)"), Ast::If(..)));
        assert!(matches!(expand("(or 1 2)"), Ast::Call(..)));
    }

    #[test]
    fn cond_with_else_and_arrow() {
        assert!(matches!(expand("(cond (#t 1) (else 2))"), Ast::If(..)));
        assert!(matches!(expand("(cond ((assv 1 x) => cdr) (else 2))"), Ast::Call(..)));
        assert!(matches!(expand("(cond (1))"), Ast::Call(..)));
    }

    #[test]
    fn internal_defines_become_a_binding_block() {
        let src = "(lambda (x) (define y 1) (define (z) y) (z))";
        let Ast::Lambda(l) = expand(src) else { panic!() };
        let Ast::Call(inner_op, inner_args) = &l.body else { panic!("body: {:?}", l.body) };
        assert!(matches!(&**inner_op, Ast::Lambda(_)));
        assert_eq!(inner_args.len(), 2);
    }

    #[test]
    fn toplevel_begin_splices_defines() {
        let src = "(begin (define a 1) (define b 2))";
        let Ast::Begin(forms) = expand(src) else { panic!() };
        assert!(forms.iter().all(|f| matches!(f, Ast::Define(..))));
    }

    #[test]
    fn define_in_expression_position_fails() {
        assert!(matches!(expand_err("(+ 1 (define x 2))"), SchemeError::Compile { .. }));
    }

    #[test]
    fn quasiquote_expansion() {
        // `(1 ,x ,@ys 2) → (cons '1 (cons x (append ys (cons '2 '()))))
        let ast = expand("`(1 ,x ,@ys 2)");
        assert!(matches!(ast, Ast::Call(..)));
        // Nested quasiquote keeps inner unquotes quoted.
        assert!(matches!(expand("``(a ,(b))"), Ast::Call(..)));
        // Vectors.
        assert!(matches!(expand("`#(1 ,x)"), Ast::Call(..)));
    }

    #[test]
    fn empty_combination_is_an_error() {
        assert!(matches!(expand_err("()"), SchemeError::Compile { .. }));
    }

    #[test]
    fn case_expands_to_memv_chain() {
        assert!(matches!(expand("(case 1 ((1 2) 'a) (else 'b))"), Ast::Call(..)));
    }

    #[test]
    fn when_unless() {
        assert!(matches!(expand("(when 1 2 3)"), Ast::If(..)));
        assert!(matches!(expand("(unless 1 2)"), Ast::If(..)));
    }
}
