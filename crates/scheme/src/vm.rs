//! The bytecode interpreter.
//!
//! An accumulator machine whose activation records live entirely in a
//! pluggable [`ControlStack`]: the paper's segmented stack or any of the
//! four baseline strategies. The VM follows the paper's protocol — staged
//! partial frames, displacement-adjusted frame pointer, return address at
//! the frame base, proper tail calls by frame reuse — and implements
//! `call/cc` as: perform the call, then capture (the sealed segment's
//! return address is the `call/cc` call's return point).
//!
//! A Chez-style engine timer is included: `(set-timer ticks)` arms a
//! countdown decremented at every call; when it reaches zero the installed
//! handler is invoked as if inserted at the pending call, which re-executes
//! after the handler returns. This is what `segstack-control` builds
//! engines from.

use std::rc::Rc;

use segstack_core::{CodeAddr, ControlStack, ReturnAddress};

use crate::code::{Check, Chunk, CodeStore, Globals, IcTarget, Instr};
use crate::codegen::{compile_toplevel, CompileOptions};
use crate::error::SchemeError;
use crate::expand::Expander;
use crate::intern::Symbol;
use crate::primitives::{arity_ok, def_of, fast_op, FastOp, PrimCtx, PrimKind, PRIMITIVES};
use crate::value::{Closure, Primitive, Value};

/// Primitive calls with at most this many arguments marshal them through a
/// stack-allocated buffer instead of a fresh `Vec` — fixnum/bool-heavy
/// loops call `+`/`<`/`car` millions of times and the per-call allocation
/// dominates otherwise.
const PRIM_ARG_BUF: usize = 8;

/// VM execution limits and knobs.
#[derive(Clone, Debug)]
pub struct VmOptions {
    /// Abort after this many instructions (`None` = unlimited). A guard
    /// for tests and property-based fuzzing.
    pub max_steps: Option<u64>,
    /// Frame bound used to validate `apply` spreads; must match the
    /// control stack's configured frame bound.
    pub frame_bound: usize,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions { max_steps: None, frame_bound: 64 }
    }
}

/// Engine-timer state carried across top-level evaluations.
#[derive(Clone, Debug, Default)]
pub struct TimerState {
    /// Remaining ticks; 0 = disarmed.
    pub fuel: i64,
    /// The installed interrupt handler (a procedure, or unspecified).
    pub handler: Value,
}

/// Runs chunk `entry` to completion.
///
/// # Errors
///
/// Any [`SchemeError`] raised by the program, plus stack errors and the
/// step-budget guard.
#[allow(clippy::too_many_arguments)]
pub fn run<S: ControlStack<Value> + ?Sized>(
    stack: &mut S,
    store: &CodeStore,
    globals: &mut Globals,
    out: &mut String,
    timer: &mut TimerState,
    opts: &VmOptions,
    expander: &mut Expander,
    copts: &CompileOptions,
    entry: u32,
) -> Result<Value, SchemeError> {
    let chunk = store.chunk(entry);
    let mut vm = Vm {
        stack,
        store,
        globals,
        out,
        timer,
        opts,
        expander,
        copts,
        chunk,
        chunk_id: entry,
        pc: 0,
        acc: Value::Unspecified,
        steps: 0,
    };
    vm.run()
}

struct Vm<'a, S: ControlStack<Value> + ?Sized> {
    stack: &'a mut S,
    store: &'a CodeStore,
    globals: &'a mut Globals,
    out: &'a mut String,
    timer: &'a mut TimerState,
    opts: &'a VmOptions,
    expander: &'a mut Expander,
    copts: &'a CompileOptions,
    chunk: Rc<Chunk>,
    chunk_id: u32,
    pc: usize,
    acc: Value,
    steps: u64,
}

impl<S: ControlStack<Value> + ?Sized> Vm<'_, S> {
    fn jump(&mut self, addr: CodeAddr) {
        if addr.chunk() != self.chunk_id {
            self.chunk = self.store.chunk(addr.chunk());
            self.chunk_id = addr.chunk();
        }
        self.pc = addr.offset() as usize;
    }

    fn enter_chunk(&mut self, id: u32) {
        if id != self.chunk_id {
            self.chunk = self.store.chunk(id);
            self.chunk_id = id;
        } else {
            // Self-call: the chunk is already loaded.
        }
        self.pc = 0;
    }

    /// Pops the current frame; `Some(value)` means the computation is done.
    fn do_return(&mut self) -> Result<Option<Value>, SchemeError> {
        match self.stack.ret()? {
            ReturnAddress::Code(r) => {
                self.jump(r);
                Ok(None)
            }
            ReturnAddress::Exit => Ok(Some(std::mem::take(&mut self.acc))),
            ReturnAddress::Underflow => unreachable!("underflow is handled inside ret"),
        }
    }

    fn closure_cell(&self) -> Result<Rc<Closure>, SchemeError> {
        match self.stack.get(1) {
            Value::Closure(c) => Ok(c),
            other => Err(SchemeError::runtime(format!(
                "corrupted frame: slot 1 holds {other}, not the closure"
            ))),
        }
    }

    fn run(&mut self) -> Result<Value, SchemeError> {
        loop {
            if let Some(max) = self.opts.max_steps {
                self.steps += 1;
                if self.steps > max {
                    return Err(SchemeError::runtime(format!(
                        "step budget of {max} instructions exceeded"
                    )));
                }
            }
            let instr = self.chunk.instrs[self.pc].clone();
            match instr {
                Instr::Const(i) => {
                    self.acc = self.chunk.consts[i as usize].clone();
                    self.pc += 1;
                }
                Instr::Fix(n) => {
                    self.acc = Value::Fixnum(n);
                    self.pc += 1;
                }
                Instr::True => {
                    self.acc = Value::Bool(true);
                    self.pc += 1;
                }
                Instr::False => {
                    self.acc = Value::Bool(false);
                    self.pc += 1;
                }
                Instr::Nil => {
                    self.acc = Value::Nil;
                    self.pc += 1;
                }
                Instr::Unspec => {
                    self.acc = Value::Unspecified;
                    self.pc += 1;
                }
                Instr::LocalRef(s) => {
                    self.acc = self.stack.get(s as usize);
                    self.pc += 1;
                }
                Instr::LocalSet(s) => {
                    self.stack.set(s as usize, self.acc.clone());
                    self.pc += 1;
                }
                Instr::CellRef(s) => {
                    self.acc = match self.stack.get(s as usize) {
                        Value::Cell(c) => c.borrow().clone(),
                        other => {
                            return Err(SchemeError::runtime(format!(
                                "corrupted frame: slot {s} holds {other}, not a cell"
                            )))
                        }
                    };
                    self.pc += 1;
                }
                Instr::CellSet(s) => {
                    match self.stack.get(s as usize) {
                        Value::Cell(c) => *c.borrow_mut() = self.acc.clone(),
                        other => {
                            return Err(SchemeError::runtime(format!(
                                "corrupted frame: slot {s} holds {other}, not a cell"
                            )))
                        }
                    }
                    self.pc += 1;
                }
                Instr::FreeRef(i) => {
                    self.acc = self.closure_cell()?.free[i as usize].clone();
                    self.pc += 1;
                }
                Instr::FreeCellRef(i) => {
                    self.acc = match &self.closure_cell()?.free[i as usize] {
                        Value::Cell(c) => c.borrow().clone(),
                        other => {
                            return Err(SchemeError::runtime(format!(
                                "corrupted closure: capture {i} holds {other}, not a cell"
                            )))
                        }
                    };
                    self.pc += 1;
                }
                Instr::FreeCellSet(i) => {
                    match &self.closure_cell()?.free[i as usize] {
                        Value::Cell(c) => *c.borrow_mut() = self.acc.clone(),
                        other => {
                            return Err(SchemeError::runtime(format!(
                                "corrupted closure: capture {i} holds {other}, not a cell"
                            )))
                        }
                    }
                    self.pc += 1;
                }
                Instr::WrapCell(s) => {
                    let v = self.stack.get(s as usize);
                    self.stack.set(s as usize, Value::cell(v));
                    self.pc += 1;
                }
                Instr::GlobalRef(g) => {
                    self.acc = self.globals.get(g)?;
                    self.pc += 1;
                }
                Instr::GlobalSet(g) => {
                    self.globals.set(g, self.acc.clone())?;
                    self.pc += 1;
                }
                Instr::GlobalDef(g) => {
                    self.globals.define(g, self.acc.clone());
                    self.pc += 1;
                }
                Instr::MakeClosure { chunk, src, nfree } => {
                    let free: Box<[Value]> =
                        (0..nfree).map(|i| self.stack.get((src + i) as usize)).collect();
                    let target = self.store.chunk(chunk);
                    self.acc = Value::Closure(Rc::new(Closure {
                        chunk,
                        nparams: target.nparams,
                        variadic: target.variadic,
                        free,
                        name: Some(Symbol::intern(&target.name)),
                    }));
                    self.pc += 1;
                }
                Instr::Jump(t) => self.pc = t as usize,
                Instr::JumpIfFalse(t) => {
                    if self.acc.is_truthy() {
                        self.pc += 1;
                    } else {
                        self.pc = t as usize;
                    }
                }
                Instr::FrameSize(_) => self.pc += 1, // data word: no-op in sequence
                Instr::Return => {
                    if let Some(v) = self.do_return()? {
                        return Ok(v);
                    }
                }
                Instr::Call { d, nargs, check } => {
                    if self.timer_fires()? {
                        continue;
                    }
                    let op = self.stack.get(d as usize + 1);
                    if let Some(v) = self.call_with_op(op, d, nargs, check)? {
                        return Ok(v);
                    }
                }
                Instr::TailCall { src, nargs } => {
                    if self.timer_fires()? {
                        continue;
                    }
                    let op = self.stack.get(src as usize);
                    if let Some(v) = self.tail_with_op(op, src, nargs)? {
                        return Ok(v);
                    }
                }
                Instr::Move { src, dst } => {
                    let v = self.stack.get(src as usize);
                    self.stack.set(dst as usize, v);
                    self.stack.metrics_mut().superinstructions_dispatched += 1;
                    self.pc += 1;
                }
                Instr::FixStage { n, dst } => {
                    self.stack.set(dst as usize, Value::Fixnum(n));
                    self.stack.metrics_mut().superinstructions_dispatched += 1;
                    self.pc += 1;
                }
                Instr::GlobalStage { g, dst } => {
                    let v = self.globals.get(g)?;
                    self.stack.set(dst as usize, v);
                    self.stack.metrics_mut().superinstructions_dispatched += 1;
                    self.pc += 1;
                }
                Instr::CallGlobal { g, ic, d, nargs, check } => {
                    if self.timer_fires()? {
                        continue;
                    }
                    if let Some(v) = self.call_global(g, ic, d, nargs, check, None)? {
                        return Ok(v);
                    }
                }
                Instr::CallGlobalBr { g, ic, d, nargs, check, target } => {
                    if self.timer_fires()? {
                        continue;
                    }
                    if let Some(v) = self.call_global(g, ic, d, nargs, check, Some(target))? {
                        return Ok(v);
                    }
                }
                Instr::TailCallGlobal { g, ic, src, nargs } => {
                    if self.timer_fires()? {
                        continue;
                    }
                    if let Some(v) = self.tail_call_global(g, ic, src, nargs)? {
                        return Ok(v);
                    }
                }
            }
        }
    }

    /// Dispatches an inline-cached non-tail call to global `g`. On a
    /// primitive hit the operator is never staged and the primitive runs
    /// without the generic `Value` dispatch; on a closure hit (matching
    /// arity) the arity adjustment is skipped. Anything else falls back
    /// to the generic path with the operator staged, exactly like
    /// `Instr::Call` — including in the fused-branch layout, where the
    /// return point is the real `JumpIfFalse`.
    fn call_global(
        &mut self,
        g: u32,
        ic: u32,
        d: u16,
        nargs: u16,
        check: Check,
        br: Option<u32>,
    ) -> Result<Option<Value>, SchemeError> {
        self.stack.metrics_mut().superinstructions_dispatched += 1;
        let ver = self.globals.version(g);
        let slot = &self.chunk.ics[ic as usize];
        if slot.version.get() == ver {
            match slot.target.get() {
                IcTarget::Prim { p, fast } => {
                    self.stack.metrics_mut().ic_hits += 1;
                    self.acc = self.run_prim_fast(Primitive(p), fast, d as usize + 2, nargs)?;
                    match br {
                        None => self.pc += 2,
                        // Fused test+branch: skip the FrameSize word and
                        // the JumpIfFalse, branching directly.
                        Some(_) if self.acc.is_truthy() => self.pc += 3,
                        Some(t) => self.pc = t as usize,
                    }
                    return Ok(None);
                }
                IcTarget::Closure { chunk, nparams, variadic } if !variadic && nparams == nargs => {
                    self.stack.metrics_mut().ic_hits += 1;
                    let opv = self.globals.get(g)?;
                    self.stack.set(d as usize + 1, opv);
                    if check == Check::ElidedInterproc {
                        self.stack.metrics_mut().checks_elided_interproc += 1;
                    }
                    let ret = CodeAddr::new(self.chunk_id, self.pc as u32 + 2);
                    self.stack.call(d as usize, ret, 1 + nargs as usize, check.performs_check())?;
                    self.enter_chunk(chunk);
                    return Ok(None);
                }
                _ => {}
            }
        }
        self.stack.metrics_mut().ic_misses += 1;
        let op = self.globals.get(g)?;
        self.fill_ic(ic, ver, &op, nargs);
        self.stack.set(d as usize + 1, op.clone());
        self.call_with_op(op, d, nargs, check)
    }

    /// Dispatches an inline-cached tail call to global `g`.
    fn tail_call_global(
        &mut self,
        g: u32,
        ic: u32,
        src: u16,
        nargs: u16,
    ) -> Result<Option<Value>, SchemeError> {
        self.stack.metrics_mut().superinstructions_dispatched += 1;
        let ver = self.globals.version(g);
        let slot = &self.chunk.ics[ic as usize];
        if slot.version.get() == ver {
            match slot.target.get() {
                IcTarget::Prim { p, fast } => {
                    self.stack.metrics_mut().ic_hits += 1;
                    self.acc = self.run_prim_fast(Primitive(p), fast, src as usize + 1, nargs)?;
                    return self.do_return();
                }
                IcTarget::Closure { chunk, nparams, variadic } if !variadic && nparams == nargs => {
                    self.stack.metrics_mut().ic_hits += 1;
                    let opv = self.globals.get(g)?;
                    self.stack.set(src as usize, opv);
                    self.stack.tail_call(src as usize, 1 + nargs as usize);
                    self.enter_chunk(chunk);
                    return Ok(None);
                }
                _ => {}
            }
        }
        self.stack.metrics_mut().ic_misses += 1;
        let op = self.globals.get(g)?;
        self.fill_ic(ic, ver, &op, nargs);
        self.stack.set(src as usize, op.clone());
        self.tail_with_op(op, src, nargs)
    }

    /// Fills an inline-cache slot from the operator just looked up.
    /// Primitives are cached only when `Normal` and arity-valid for this
    /// site's fixed argument count (so hits skip both checks); anything
    /// uncacheable records `Empty` and keeps taking the generic path.
    fn fill_ic(&mut self, ic: u32, ver: u32, op: &Value, nargs: u16) {
        let target = match op {
            Value::Primitive(p)
                if matches!(def_of(*p).kind, PrimKind::Normal(_)) && arity_ok(*p, nargs) =>
            {
                IcTarget::Prim { p: p.0, fast: fast_op(*p, nargs) }
            }
            Value::Closure(c) => {
                IcTarget::Closure { chunk: c.chunk, nparams: c.nparams, variadic: c.variadic }
            }
            _ => IcTarget::Empty,
        };
        let slot = &self.chunk.ics[ic as usize];
        slot.version.set(ver);
        slot.target.set(target);
    }

    /// Runs a cached normal primitive: arity was validated at cache-fill
    /// time, and two-fixnum arithmetic/comparison runs without touching
    /// the general function. Overflow and non-fixnum operands fall back,
    /// so observable semantics match `run_primitive` exactly.
    fn run_prim_fast(
        &mut self,
        p: Primitive,
        fast: FastOp,
        argbase: usize,
        nargs: u16,
    ) -> Result<Value, SchemeError> {
        // Primitives are leaf routines: no frame, no overflow check (§5).
        self.stack.metrics_mut().checks_elided += 1;
        if fast != FastOp::None {
            let a = self.stack.get(argbase);
            let b = self.stack.get(argbase + 1);
            if let (Value::Fixnum(x), Value::Fixnum(y)) = (&a, &b) {
                let (x, y) = (*x, *y);
                let r = match fast {
                    FastOp::Add2 => x.checked_add(y).map(Value::Fixnum),
                    FastOp::Sub2 => x.checked_sub(y).map(Value::Fixnum),
                    FastOp::Mul2 => x.checked_mul(y).map(Value::Fixnum),
                    FastOp::Lt2 => Some(Value::Bool(x < y)),
                    FastOp::Le2 => Some(Value::Bool(x <= y)),
                    FastOp::Gt2 => Some(Value::Bool(x > y)),
                    FastOp::Ge2 => Some(Value::Bool(x >= y)),
                    FastOp::NumEq2 => Some(Value::Bool(x == y)),
                    FastOp::None => unreachable!(),
                };
                if let Some(v) = r {
                    return Ok(v);
                }
            }
            // Mixed types or fixnum overflow: the general function
            // decides (flonum arithmetic or the overflow error).
            let PrimKind::Normal(f) = &def_of(p).kind else { unreachable!() };
            return f(&mut PrimCtx { out: self.out }, &[a, b]);
        }
        let PrimKind::Normal(f) = &def_of(p).kind else {
            unreachable!("only normal primitives are cached")
        };
        if nargs as usize <= PRIM_ARG_BUF {
            let mut buf: [Value; PRIM_ARG_BUF] = std::array::from_fn(|_| Value::Unspecified);
            for (j, slot) in buf.iter_mut().enumerate().take(nargs as usize) {
                *slot = self.stack.get(argbase + j);
            }
            f(&mut PrimCtx { out: self.out }, &buf[..nargs as usize])
        } else {
            let args: Vec<Value> =
                (0..nargs as usize).map(|j| self.stack.get(argbase + j)).collect();
            f(&mut PrimCtx { out: self.out }, &args)
        }
    }

    /// Decrements the engine timer; if it expires, pushes a handler frame
    /// whose return point is the pending call instruction itself (the
    /// `FrameSize` word before every call instruction makes that a valid
    /// walkable return point).
    fn timer_fires(&mut self) -> Result<bool, SchemeError> {
        if self.timer.fuel <= 0 {
            return Ok(false);
        }
        self.timer.fuel -= 1;
        if self.timer.fuel > 0 {
            return Ok(false);
        }
        let handler = self.timer.handler.clone();
        if !handler.is_procedure() {
            return Ok(false);
        }
        let Instr::FrameSize(dh) = self.chunk.instrs[self.pc - 1] else {
            unreachable!("call instructions are preceded by a frame-size word")
        };
        let ra = CodeAddr::new(self.chunk_id, self.pc as u32);
        let dh = dh as u16;
        self.stack.set(dh as usize + 1, handler.clone());
        self.stack.call(dh as usize, ra, 1, true)?;
        match self.enter_pushed(handler, 0)? {
            None => Ok(true),
            Some(_) => {
                Err(SchemeError::runtime("timer handler exited through a dead continuation"))
            }
        }
    }

    /// `(stack-frames [limit])`: names of the pending procedures, walking
    /// the live control state (innermost first).
    fn stack_frames(&mut self, limit: Option<Value>) -> Result<Value, SchemeError> {
        let limit = match limit {
            Some(v) => usize::try_from(v.as_fixnum()?)
                .map_err(|_| SchemeError::runtime("stack-frames: negative limit"))?,
            None => 64,
        };
        let names = self
            .stack
            .backtrace(limit)
            .into_iter()
            .map(|ra| Value::Sym(Symbol::intern(&self.store.chunk(ra.chunk()).name)))
            .collect::<Vec<_>>();
        Ok(Value::list(names))
    }

    /// `(trace-stats)`: one alist entry `(kind count p50 p90 p99 max)` per
    /// event kind the machine's trace sink has seen (nanoseconds or slots,
    /// depending on the kind — see the event vocabulary). Untraced
    /// machines return `()`.
    fn trace_stats(&self) -> Value {
        let fix = |v: u64| Value::Fixnum(v.min(i64::MAX as u64) as i64);
        Value::list(self.stack.trace_summaries().into_iter().map(|(kind, s)| {
            Value::cons(
                Value::sym(kind.name()),
                Value::list([fix(s.count), fix(s.p50), fix(s.p90), fix(s.p99), fix(s.max)]),
            )
        }))
    }

    /// Arity message helper.
    fn arity_error(&self, who: &str, want: String, got: u16) -> SchemeError {
        SchemeError::runtime(format!("{who}: expected {want} arguments, got {got}"))
    }

    /// Adjusts a variadic call's staged arguments in place: collects the
    /// extras into a rest list at `argbase + required`. Returns the
    /// effective argument count.
    fn adjust_arity(
        &mut self,
        c: &Closure,
        argbase: usize,
        nargs: u16,
    ) -> Result<u16, SchemeError> {
        let name = c.name.map(|s| s.as_str()).unwrap_or_else(|| "procedure".into());
        if c.variadic {
            let required = c.nparams - 1;
            if nargs < required {
                return Err(self.arity_error(&name, format!("at least {required}"), nargs));
            }
            let rest = Value::list((required..nargs).map(|j| self.stack.get(argbase + j as usize)));
            self.stack.set(argbase + required as usize, rest);
            Ok(c.nparams)
        } else if nargs != c.nparams {
            Err(self.arity_error(&name, format!("{}", c.nparams), nargs))
        } else {
            Ok(nargs)
        }
    }

    fn check_prim_arity(&self, p: Primitive, nargs: u16) -> Result<(), SchemeError> {
        let def = def_of(p);
        let n = nargs as usize;
        if n < def.min_args || def.max_args.is_some_and(|m| n > m) {
            let want = match def.max_args {
                Some(m) if m == def.min_args => format!("{m}"),
                Some(m) => format!("{} to {m}", def.min_args),
                None => format!("at least {}", def.min_args),
            };
            return Err(self.arity_error(def.name, want, nargs));
        }
        Ok(())
    }

    /// Runs a normal primitive on arguments staged at `argbase..`.
    fn run_primitive(
        &mut self,
        p: Primitive,
        argbase: usize,
        nargs: u16,
    ) -> Result<Value, SchemeError> {
        self.check_prim_arity(p, nargs)?;
        let PrimKind::Normal(f) = &def_of(p).kind else {
            unreachable!("special primitives are dispatched before run_primitive")
        };
        // Primitives are leaf routines: no frame, no overflow check (§5).
        self.stack.metrics_mut().checks_elided += 1;
        if nargs as usize <= PRIM_ARG_BUF {
            let mut buf: [Value; PRIM_ARG_BUF] = std::array::from_fn(|_| Value::Unspecified);
            for (j, slot) in buf.iter_mut().enumerate().take(nargs as usize) {
                *slot = self.stack.get(argbase + j);
            }
            f(&mut PrimCtx { out: self.out }, &buf[..nargs as usize])
        } else {
            let args: Vec<Value> =
                (0..nargs as usize).map(|j| self.stack.get(argbase + j)).collect();
            f(&mut PrimCtx { out: self.out }, &args)
        }
    }

    /// Collects `apply`'s spread arguments: explicit middles plus the final
    /// list, staged starting at `dst`.
    fn spread_apply(
        &mut self,
        argbase: usize,
        nargs: u16,
        dst: usize,
    ) -> Result<(Value, u16), SchemeError> {
        let f = self.stack.get(argbase);
        let mut spread: Vec<Value> =
            (1..nargs as usize - 1).map(|j| self.stack.get(argbase + j)).collect();
        let last = self.stack.get(argbase + nargs as usize - 1);
        spread.extend(last.list_to_vec().map_err(|_| {
            SchemeError::runtime(format!("apply: last argument must be a proper list, got {last}"))
        })?);
        if spread.len() + 2 > self.opts.frame_bound {
            return Err(SchemeError::runtime(format!(
                "apply: {} arguments exceed the frame bound of {}",
                spread.len(),
                self.opts.frame_bound
            )));
        }
        let n = spread.len() as u16;
        for (j, v) in spread.into_iter().enumerate() {
            self.stack.set(dst + j, v);
        }
        Ok((f, n))
    }

    /// Dispatches a non-tail call whose operator is `op` and whose partial
    /// frame is staged at displacement `d`.
    fn call_with_op(
        &mut self,
        op: Value,
        d: u16,
        nargs: u16,
        check: Check,
    ) -> Result<Option<Value>, SchemeError> {
        let ret = CodeAddr::new(self.chunk_id, self.pc as u32 + 2);
        match op {
            Value::Closure(c) => {
                let eff = self.adjust_arity(&c, d as usize + 2, nargs)?;
                if check == Check::ElidedInterproc {
                    self.stack.metrics_mut().checks_elided_interproc += 1;
                }
                self.stack.call(d as usize, ret, 1 + eff as usize, check.performs_check())?;
                self.enter_chunk(c.chunk);
                Ok(None)
            }
            Value::Primitive(p) => match def_of(p).kind {
                PrimKind::Normal(_) => {
                    self.acc = self.run_primitive(p, d as usize + 2, nargs)?;
                    self.pc += 2;
                    Ok(None)
                }
                PrimKind::CallCC | PrimKind::CallCC1 => {
                    self.check_prim_arity(p, nargs)?;
                    let f = self.stack.get(d as usize + 2);
                    self.stack.set(d as usize + 1, f.clone());
                    self.stack.call(d as usize, ret, 1, check.performs_check())?;
                    let k = match def_of(p).kind {
                        PrimKind::CallCC1 => self.stack.capture_one_shot(),
                        _ => self.stack.capture(),
                    };
                    self.stack.set(2, Value::Kont(k));
                    self.enter_pushed(f, 1)
                }
                PrimKind::Apply => {
                    self.check_prim_arity(p, nargs)?;
                    let (f, n) = self.spread_apply(d as usize + 2, nargs, d as usize + 2)?;
                    self.stack.set(d as usize + 1, f.clone());
                    self.call_with_op(f, d, n, check)
                }
                PrimKind::SetTimer => {
                    self.check_prim_arity(p, nargs)?;
                    let ticks = self.stack.get(d as usize + 2).as_fixnum()?;
                    self.acc = Value::Fixnum(self.timer.fuel.max(0));
                    self.timer.fuel = ticks;
                    self.pc += 2;
                    Ok(None)
                }
                PrimKind::SetTimerHandler => {
                    self.check_prim_arity(p, nargs)?;
                    self.timer.handler = self.stack.get(d as usize + 2);
                    self.acc = Value::Unspecified;
                    self.pc += 2;
                    Ok(None)
                }
                PrimKind::StackFrames => {
                    self.check_prim_arity(p, nargs)?;
                    self.acc = self.stack_frames(if nargs == 1 {
                        Some(self.stack.get(d as usize + 2))
                    } else {
                        None
                    })?;
                    self.pc += 2;
                    Ok(None)
                }
                PrimKind::TraceStats => {
                    self.check_prim_arity(p, nargs)?;
                    self.acc = self.trace_stats();
                    self.pc += 2;
                    Ok(None)
                }
                PrimKind::Eval => {
                    self.check_prim_arity(p, nargs)?;
                    let datum = self.stack.get(d as usize + 2);
                    let entry = compile_toplevel(
                        &datum,
                        self.expander,
                        self.store,
                        self.globals,
                        self.copts,
                    )?;
                    // Run the fresh chunk like a 0-parameter procedure: the
                    // frame is already staged (slot d+1 held the eval
                    // primitive; toplevel chunks never read their slot 1).
                    self.stack.call(d as usize, ret, 1, check.performs_check())?;
                    self.enter_chunk(entry);
                    Ok(None)
                }
            },
            Value::Kont(k) => {
                if nargs != 1 {
                    return Err(self.arity_error("continuation", "1".into(), nargs));
                }
                let v = self.stack.get(d as usize + 2);
                match self.stack.reinstate(&k)? {
                    ReturnAddress::Code(r) => {
                        self.acc = v;
                        self.jump(r);
                        Ok(None)
                    }
                    ReturnAddress::Exit => Ok(Some(v)),
                    ReturnAddress::Underflow => unreachable!(),
                }
            }
            other => Err(SchemeError::runtime(format!("attempt to apply non-procedure {other}"))),
        }
    }

    /// Continues into procedure `f` whose frame has already been pushed
    /// (slot 1 = `f`, arguments at 2..). Used by `call/cc` and the timer.
    /// `Some(value)` means the computation halted (an exit continuation).
    fn enter_pushed(&mut self, f: Value, nargs: u16) -> Result<Option<Value>, SchemeError> {
        match f {
            Value::Closure(c) => {
                self.adjust_arity(&c, 2, nargs)?;
                self.enter_chunk(c.chunk);
                Ok(None)
            }
            Value::Primitive(p) => match def_of(p).kind {
                PrimKind::Normal(_) => {
                    self.acc = self.run_primitive(p, 2, nargs)?;
                    self.do_return()
                }
                _ => Err(SchemeError::runtime("call/cc of a special primitive is not supported")),
            },
            Value::Kont(k) => {
                let v = self.stack.get(2);
                match self.stack.reinstate(&k)? {
                    ReturnAddress::Code(r) => {
                        self.acc = v;
                        self.jump(r);
                        Ok(None)
                    }
                    ReturnAddress::Exit => Ok(Some(v)),
                    ReturnAddress::Underflow => unreachable!(),
                }
            }
            other => Err(SchemeError::runtime(format!("attempt to apply non-procedure {other}"))),
        }
    }

    /// Dispatches a tail call whose operator is staged at `src`.
    fn tail_with_op(
        &mut self,
        op: Value,
        src: u16,
        nargs: u16,
    ) -> Result<Option<Value>, SchemeError> {
        match op {
            Value::Closure(c) => {
                let eff = self.adjust_arity(&c, src as usize + 1, nargs)?;
                self.stack.tail_call(src as usize, 1 + eff as usize);
                self.enter_chunk(c.chunk);
                Ok(None)
            }
            Value::Primitive(p) => match def_of(p).kind {
                PrimKind::Normal(_) => {
                    self.acc = self.run_primitive(p, src as usize + 1, nargs)?;
                    self.do_return()
                }
                PrimKind::CallCC | PrimKind::CallCC1 => {
                    self.check_prim_arity(p, nargs)?;
                    // Capture first: the continuation of a tail call/cc is
                    // the current frame's own continuation. On an empty
                    // segment this reuses the link (the looper rule).
                    let k = match def_of(p).kind {
                        PrimKind::CallCC1 => self.stack.capture_one_shot(),
                        _ => self.stack.capture(),
                    };
                    let f = self.stack.get(src as usize + 1);
                    self.stack.set(src as usize + 1, f.clone());
                    self.stack.set(src as usize + 2, Value::Kont(k));
                    // Re-dispatch as (f k) in tail position with the
                    // operator staged one slot higher.
                    self.retail(f, src + 1, 1)
                }
                PrimKind::Apply => {
                    self.check_prim_arity(p, nargs)?;
                    let (f, n) = self.spread_apply(src as usize + 1, nargs, src as usize + 1)?;
                    self.stack.set(src as usize, f.clone());
                    self.tail_with_op(f, src, n)
                }
                PrimKind::SetTimer => {
                    self.check_prim_arity(p, nargs)?;
                    let ticks = self.stack.get(src as usize + 1).as_fixnum()?;
                    self.acc = Value::Fixnum(self.timer.fuel.max(0));
                    self.timer.fuel = ticks;
                    self.do_return()
                }
                PrimKind::SetTimerHandler => {
                    self.check_prim_arity(p, nargs)?;
                    self.timer.handler = self.stack.get(src as usize + 1);
                    self.acc = Value::Unspecified;
                    self.do_return()
                }
                PrimKind::StackFrames => {
                    self.check_prim_arity(p, nargs)?;
                    self.acc = self.stack_frames(if nargs == 1 {
                        Some(self.stack.get(src as usize + 1))
                    } else {
                        None
                    })?;
                    self.do_return()
                }
                PrimKind::TraceStats => {
                    self.check_prim_arity(p, nargs)?;
                    self.acc = self.trace_stats();
                    self.do_return()
                }
                PrimKind::Eval => {
                    self.check_prim_arity(p, nargs)?;
                    let datum = self.stack.get(src as usize + 1);
                    let entry = compile_toplevel(
                        &datum,
                        self.expander,
                        self.store,
                        self.globals,
                        self.copts,
                    )?;
                    self.stack.tail_call(src as usize, 1);
                    self.enter_chunk(entry);
                    Ok(None)
                }
            },
            Value::Kont(k) => {
                if nargs != 1 {
                    return Err(self.arity_error("continuation", "1".into(), nargs));
                }
                let v = self.stack.get(src as usize + 1);
                match self.stack.reinstate(&k)? {
                    ReturnAddress::Code(r) => {
                        self.acc = v;
                        self.jump(r);
                        Ok(None)
                    }
                    ReturnAddress::Exit => Ok(Some(v)),
                    ReturnAddress::Underflow => unreachable!(),
                }
            }
            other => Err(SchemeError::runtime(format!("attempt to apply non-procedure {other}"))),
        }
    }

    /// Tail re-dispatch after `call/cc` restaging: the operator now sits at
    /// `src` with `nargs` arguments above it.
    fn retail(&mut self, f: Value, src: u16, nargs: u16) -> Result<Option<Value>, SchemeError> {
        match f {
            Value::Closure(_) | Value::Kont(_) | Value::Primitive(_) => {
                self.tail_with_op(f, src, nargs)
            }
            other => Err(SchemeError::runtime(format!("attempt to apply non-procedure {other}"))),
        }
    }
}

/// Sanity check used by the primitive table: the VM assumes `PRIMITIVES`
/// fits in the `u16` index space.
const _: () = assert!(PRIMITIVES.len() < u16::MAX as usize);
