//! Primitive procedures.
//!
//! Primitives are leaf routines: they never push a stack frame, so calls to
//! them cost no frame allocation and no overflow check — they are the
//! "leaf routines need not check for overflow" case of paper §5.
//!
//! A few primitives require VM cooperation and are dispatched specially by
//! the interpreter: `call/cc` (continuation capture), `apply` (argument
//! spreading), and the engine timer (`set-timer`, `set-timer-handler!`).

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::SchemeError;
use crate::intern::Symbol;
use crate::value::{Displayed, Primitive, Value};

/// Host context available to primitives.
#[derive(Debug)]
pub struct PrimCtx<'a> {
    /// Output buffer for `display`/`write`/`newline`.
    pub out: &'a mut String,
}

/// Implementation kinds.
pub enum PrimKind {
    /// An ordinary function of its arguments.
    Normal(fn(&mut PrimCtx<'_>, &[Value]) -> Result<Value, SchemeError>),
    /// `call-with-current-continuation` — handled by the VM.
    CallCC,
    /// `call/1cc` — one-shot continuation capture, handled by the VM. The
    /// captured continuation may be invoked (or returned into) at most
    /// once; reuse raises an error. The restriction lets the segmented
    /// strategy reinstate by relinking instead of copying.
    CallCC1,
    /// `apply` — handled by the VM.
    Apply,
    /// `(set-timer ticks)` — arms the VM's engine timer, returns the
    /// previous remaining ticks.
    SetTimer,
    /// `(set-timer-handler! proc)` — installs the timer-interrupt handler.
    SetTimerHandler,
    /// `(stack-frames [limit])` — walks the live control stack and returns
    /// the pending procedures' names as a list of symbols (innermost
    /// first). Paper §3's debugger stack walk, surfaced in the language.
    StackFrames,
    /// `(trace-stats)` — reads the histogram aggregates of the trace sink
    /// attached to the engine's control stack (handled by the VM). Returns
    /// an alist `((kind count p50 p90 p99 max) ...)` with one entry per
    /// event kind seen so far; the empty list when the machine is
    /// untraced.
    TraceStats,
    /// `(eval datum)` — compiles and runs a datum in the global
    /// environment (handled by the VM: it re-enters the compiler and then
    /// calls the fresh chunk like a procedure).
    Eval,
}

/// A primitive's descriptor.
pub struct PrimDef {
    /// The global name it is bound to.
    pub name: &'static str,
    /// Minimum argument count.
    pub min_args: usize,
    /// Maximum argument count (`None` = variadic).
    pub max_args: Option<usize>,
    /// Implementation.
    pub kind: PrimKind,
}

/// The name of a primitive, for printing.
pub fn name_of(p: Primitive) -> &'static str {
    PRIMITIVES[p.0 as usize].name
}

/// Looks up the descriptor of a primitive.
pub fn def_of(p: Primitive) -> &'static PrimDef {
    &PRIMITIVES[p.0 as usize]
}

/// Fixnum fast-path operation for a two-argument arithmetic/comparison
/// primitive, dispatched by the inline-cached call superinstructions
/// without entering the generic primitive function.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FastOp {
    /// No fast path; run the primitive's general function.
    #[default]
    None,
    /// `(+ a b)` — checked fixnum add.
    Add2,
    /// `(- a b)` — checked fixnum subtract.
    Sub2,
    /// `(* a b)` — checked fixnum multiply.
    Mul2,
    /// `(< a b)` on two fixnums.
    Lt2,
    /// `(<= a b)` on two fixnums.
    Le2,
    /// `(> a b)` on two fixnums.
    Gt2,
    /// `(>= a b)` on two fixnums.
    Ge2,
    /// `(= a b)` on two fixnums.
    NumEq2,
}

/// The fixnum fast path for primitive `p` applied to `nargs` arguments
/// (`FastOp::None` when there is none). Overflow and non-fixnum operands
/// fall back to the general function, so observable semantics — including
/// the `fixnum overflow` error — are unchanged.
pub fn fast_op(p: Primitive, nargs: u16) -> FastOp {
    if nargs != 2 {
        return FastOp::None;
    }
    match def_of(p).name {
        "+" => FastOp::Add2,
        "-" => FastOp::Sub2,
        "*" => FastOp::Mul2,
        "<" => FastOp::Lt2,
        "<=" => FastOp::Le2,
        ">" => FastOp::Gt2,
        ">=" => FastOp::Ge2,
        "=" => FastOp::NumEq2,
        _ => FastOp::None,
    }
}

/// Whether `nargs` is a valid argument count for primitive `p` (the
/// inline cache only caches primitives at sites whose fixed argument
/// count already passed this, so hits skip the arity check).
pub fn arity_ok(p: Primitive, nargs: u16) -> bool {
    let def = def_of(p);
    let n = nargs as usize;
    n >= def.min_args && def.max_args.is_none_or(|m| n <= m)
}

/// Defines every primitive in the global table.
pub fn install(globals: &mut crate::code::Globals) {
    for (i, def) in PRIMITIVES.iter().enumerate() {
        let slot = globals.slot(Symbol::intern(def.name));
        globals.define(slot, Value::Primitive(Primitive(i as u16)));
    }
}

// ---- numeric helpers ------------------------------------------------------

/// A number coerced for arithmetic.
#[derive(Clone, Copy)]
enum Num {
    Fix(i64),
    Flo(f64),
}

fn num(v: &Value, who: &str) -> Result<Num, SchemeError> {
    match v {
        Value::Fixnum(n) => Ok(Num::Fix(*n)),
        Value::Flonum(x) => Ok(Num::Flo(*x)),
        _ => Err(SchemeError::runtime(format!("{who}: not a number: {v}"))),
    }
}

impl Num {
    fn to_value(self) -> Value {
        match self {
            Num::Fix(n) => Value::Fixnum(n),
            Num::Flo(x) => Value::Flonum(x),
        }
    }

    fn as_f64(self) -> f64 {
        match self {
            Num::Fix(n) => n as f64,
            Num::Flo(x) => x,
        }
    }
}

fn arith(
    who: &'static str,
    a: Num,
    b: Num,
    fx: fn(i64, i64) -> Option<i64>,
    fl: fn(f64, f64) -> f64,
) -> Result<Num, SchemeError> {
    match (a, b) {
        (Num::Fix(x), Num::Fix(y)) => match fx(x, y) {
            Some(r) => Ok(Num::Fix(r)),
            None => Err(SchemeError::runtime(format!("{who}: fixnum overflow"))),
        },
        (a, b) => Ok(Num::Flo(fl(a.as_f64(), b.as_f64()))),
    }
}

fn fold_arith(
    who: &'static str,
    init: Num,
    args: &[Value],
    fx: fn(i64, i64) -> Option<i64>,
    fl: fn(f64, f64) -> f64,
) -> Result<Value, SchemeError> {
    let mut acc = init;
    for v in args {
        acc = arith(who, acc, num(v, who)?, fx, fl)?;
    }
    Ok(acc.to_value())
}

fn compare_chain(
    who: &'static str,
    args: &[Value],
    ok: fn(std::cmp::Ordering) -> bool,
) -> Result<Value, SchemeError> {
    for w in args.windows(2) {
        let a = num(&w[0], who)?;
        let b = num(&w[1], who)?;
        let ord = match (a, b) {
            (Num::Fix(x), Num::Fix(y)) => x.cmp(&y),
            (a, b) => a
                .as_f64()
                .partial_cmp(&b.as_f64())
                .ok_or_else(|| SchemeError::runtime(format!("{who}: unordered comparison")))?,
        };
        if !ok(ord) {
            return Ok(Value::Bool(false));
        }
    }
    Ok(Value::Bool(true))
}

fn want_fixnum(v: &Value, who: &str) -> Result<i64, SchemeError> {
    v.as_fixnum().map_err(|_| SchemeError::runtime(format!("{who}: expected a fixnum, got {v}")))
}

fn want_string(v: &Value, who: &str) -> Result<Rc<RefCell<String>>, SchemeError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(SchemeError::runtime(format!("{who}: expected a string, got {v}"))),
    }
}

fn want_char(v: &Value, who: &str) -> Result<char, SchemeError> {
    match v {
        Value::Char(c) => Ok(*c),
        _ => Err(SchemeError::runtime(format!("{who}: expected a char, got {v}"))),
    }
}

fn want_vector(v: &Value, who: &str) -> Result<Rc<RefCell<Vec<Value>>>, SchemeError> {
    match v {
        Value::Vector(items) => Ok(items.clone()),
        _ => Err(SchemeError::runtime(format!("{who}: expected a vector, got {v}"))),
    }
}

fn want_symbol(v: &Value, who: &str) -> Result<Symbol, SchemeError> {
    match v {
        Value::Sym(s) => Ok(*s),
        _ => Err(SchemeError::runtime(format!("{who}: expected a symbol, got {v}"))),
    }
}

// ---- primitive implementations -------------------------------------------

fn p_cons(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::cons(a[0].clone(), a[1].clone()))
}

fn p_car(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    a[0].car()
}

fn p_cdr(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    a[0].cdr()
}

fn p_set_car(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match &a[0] {
        Value::Pair(p) => {
            *p.car.borrow_mut() = a[1].clone();
            Ok(Value::Unspecified)
        }
        other => Err(SchemeError::runtime(format!("set-car!: not a pair: {other}"))),
    }
}

fn p_set_cdr(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match &a[0] {
        Value::Pair(p) => {
            *p.cdr.borrow_mut() = a[1].clone();
            Ok(Value::Unspecified)
        }
        other => Err(SchemeError::runtime(format!("set-cdr!: not a pair: {other}"))),
    }
}

fn compose_cxr(path: &str, v: &Value) -> Result<Value, SchemeError> {
    // path is applied right-to-left, e.g. "ad" = (car (cdr x)).
    let mut cur = v.clone();
    for c in path.chars().rev() {
        cur = if c == 'a' { cur.car()? } else { cur.cdr()? };
    }
    Ok(cur)
}

macro_rules! cxr {
    ($name:ident, $path:literal) => {
        fn $name(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
            compose_cxr($path, &a[0])
        }
    };
}

cxr!(p_caar, "aa");
cxr!(p_cadr, "ad");
cxr!(p_cdar, "da");
cxr!(p_cddr, "dd");
cxr!(p_caddr, "add");
cxr!(p_cdddr, "ddd");
cxr!(p_cadddr, "addd");

fn p_list(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::list(a.iter().cloned()))
}

fn p_length(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match a[0].list_len() {
        Some(n) => Ok(Value::Fixnum(n as i64)),
        None => Err(SchemeError::runtime(format!("length: not a proper list: {}", a[0]))),
    }
}

fn p_append(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let Some((last, init)) = a.split_last() else { return Ok(Value::Nil) };
    let mut out = last.clone();
    for lst in init.iter().rev() {
        for v in lst.list_to_vec()?.into_iter().rev() {
            out = Value::cons(v, out);
        }
    }
    Ok(out)
}

fn p_reverse(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut out = Value::Nil;
    for v in a[0].list_to_vec()? {
        out = Value::cons(v, out);
    }
    Ok(out)
}

fn p_list_tail(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut cur = a[0].clone();
    for _ in 0..want_fixnum(&a[1], "list-tail")? {
        cur = cur.cdr()?;
    }
    Ok(cur)
}

fn p_list_ref(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut cur = a[0].clone();
    for _ in 0..want_fixnum(&a[1], "list-ref")? {
        cur = cur.cdr()?;
    }
    cur.car()
}

fn member_by(a: &[Value], pred: fn(&Value, &Value) -> bool) -> Result<Value, SchemeError> {
    let mut cur = a[1].clone();
    loop {
        match cur {
            Value::Nil => return Ok(Value::Bool(false)),
            Value::Pair(ref p) => {
                if pred(&p.car.borrow(), &a[0]) {
                    return Ok(cur.clone());
                }
                let next = p.cdr.borrow().clone();
                cur = next;
            }
            other => return Err(SchemeError::runtime(format!("improper list ends in {other}"))),
        }
    }
}

fn p_memq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    member_by(a, |x, y| x.eq_value(y))
}

fn p_memv(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    member_by(a, |x, y| x.eqv_value(y))
}

fn p_member(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    member_by(a, |x, y| x.equal_value(y))
}

fn assoc_by(a: &[Value], pred: fn(&Value, &Value) -> bool) -> Result<Value, SchemeError> {
    for entry in a[1].list_to_vec()? {
        if pred(&entry.car()?, &a[0]) {
            return Ok(entry);
        }
    }
    Ok(Value::Bool(false))
}

fn p_assq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    assoc_by(a, |x, y| x.eq_value(y))
}

fn p_assv(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    assoc_by(a, |x, y| x.eqv_value(y))
}

fn p_assoc(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    assoc_by(a, |x, y| x.equal_value(y))
}

fn p_add(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    fold_arith("+", Num::Fix(0), a, i64::checked_add, |x, y| x + y)
}

fn p_mul(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    fold_arith("*", Num::Fix(1), a, i64::checked_mul, |x, y| x * y)
}

fn p_sub(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let first = num(&a[0], "-")?;
    if a.len() == 1 {
        return arith("-", Num::Fix(0), first, i64::checked_sub, |x, y| x - y).map(Num::to_value);
    }
    let mut acc = first;
    for v in &a[1..] {
        acc = arith("-", acc, num(v, "-")?, i64::checked_sub, |x, y| x - y)?;
    }
    Ok(acc.to_value())
}

fn p_div(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let div2 = |x: Num, y: Num| -> Result<Num, SchemeError> {
        match (x, y) {
            (_, Num::Fix(0)) => Err(SchemeError::runtime("/: division by zero")),
            (Num::Fix(p), Num::Fix(q)) if p % q == 0 => Ok(Num::Fix(p / q)),
            (x, y) => Ok(Num::Flo(x.as_f64() / y.as_f64())),
        }
    };
    let first = num(&a[0], "/")?;
    if a.len() == 1 {
        return div2(Num::Fix(1), first).map(Num::to_value);
    }
    let mut acc = first;
    for v in &a[1..] {
        acc = div2(acc, num(v, "/")?)?;
    }
    Ok(acc.to_value())
}

fn int2(a: &[Value], who: &str) -> Result<(i64, i64), SchemeError> {
    let x = want_fixnum(&a[0], who)?;
    let y = want_fixnum(&a[1], who)?;
    if y == 0 {
        return Err(SchemeError::runtime(format!("{who}: division by zero")));
    }
    Ok((x, y))
}

fn p_quotient(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let (x, y) = int2(a, "quotient")?;
    Ok(Value::Fixnum(x / y))
}

fn p_remainder(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let (x, y) = int2(a, "remainder")?;
    Ok(Value::Fixnum(x % y))
}

fn p_modulo(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let (x, y) = int2(a, "modulo")?;
    let r = x % y;
    // The result takes the sign of the divisor (R3RS).
    Ok(Value::Fixnum(if r != 0 && (r < 0) != (y < 0) { r + y } else { r }))
}

fn p_num_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    compare_chain("=", a, |o| o == std::cmp::Ordering::Equal)
}

fn p_lt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    compare_chain("<", a, |o| o == std::cmp::Ordering::Less)
}

fn p_gt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    compare_chain(">", a, |o| o == std::cmp::Ordering::Greater)
}

fn p_le(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    compare_chain("<=", a, |o| o != std::cmp::Ordering::Greater)
}

fn p_ge(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    compare_chain(">=", a, |o| o != std::cmp::Ordering::Less)
}

fn p_zero(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(match num(&a[0], "zero?")? {
        Num::Fix(n) => n == 0,
        Num::Flo(x) => x == 0.0,
    }))
}

fn p_positive(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(num(&a[0], "positive?")?.as_f64() > 0.0))
}

fn p_negative(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(num(&a[0], "negative?")?.as_f64() < 0.0))
}

fn p_odd(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_fixnum(&a[0], "odd?")? % 2 != 0))
}

fn p_even(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_fixnum(&a[0], "even?")? % 2 == 0))
}

fn p_min(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut acc = num(&a[0], "min")?;
    let mut inexact = matches!(acc, Num::Flo(_));
    for v in &a[1..] {
        let n = num(v, "min")?;
        inexact |= matches!(n, Num::Flo(_));
        if n.as_f64() < acc.as_f64() {
            acc = n;
        }
    }
    Ok(if inexact { Value::Flonum(acc.as_f64()) } else { acc.to_value() })
}

fn p_max(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut acc = num(&a[0], "max")?;
    let mut inexact = matches!(acc, Num::Flo(_));
    for v in &a[1..] {
        let n = num(v, "max")?;
        inexact |= matches!(n, Num::Flo(_));
        if n.as_f64() > acc.as_f64() {
            acc = n;
        }
    }
    Ok(if inexact { Value::Flonum(acc.as_f64()) } else { acc.to_value() })
}

fn p_abs(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(match num(&a[0], "abs")? {
        Num::Fix(n) => Value::Fixnum(n.abs()),
        Num::Flo(x) => Value::Flonum(x.abs()),
    })
}

fn p_gcd(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    fn gcd(a: i64, b: i64) -> i64 {
        if b == 0 {
            a.abs()
        } else {
            gcd(b, a % b)
        }
    }
    let mut acc = 0;
    for v in a {
        acc = gcd(acc, want_fixnum(v, "gcd")?);
    }
    Ok(Value::Fixnum(acc))
}

fn p_expt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match (num(&a[0], "expt")?, num(&a[1], "expt")?) {
        (Num::Fix(b), Num::Fix(e)) if e >= 0 => match b.checked_pow(
            u32::try_from(e).map_err(|_| SchemeError::runtime("expt: exponent too large"))?,
        ) {
            Some(r) => Ok(Value::Fixnum(r)),
            None => Err(SchemeError::runtime("expt: fixnum overflow")),
        },
        (b, e) => Ok(Value::Flonum(b.as_f64().powf(e.as_f64()))),
    }
}

fn p_sqrt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = num(&a[0], "sqrt")?.as_f64();
    let r = x.sqrt();
    if let Num::Fix(_) = num(&a[0], "sqrt")? {
        let ri = r as i64;
        if ri * ri == x as i64 {
            return Ok(Value::Fixnum(ri));
        }
    }
    Ok(Value::Flonum(r))
}

fn round_like(a: &[Value], who: &str, f: fn(f64) -> f64) -> Result<Value, SchemeError> {
    Ok(match num(&a[0], who)? {
        Num::Fix(n) => Value::Fixnum(n),
        Num::Flo(x) => Value::Flonum(f(x)),
    })
}

fn p_floor(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    round_like(a, "floor", f64::floor)
}

fn p_ceiling(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    round_like(a, "ceiling", f64::ceil)
}

fn p_truncate(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    round_like(a, "truncate", f64::trunc)
}

fn p_round(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    round_like(a, "round", |x| {
        // Round to even, per R3RS.
        let r = x.round();
        if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
            r - (r - x).signum()
        } else {
            r
        }
    })
}

fn p_exact_to_inexact(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Flonum(num(&a[0], "exact->inexact")?.as_f64()))
}

fn p_inexact_to_exact(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match num(&a[0], "inexact->exact")? {
        Num::Fix(n) => Ok(Value::Fixnum(n)),
        Num::Flo(x) if x.fract() == 0.0 => Ok(Value::Fixnum(x as i64)),
        Num::Flo(x) => Err(SchemeError::runtime(format!("inexact->exact: not an integer: {x}"))),
    }
}

fn p_number_to_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    num(&a[0], "number->string")?;
    Ok(Value::string(a[0].to_string()))
}

fn p_string_to_number(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string->number")?;
    let s = s.borrow();
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Fixnum(n));
    }
    match s.parse::<f64>() {
        Ok(x) => Ok(Value::Flonum(x)),
        Err(_) => Ok(Value::Bool(false)),
    }
}

// Type predicates.

macro_rules! pred {
    ($name:ident, $pat:pat) => {
        fn $name(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
            Ok(Value::Bool(matches!(&a[0], $pat)))
        }
    };
}

pred!(p_pair, Value::Pair(_));
pred!(p_null, Value::Nil);
pred!(p_number, Value::Fixnum(_) | Value::Flonum(_));
pred!(p_integer, Value::Fixnum(_));
pred!(p_real, Value::Fixnum(_) | Value::Flonum(_));
pred!(p_boolean, Value::Bool(_));
pred!(p_symbol, Value::Sym(_));
pred!(p_string_p, Value::Str(_));
pred!(p_char_p, Value::Char(_));
pred!(p_vector_p, Value::Vector(_));

fn p_procedure(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(a[0].is_procedure()))
}

fn p_list_p(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(a[0].list_len().is_some()))
}

fn p_not(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(!a[0].is_truthy()))
}

fn p_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(a[0].eq_value(&a[1])))
}

fn p_eqv(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(a[0].eqv_value(&a[1])))
}

fn p_equal(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(a[0].equal_value(&a[1])))
}

// Symbols and strings.

fn p_symbol_to_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::string(want_symbol(&a[0], "symbol->string")?.as_str()))
}

fn p_string_to_symbol(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string->symbol")?;
    let name = s.borrow().clone();
    Ok(Value::Sym(Symbol::intern(&name)))
}

fn p_string_length(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string-length")?;
    let n = s.borrow().chars().count();
    Ok(Value::Fixnum(n as i64))
}

fn p_string_ref(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string-ref")?;
    let i = want_fixnum(&a[1], "string-ref")?;
    let c = s.borrow().chars().nth(i as usize);
    c.map(Value::Char)
        .ok_or_else(|| SchemeError::runtime(format!("string-ref: index {i} out of range")))
}

fn p_substring(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "substring")?;
    let start = want_fixnum(&a[1], "substring")? as usize;
    let end = want_fixnum(&a[2], "substring")? as usize;
    let s = s.borrow();
    let chars: Vec<char> = s.chars().collect();
    if start > end || end > chars.len() {
        return Err(SchemeError::runtime(format!("substring: bad range {start}..{end}")));
    }
    Ok(Value::string(chars[start..end].iter().collect::<String>()))
}

fn p_string_append(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut out = String::new();
    for v in a {
        out.push_str(&want_string(v, "string-append")?.borrow());
    }
    Ok(Value::string(out))
}

fn p_string_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_string(&a[0], "string=?")?;
    let y = want_string(&a[1], "string=?")?;
    let r = *x.borrow() == *y.borrow();
    Ok(Value::Bool(r))
}

fn p_string_lt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_string(&a[0], "string<?")?;
    let y = want_string(&a[1], "string<?")?;
    let r = *x.borrow() < *y.borrow();
    Ok(Value::Bool(r))
}

fn p_string_to_list(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string->list")?;
    let chars: Vec<Value> = s.borrow().chars().map(Value::Char).collect();
    Ok(Value::list(chars))
}

fn p_list_to_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut out = String::new();
    for v in a[0].list_to_vec()? {
        out.push(want_char(&v, "list->string")?);
    }
    Ok(Value::string(out))
}

fn p_make_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let n = want_fixnum(&a[0], "make-string")? as usize;
    let c = match a.get(1) {
        Some(v) => want_char(v, "make-string")?,
        None => ' ',
    };
    Ok(Value::string(std::iter::repeat_n(c, n).collect::<String>()))
}

fn p_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut out = String::new();
    for v in a {
        out.push(want_char(v, "string")?);
    }
    Ok(Value::string(out))
}

fn p_string_set(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string-set!")?;
    let i = want_fixnum(&a[1], "string-set!")? as usize;
    let c = want_char(&a[2], "string-set!")?;
    let mut s = s.borrow_mut();
    let chars: Vec<char> = s.chars().collect();
    if i >= chars.len() {
        return Err(SchemeError::runtime(format!("string-set!: index {i} out of range")));
    }
    *s = chars.iter().enumerate().map(|(j, &ch)| if j == i { c } else { ch }).collect();
    Ok(Value::Unspecified)
}

fn p_string_fill(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string-fill!")?;
    let c = want_char(&a[1], "string-fill!")?;
    let mut s = s.borrow_mut();
    let n = s.chars().count();
    *s = std::iter::repeat_n(c, n).collect();
    Ok(Value::Unspecified)
}

fn p_string_copy(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "string-copy")?;
    let copied = s.borrow().clone();
    Ok(Value::string(copied))
}

fn float_fn(a: &[Value], who: &str, f: fn(f64) -> f64) -> Result<Value, SchemeError> {
    Ok(Value::Flonum(f(num(&a[0], who)?.as_f64())))
}

fn p_sin(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    float_fn(a, "sin", f64::sin)
}

fn p_cos(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    float_fn(a, "cos", f64::cos)
}

fn p_tan(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    float_fn(a, "tan", f64::tan)
}

fn p_exp(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    float_fn(a, "exp", f64::exp)
}

fn p_log(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    float_fn(a, "log", f64::ln)
}

fn p_atan(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match a.len() {
        1 => float_fn(a, "atan", f64::atan),
        _ => Ok(Value::Flonum(num(&a[0], "atan")?.as_f64().atan2(num(&a[1], "atan")?.as_f64()))),
    }
}

fn p_char_gt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char>?")? > want_char(&a[1], "char>?")?))
}

fn p_char_le(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char<=?")? <= want_char(&a[1], "char<=?")?))
}

fn p_char_ge(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char>=?")? >= want_char(&a[1], "char>=?")?))
}

fn p_string_gt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_string(&a[0], "string>?")?;
    let y = want_string(&a[1], "string>?")?;
    let r = *x.borrow() > *y.borrow();
    Ok(Value::Bool(r))
}

fn p_string_le(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_string(&a[0], "string<=?")?;
    let y = want_string(&a[1], "string<=?")?;
    let r = *x.borrow() <= *y.borrow();
    Ok(Value::Bool(r))
}

fn p_string_ge(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_string(&a[0], "string>=?")?;
    let y = want_string(&a[1], "string>=?")?;
    let r = *x.borrow() >= *y.borrow();
    Ok(Value::Bool(r))
}

fn p_exact_p(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(matches!(&a[0], Value::Fixnum(_))))
}

fn p_inexact_p(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(matches!(&a[0], Value::Flonum(_))))
}

// Characters.

fn p_char_to_integer(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Fixnum(want_char(&a[0], "char->integer")? as i64))
}

fn p_integer_to_char(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let n = want_fixnum(&a[0], "integer->char")?;
    u32::try_from(n)
        .ok()
        .and_then(char::from_u32)
        .map(Value::Char)
        .ok_or_else(|| SchemeError::runtime(format!("integer->char: bad code point {n}")))
}

fn p_char_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char=?")? == want_char(&a[1], "char=?")?))
}

fn p_char_lt(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char<?")? < want_char(&a[1], "char<?")?))
}

fn p_char_ci_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_char(&a[0], "char-ci=?")?.to_ascii_lowercase();
    let y = want_char(&a[1], "char-ci=?")?.to_ascii_lowercase();
    Ok(Value::Bool(x == y))
}

fn p_string_ci_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let x = want_string(&a[0], "string-ci=?")?;
    let y = want_string(&a[1], "string-ci=?")?;
    let r = x.borrow().to_lowercase() == y.borrow().to_lowercase();
    Ok(Value::Bool(r))
}

fn p_boolean_eq(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match (&a[0], &a[1]) {
        (Value::Bool(x), Value::Bool(y)) => Ok(Value::Bool(x == y)),
        _ => {
            let offender = if matches!(&a[0], Value::Bool(_)) { &a[1] } else { &a[0] };
            Err(SchemeError::runtime(format!("boolean=?: not a boolean: {offender}")))
        }
    }
}

fn p_char_upcase(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Char(want_char(&a[0], "char-upcase")?.to_ascii_uppercase()))
}

fn p_char_downcase(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Char(want_char(&a[0], "char-downcase")?.to_ascii_lowercase()))
}

fn p_char_alphabetic(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char-alphabetic?")?.is_alphabetic()))
}

fn p_char_numeric(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char-numeric?")?.is_numeric()))
}

fn p_char_whitespace(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(want_char(&a[0], "char-whitespace?")?.is_whitespace()))
}

// Vectors.

fn p_make_vector(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let n = want_fixnum(&a[0], "make-vector")? as usize;
    let fill = a.get(1).cloned().unwrap_or(Value::Fixnum(0));
    Ok(Value::Vector(Rc::new(RefCell::new(vec![fill; n]))))
}

fn p_vector(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Vector(Rc::new(RefCell::new(a.to_vec()))))
}

fn p_vector_length(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let v = want_vector(&a[0], "vector-length")?;
    let n = v.borrow().len();
    Ok(Value::Fixnum(n as i64))
}

fn p_vector_ref(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let v = want_vector(&a[0], "vector-ref")?;
    let i = want_fixnum(&a[1], "vector-ref")?;
    let v = v.borrow();
    usize::try_from(i)
        .ok()
        .and_then(|i| v.get(i))
        .cloned()
        .ok_or_else(|| SchemeError::runtime(format!("vector-ref: index {i} out of range")))
}

fn p_vector_set(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let v = want_vector(&a[0], "vector-set!")?;
    let i = want_fixnum(&a[1], "vector-set!")?;
    let mut v = v.borrow_mut();
    let len = v.len();
    let slot = usize::try_from(i).ok().and_then(|i| v.get_mut(i)).ok_or_else(|| {
        SchemeError::runtime(format!("vector-set!: index {i} out of range 0..{len}"))
    })?;
    *slot = a[2].clone();
    Ok(Value::Unspecified)
}

fn p_vector_to_list(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let v = want_vector(&a[0], "vector->list")?;
    let items = v.borrow().clone();
    Ok(Value::list(items))
}

fn p_list_to_vector(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Vector(Rc::new(RefCell::new(a[0].list_to_vec()?))))
}

fn p_vector_fill(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let v = want_vector(&a[0], "vector-fill!")?;
    v.borrow_mut().fill(a[1].clone());
    Ok(Value::Unspecified)
}

// I/O. `display`/`write`/`newline` take an optional string port; without
// one they write to the engine's captured output.

fn emit(ctx: &mut PrimCtx<'_>, port: Option<&Value>, text: &str) -> Result<Value, SchemeError> {
    match port {
        None => ctx.out.push_str(text),
        Some(Value::Port(p)) => p.borrow_mut().push_str(text),
        Some(other) => return Err(SchemeError::runtime(format!("expected a port, got {other}"))),
    }
    Ok(Value::Unspecified)
}

fn p_display(ctx: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    emit(ctx, a.get(1), &Displayed(&a[0]).to_string())
}

fn p_write(ctx: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    emit(ctx, a.get(1), &a[0].to_string())
}

fn p_newline(ctx: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    emit(ctx, a.first(), "\n")
}

fn p_open_output_string(_: &mut PrimCtx<'_>, _: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::string_port())
}

fn p_get_output_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match &a[0] {
        Value::Port(p) => Ok(Value::string(p.borrow().clone())),
        other => {
            Err(SchemeError::runtime(format!("get-output-string: expected a port, got {other}")))
        }
    }
}

fn p_port_p(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(matches!(&a[0], Value::Port(_))))
}

fn p_error(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let mut msg = match &a[0] {
        Value::Str(s) => s.borrow().clone(),
        other => other.to_string(),
    };
    for irritant in &a[1..] {
        msg.push(' ');
        msg.push_str(&irritant.to_string());
    }
    Err(SchemeError::Runtime { message: msg })
}

fn p_void(_: &mut PrimCtx<'_>, _: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Unspecified)
}

fn p_read_from_string(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    let s = want_string(&a[0], "read-from-string")?;
    let src = s.borrow().clone();
    crate::reader::read_one(&src)
        .map_err(|e| SchemeError::runtime(format!("read-from-string: {e}")))
}

fn p_values(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    // A single value passes through untagged (R5RS: `(values v)` ≡ `v`).
    match a {
        [v] => Ok(v.clone()),
        _ => Ok(Value::Values(Rc::new(a.to_vec()))),
    }
}

fn p_values_p(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    Ok(Value::Bool(matches!(&a[0], Value::Values(_))))
}

fn p_values_to_list(_: &mut PrimCtx<'_>, a: &[Value]) -> Result<Value, SchemeError> {
    match &a[0] {
        Value::Values(vs) => Ok(Value::list(vs.iter().cloned())),
        other => Ok(Value::list([other.clone()])),
    }
}

/// The primitive table. Order is the [`Primitive`] index space; append
/// only.
pub static PRIMITIVES: &[PrimDef] = &[
    PrimDef { name: "cons", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_cons) },
    PrimDef { name: "car", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_car) },
    PrimDef { name: "cdr", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cdr) },
    PrimDef { name: "set-car!", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_set_car) },
    PrimDef { name: "set-cdr!", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_set_cdr) },
    PrimDef { name: "caar", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_caar) },
    PrimDef { name: "cadr", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cadr) },
    PrimDef { name: "cdar", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cdar) },
    PrimDef { name: "cddr", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cddr) },
    PrimDef { name: "caddr", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_caddr) },
    PrimDef { name: "cdddr", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cdddr) },
    PrimDef { name: "cadddr", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cadddr) },
    PrimDef { name: "list", min_args: 0, max_args: None, kind: PrimKind::Normal(p_list) },
    PrimDef { name: "length", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_length) },
    PrimDef { name: "append", min_args: 0, max_args: None, kind: PrimKind::Normal(p_append) },
    PrimDef { name: "reverse", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_reverse) },
    PrimDef {
        name: "list-tail",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_list_tail),
    },
    PrimDef {
        name: "list-ref",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_list_ref),
    },
    PrimDef { name: "memq", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_memq) },
    PrimDef { name: "memv", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_memv) },
    PrimDef { name: "member", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_member) },
    PrimDef { name: "assq", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_assq) },
    PrimDef { name: "assv", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_assv) },
    PrimDef { name: "assoc", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_assoc) },
    PrimDef { name: "+", min_args: 0, max_args: None, kind: PrimKind::Normal(p_add) },
    PrimDef { name: "-", min_args: 1, max_args: None, kind: PrimKind::Normal(p_sub) },
    PrimDef { name: "*", min_args: 0, max_args: None, kind: PrimKind::Normal(p_mul) },
    PrimDef { name: "/", min_args: 1, max_args: None, kind: PrimKind::Normal(p_div) },
    PrimDef {
        name: "quotient",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_quotient),
    },
    PrimDef {
        name: "remainder",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_remainder),
    },
    PrimDef { name: "modulo", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_modulo) },
    PrimDef { name: "=", min_args: 2, max_args: None, kind: PrimKind::Normal(p_num_eq) },
    PrimDef { name: "<", min_args: 2, max_args: None, kind: PrimKind::Normal(p_lt) },
    PrimDef { name: ">", min_args: 2, max_args: None, kind: PrimKind::Normal(p_gt) },
    PrimDef { name: "<=", min_args: 2, max_args: None, kind: PrimKind::Normal(p_le) },
    PrimDef { name: ">=", min_args: 2, max_args: None, kind: PrimKind::Normal(p_ge) },
    PrimDef { name: "zero?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_zero) },
    PrimDef {
        name: "positive?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_positive),
    },
    PrimDef {
        name: "negative?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_negative),
    },
    PrimDef { name: "odd?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_odd) },
    PrimDef { name: "even?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_even) },
    PrimDef { name: "min", min_args: 1, max_args: None, kind: PrimKind::Normal(p_min) },
    PrimDef { name: "max", min_args: 1, max_args: None, kind: PrimKind::Normal(p_max) },
    PrimDef { name: "abs", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_abs) },
    PrimDef { name: "gcd", min_args: 0, max_args: None, kind: PrimKind::Normal(p_gcd) },
    PrimDef { name: "expt", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_expt) },
    PrimDef { name: "sqrt", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_sqrt) },
    PrimDef { name: "floor", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_floor) },
    PrimDef { name: "ceiling", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_ceiling) },
    PrimDef {
        name: "truncate",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_truncate),
    },
    PrimDef { name: "round", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_round) },
    PrimDef {
        name: "exact->inexact",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_exact_to_inexact),
    },
    PrimDef {
        name: "inexact->exact",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_inexact_to_exact),
    },
    PrimDef {
        name: "number->string",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_number_to_string),
    },
    PrimDef {
        name: "string->number",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_string_to_number),
    },
    PrimDef { name: "pair?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_pair) },
    PrimDef { name: "null?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_null) },
    PrimDef { name: "list?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_list_p) },
    PrimDef { name: "number?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_number) },
    PrimDef { name: "integer?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_integer) },
    PrimDef { name: "real?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_real) },
    PrimDef { name: "boolean?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_boolean) },
    PrimDef { name: "symbol?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_symbol) },
    PrimDef { name: "string?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_string_p) },
    PrimDef { name: "char?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_char_p) },
    PrimDef { name: "vector?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_vector_p) },
    PrimDef {
        name: "procedure?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_procedure),
    },
    PrimDef { name: "not", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_not) },
    PrimDef { name: "eq?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_eq) },
    PrimDef { name: "eqv?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_eqv) },
    PrimDef { name: "equal?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_equal) },
    PrimDef {
        name: "symbol->string",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_symbol_to_string),
    },
    PrimDef {
        name: "string->symbol",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_string_to_symbol),
    },
    PrimDef {
        name: "string-length",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_string_length),
    },
    PrimDef {
        name: "string-ref",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_ref),
    },
    PrimDef {
        name: "substring",
        min_args: 3,
        max_args: Some(3),
        kind: PrimKind::Normal(p_substring),
    },
    PrimDef {
        name: "string-append",
        min_args: 0,
        max_args: None,
        kind: PrimKind::Normal(p_string_append),
    },
    PrimDef {
        name: "string=?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_eq),
    },
    PrimDef {
        name: "string<?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_lt),
    },
    PrimDef {
        name: "string->list",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_string_to_list),
    },
    PrimDef {
        name: "list->string",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_list_to_string),
    },
    PrimDef {
        name: "make-string",
        min_args: 1,
        max_args: Some(2),
        kind: PrimKind::Normal(p_make_string),
    },
    PrimDef { name: "string", min_args: 0, max_args: None, kind: PrimKind::Normal(p_string) },
    PrimDef {
        name: "string-set!",
        min_args: 3,
        max_args: Some(3),
        kind: PrimKind::Normal(p_string_set),
    },
    PrimDef {
        name: "string-fill!",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_fill),
    },
    PrimDef {
        name: "string-copy",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_string_copy),
    },
    PrimDef { name: "sin", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_sin) },
    PrimDef { name: "cos", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_cos) },
    PrimDef { name: "tan", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_tan) },
    PrimDef { name: "exp", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_exp) },
    PrimDef { name: "log", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_log) },
    PrimDef { name: "atan", min_args: 1, max_args: Some(2), kind: PrimKind::Normal(p_atan) },
    PrimDef { name: "char>?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_char_gt) },
    PrimDef { name: "char<=?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_char_le) },
    PrimDef { name: "char>=?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_char_ge) },
    PrimDef {
        name: "string>?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_gt),
    },
    PrimDef {
        name: "string<=?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_le),
    },
    PrimDef {
        name: "string>=?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_ge),
    },
    PrimDef { name: "exact?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_exact_p) },
    PrimDef {
        name: "inexact?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_inexact_p),
    },
    PrimDef {
        name: "char->integer",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_char_to_integer),
    },
    PrimDef {
        name: "integer->char",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_integer_to_char),
    },
    PrimDef { name: "char=?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_char_eq) },
    PrimDef { name: "char<?", min_args: 2, max_args: Some(2), kind: PrimKind::Normal(p_char_lt) },
    PrimDef {
        name: "char-ci=?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_char_ci_eq),
    },
    PrimDef {
        name: "string-ci=?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_string_ci_eq),
    },
    PrimDef {
        name: "boolean=?",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_boolean_eq),
    },
    PrimDef {
        name: "char-upcase",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_char_upcase),
    },
    PrimDef {
        name: "char-downcase",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_char_downcase),
    },
    PrimDef {
        name: "char-alphabetic?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_char_alphabetic),
    },
    PrimDef {
        name: "char-numeric?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_char_numeric),
    },
    PrimDef {
        name: "char-whitespace?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_char_whitespace),
    },
    PrimDef {
        name: "make-vector",
        min_args: 1,
        max_args: Some(2),
        kind: PrimKind::Normal(p_make_vector),
    },
    PrimDef { name: "vector", min_args: 0, max_args: None, kind: PrimKind::Normal(p_vector) },
    PrimDef {
        name: "vector-length",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_vector_length),
    },
    PrimDef {
        name: "vector-ref",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_vector_ref),
    },
    PrimDef {
        name: "vector-set!",
        min_args: 3,
        max_args: Some(3),
        kind: PrimKind::Normal(p_vector_set),
    },
    PrimDef {
        name: "vector->list",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_vector_to_list),
    },
    PrimDef {
        name: "list->vector",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_list_to_vector),
    },
    PrimDef {
        name: "vector-fill!",
        min_args: 2,
        max_args: Some(2),
        kind: PrimKind::Normal(p_vector_fill),
    },
    PrimDef { name: "display", min_args: 1, max_args: Some(2), kind: PrimKind::Normal(p_display) },
    PrimDef { name: "write", min_args: 1, max_args: Some(2), kind: PrimKind::Normal(p_write) },
    PrimDef { name: "newline", min_args: 0, max_args: Some(1), kind: PrimKind::Normal(p_newline) },
    PrimDef {
        name: "open-output-string",
        min_args: 0,
        max_args: Some(0),
        kind: PrimKind::Normal(p_open_output_string),
    },
    PrimDef {
        name: "get-output-string",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_get_output_string),
    },
    PrimDef { name: "port?", min_args: 1, max_args: Some(1), kind: PrimKind::Normal(p_port_p) },
    PrimDef { name: "error", min_args: 1, max_args: None, kind: PrimKind::Normal(p_error) },
    PrimDef { name: "void", min_args: 0, max_args: Some(0), kind: PrimKind::Normal(p_void) },
    PrimDef { name: "values", min_args: 0, max_args: None, kind: PrimKind::Normal(p_values) },
    PrimDef {
        name: "%values?",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_values_p),
    },
    PrimDef {
        name: "%values->list",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_values_to_list),
    },
    // Stack introspection (the paper's §3 debugger walk, from Scheme).
    PrimDef { name: "stack-frames", min_args: 0, max_args: Some(1), kind: PrimKind::StackFrames },
    // Trace-sink readout (the observability layer, from Scheme).
    PrimDef { name: "trace-stats", min_args: 0, max_args: Some(0), kind: PrimKind::TraceStats },
    PrimDef { name: "eval", min_args: 1, max_args: Some(1), kind: PrimKind::Eval },
    PrimDef {
        name: "read-from-string",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::Normal(p_read_from_string),
    },
    PrimDef {
        name: "call-with-current-continuation",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::CallCC,
    },
    PrimDef { name: "call/cc", min_args: 1, max_args: Some(1), kind: PrimKind::CallCC },
    // Raw capture without the prelude's dynamic-wind rerooting wrapper.
    PrimDef { name: "%call/cc", min_args: 1, max_args: Some(1), kind: PrimKind::CallCC },
    // Raw one-shot capture; `call/1cc` in the prelude adds the rerooting
    // wrapper.
    PrimDef { name: "%call/1cc", min_args: 1, max_args: Some(1), kind: PrimKind::CallCC1 },
    PrimDef { name: "apply", min_args: 2, max_args: None, kind: PrimKind::Apply },
    PrimDef { name: "set-timer", min_args: 1, max_args: Some(1), kind: PrimKind::SetTimer },
    PrimDef {
        name: "set-timer-handler!",
        min_args: 1,
        max_args: Some(1),
        kind: PrimKind::SetTimerHandler,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Result<Value, SchemeError> {
        let idx = PRIMITIVES.iter().position(|d| d.name == name).expect("unknown primitive");
        let PrimKind::Normal(f) = &PRIMITIVES[idx].kind else { panic!("not a normal primitive") };
        let mut out = String::new();
        f(&mut PrimCtx { out: &mut out }, args)
    }

    #[test]
    fn table_names_are_unique() {
        let mut names: Vec<_> = PRIMITIVES.iter().map(|d| d.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(call("+", &[]).unwrap(), Value::Fixnum(0));
        assert_eq!(call("+", &[1.into(), 2.into(), 3.into()]).unwrap(), Value::Fixnum(6));
        assert_eq!(call("-", &[5.into()]).unwrap(), Value::Fixnum(-5));
        assert_eq!(call("-", &[5.into(), 2.into(), 1.into()]).unwrap(), Value::Fixnum(2));
        assert_eq!(call("*", &[3.into(), 4.into()]).unwrap(), Value::Fixnum(12));
        assert_eq!(call("/", &[6.into(), 3.into()]).unwrap(), Value::Fixnum(2));
        assert_eq!(call("/", &[1.into(), 2.into()]).unwrap(), Value::Flonum(0.5));
        assert_eq!(call("+", &[1.into(), Value::Flonum(0.5)]).unwrap(), Value::Flonum(1.5));
        assert!(call("/", &[1.into(), 0.into()]).is_err());
        assert!(call("+", &[Value::sym("x")]).is_err());
        assert!(call("+", &[Value::Fixnum(i64::MAX), 1.into()]).is_err());
    }

    #[test]
    fn integer_division() {
        assert_eq!(call("quotient", &[7.into(), 2.into()]).unwrap(), Value::Fixnum(3));
        assert_eq!(call("remainder", &[7.into(), 2.into()]).unwrap(), Value::Fixnum(1));
        assert_eq!(call("remainder", &[(-7).into(), 2.into()]).unwrap(), Value::Fixnum(-1));
        assert_eq!(call("modulo", &[(-7).into(), 2.into()]).unwrap(), Value::Fixnum(1));
        assert_eq!(call("modulo", &[7.into(), (-2).into()]).unwrap(), Value::Fixnum(-1));
        assert_eq!(call("modulo", &[7.into(), 2.into()]).unwrap(), Value::Fixnum(1));
    }

    #[test]
    fn comparisons_chain() {
        assert_eq!(call("<", &[1.into(), 2.into(), 3.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("<", &[1.into(), 3.into(), 2.into()]).unwrap(), Value::Bool(false));
        assert_eq!(call("=", &[2.into(), 2.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call(">=", &[3.into(), 3.into(), 1.into()]).unwrap(), Value::Bool(true));
        assert_eq!(
            call("=", &[2.into(), Value::Flonum(2.0)]).unwrap(),
            Value::Bool(true),
            "mixed exact/inexact comparison"
        );
    }

    #[test]
    fn list_operations() {
        let l = call("list", &[1.into(), 2.into(), 3.into()]).unwrap();
        assert_eq!(call("length", std::slice::from_ref(&l)).unwrap(), Value::Fixnum(3));
        assert_eq!(call("reverse", std::slice::from_ref(&l)).unwrap().to_string(), "(3 2 1)");
        assert_eq!(call("list-ref", &[l.clone(), 1.into()]).unwrap(), Value::Fixnum(2));
        assert_eq!(call("list-tail", &[l.clone(), 2.into()]).unwrap().to_string(), "(3)");
        let l2 = call("list", &[4.into()]).unwrap();
        assert_eq!(call("append", &[l, l2]).unwrap().to_string(), "(1 2 3 4)");
        assert_eq!(call("append", &[]).unwrap(), Value::Nil);
    }

    #[test]
    fn member_and_assoc() {
        let l = call("list", &[1.into(), 2.into(), 3.into()]).unwrap();
        assert_eq!(call("memv", &[2.into(), l.clone()]).unwrap().to_string(), "(2 3)");
        assert_eq!(call("memv", &[9.into(), l]).unwrap(), Value::Bool(false));
        let alist = Value::list([
            Value::cons(Value::sym("a"), 1.into()),
            Value::cons(Value::sym("b"), 2.into()),
        ]);
        assert_eq!(call("assq", &[Value::sym("b"), alist.clone()]).unwrap().to_string(), "(b . 2)");
        assert_eq!(call("assq", &[Value::sym("z"), alist]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn cxr_compositions() {
        let l = crate::reader::read_one("((1 2) (3 4))").unwrap();
        assert_eq!(call("caar", std::slice::from_ref(&l)).unwrap(), Value::Fixnum(1));
        assert_eq!(call("cadr", std::slice::from_ref(&l)).unwrap().to_string(), "(3 4)");
        assert_eq!(call("cddr", std::slice::from_ref(&l)).unwrap(), Value::Nil);
    }

    #[test]
    fn string_operations() {
        assert_eq!(call("string-length", &["hello".into()]).unwrap(), Value::Fixnum(5));
        assert_eq!(call("string-ref", &["abc".into(), 1.into()]).unwrap(), Value::Char('b'));
        assert_eq!(
            call("substring", &["hello".into(), 1.into(), 3.into()]).unwrap(),
            Value::string("el")
        );
        assert_eq!(
            call("string-append", &["ab".into(), "cd".into()]).unwrap(),
            Value::string("abcd")
        );
        assert_eq!(call("string=?", &["a".into(), "a".into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("string<?", &["a".into(), "b".into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("string->symbol", &["foo".into()]).unwrap(), Value::sym("foo"));
        assert_eq!(call("symbol->string", &[Value::sym("foo")]).unwrap(), Value::string("foo"));
        assert_eq!(call("string->number", &["42".into()]).unwrap(), Value::Fixnum(42));
        assert_eq!(call("string->number", &["nope".into()]).unwrap(), Value::Bool(false));
        assert_eq!(call("number->string", &[42.into()]).unwrap(), Value::string("42"));
    }

    #[test]
    fn vector_operations() {
        let v = call("make-vector", &[3.into(), Value::sym("x")]).unwrap();
        assert_eq!(call("vector-length", std::slice::from_ref(&v)).unwrap(), Value::Fixnum(3));
        call("vector-set!", &[v.clone(), 1.into(), 9.into()]).unwrap();
        assert_eq!(call("vector-ref", &[v.clone(), 1.into()]).unwrap(), Value::Fixnum(9));
        assert!(call("vector-ref", &[v.clone(), 5.into()]).is_err());
        assert!(call("vector-ref", &[v.clone(), (-1).into()]).is_err());
        assert_eq!(call("vector->list", &[v]).unwrap().to_string(), "(x 9 x)");
    }

    #[test]
    fn predicates() {
        assert_eq!(call("pair?", &[Value::cons(1.into(), Value::Nil)]).unwrap(), Value::Bool(true));
        assert_eq!(call("null?", &[Value::Nil]).unwrap(), Value::Bool(true));
        assert_eq!(call("list?", &[Value::cons(1.into(), 2.into())]).unwrap(), Value::Bool(false));
        assert_eq!(call("not", &[Value::Bool(false)]).unwrap(), Value::Bool(true));
        assert_eq!(call("not", &[0.into()]).unwrap(), Value::Bool(false));
        assert_eq!(call("even?", &[4.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("odd?", &[(-3).into()]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn numeric_extras() {
        assert_eq!(call("min", &[3.into(), 1.into(), 2.into()]).unwrap(), Value::Fixnum(1));
        assert_eq!(call("max", &[3.into(), Value::Flonum(4.5)]).unwrap(), Value::Flonum(4.5));
        assert_eq!(call("abs", &[(-3).into()]).unwrap(), Value::Fixnum(3));
        assert_eq!(call("gcd", &[12.into(), 18.into()]).unwrap(), Value::Fixnum(6));
        assert_eq!(call("expt", &[2.into(), 10.into()]).unwrap(), Value::Fixnum(1024));
        assert_eq!(call("sqrt", &[9.into()]).unwrap(), Value::Fixnum(3));
        assert_eq!(call("sqrt", &[2.into()]).unwrap(), Value::Flonum(2f64.sqrt()));
        assert_eq!(call("floor", &[Value::Flonum(2.7)]).unwrap(), Value::Flonum(2.0));
        assert_eq!(call("round", &[Value::Flonum(2.5)]).unwrap(), Value::Flonum(2.0));
        assert_eq!(call("round", &[Value::Flonum(3.5)]).unwrap(), Value::Flonum(4.0));
        assert_eq!(call("exact->inexact", &[2.into()]).unwrap(), Value::Flonum(2.0));
        assert_eq!(call("inexact->exact", &[Value::Flonum(2.0)]).unwrap(), Value::Fixnum(2));
    }

    #[test]
    fn char_operations() {
        assert_eq!(call("char->integer", &['A'.into()]).unwrap(), Value::Fixnum(65));
        assert_eq!(call("integer->char", &[97.into()]).unwrap(), Value::Char('a'));
        assert_eq!(call("char=?", &['a'.into(), 'a'.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("char<?", &['a'.into(), 'b'.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("char-upcase", &['a'.into()]).unwrap(), Value::Char('A'));
        assert_eq!(call("char-alphabetic?", &['a'.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("char-numeric?", &['7'.into()]).unwrap(), Value::Bool(true));
        assert_eq!(call("char-whitespace?", &[' '.into()]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn io_writes_to_ctx() {
        let idx = PRIMITIVES.iter().position(|d| d.name == "display").unwrap();
        let PrimKind::Normal(f) = &PRIMITIVES[idx].kind else { panic!() };
        let mut out = String::new();
        f(&mut PrimCtx { out: &mut out }, &["hi".into()]).unwrap();
        assert_eq!(out, "hi");
        let idx = PRIMITIVES.iter().position(|d| d.name == "write").unwrap();
        let PrimKind::Normal(f) = &PRIMITIVES[idx].kind else { panic!() };
        f(&mut PrimCtx { out: &mut out }, &["hi".into()]).unwrap();
        assert_eq!(out, "hi\"hi\"");
    }

    #[test]
    fn error_raises() {
        let e = call("error", &["boom".into(), 42.into()]).unwrap_err();
        assert_eq!(e.to_string(), "runtime error: boom 42");
    }

    #[test]
    fn mutation_primitives() {
        let p = Value::cons(1.into(), 2.into());
        call("set-car!", &[p.clone(), 10.into()]).unwrap();
        call("set-cdr!", &[p.clone(), 20.into()]).unwrap();
        assert_eq!(p.to_string(), "(10 . 20)");
    }

    #[test]
    fn install_defines_all() {
        let mut globals = crate::code::Globals::new();
        install(&mut globals);
        let g = globals.lookup(Symbol::intern("call/cc")).unwrap();
        assert!(matches!(globals.get(g).unwrap(), Value::Primitive(_)));
        assert_eq!(globals.len(), PRIMITIVES.len());
    }
}
