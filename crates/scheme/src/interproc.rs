//! Interprocedural bounded-depth overflow-check elision.
//!
//! The paper's §5/Figure 8 argument elides the overflow check at call
//! sites whose callee provably stays inside the two-frame reserve. The
//! base compiler proves that only for *direct* applications of leaf (or
//! prim-leaf) lambdas. This module makes the reserve transitive through
//! the static call graph: it computes, for every lambda body in a
//! compilation unit, the maximum *unchecked frame displacement* the body
//! can accumulate above its entry point, and then elides any call site
//! whose own displacement plus the callee's accumulated maximum still
//! fits in one frame bound.
//!
//! # The height function
//!
//! Let `B` be the frame bound (so the reserve is `2B` slots, and a
//! checked call guarantees its callee at least `2B` of slack). For each
//! known body `ℓ` define `A(ℓ) ∈ {0..B, ∞}` as the least fixpoint of
//!
//! * non-tail call to a known body `t` at displacement `d`: contributes
//!   `d + A(t)` (capped to `∞` past `B`) — optimistic, as if the site
//!   were elided;
//! * non-tail call to an ordinary primitive: contributes `0` (primitives
//!   are leaf routines: no frame, §5);
//! * non-tail call to an unknown operator: contributes `0` — such sites
//!   are never elided, and the executed check re-establishes the full
//!   reserve for everything below;
//! * non-tail call to a poison primitive (`call/cc`, `call/1cc`,
//!   `apply`, `eval`): contributes `∞` — reinstated or spread control is
//!   outside the static graph;
//! * tail call to a known body `t`: contributes `A(t)` (the frame is
//!   reused, so no displacement is added);
//! * tail call to an ordinary primitive: contributes `0`;
//! * tail call to an unknown operator or poison primitive: contributes
//!   `∞`. This case is load-bearing: a tail call keeps the current
//!   frame pointer, so whatever slack the region has already consumed
//!   would be *inherited* by arbitrary callee code whose own leaf
//!   elisions assume a freshly-checked entry.
//!
//! The lattice is finite and every rule is monotone, so the iteration
//! terminates. A site at displacement `d` calling known body `t` is then
//! elided iff `d + A(t) ≤ B`: along any chain of elided calls the
//! running displacement sum is bounded by `B`, so from an entry with the
//! checked `2B` of slack every frame in the chain keeps the audited
//! one-frame reserve `fp + B ≤ end`.
//!
//! # Known targets
//!
//! A call target is *known* when the operator is a direct lambda, or a
//! global that (a) this unit defines exactly once, to a lambda, and
//! never `set!`s, and (b) is unbound at compile time (so the unit's own
//! `define` is the only binding that can ever be live at the site).
//! Operators bound to primitives in the global table are trusted only if
//! the unit neither defines nor assigns them — the same compile-time
//! promise as `stable_primitive_bindings`, and the reason the analysis
//! sits behind its own opt-in flag.
//!
//! Bodies containing a poison site never have *their* interior sites
//! elided, even when a sub-region would be provable — the conservative
//! "bail on `call/cc`" posture: capture can re-enter such a body with a
//! reinstated stack whose slack the analysis never saw.

use std::collections::{HashMap, HashSet};

use crate::code::Globals;
use crate::primitives::{def_of, PrimKind};
use crate::resolve::{RExpr, RLambda, PARAM_BASE};
use crate::value::Value;

/// The `∞` of the height lattice.
const INF: u64 = u64::MAX;

/// Identity of an AST node, stable for the lifetime of the resolved
/// tree (which outlives code generation).
fn node_key(e: &RExpr) -> usize {
    e as *const RExpr as usize
}

/// The analysis result: the set of call sites proved elidable.
#[derive(Debug)]
pub struct InterprocDecisions {
    elide: HashSet<usize>,
    bodies: usize,
}

impl InterprocDecisions {
    /// Whether the analysis proved this `RExpr::Call` node's overflow
    /// check elidable. `site` must be a node of the same resolved tree
    /// the analysis ran on.
    pub fn should_elide(&self, site: &RExpr) -> bool {
        self.elide.contains(&node_key(site))
    }

    /// Number of sites proved elidable.
    pub fn elided_sites(&self) -> usize {
        self.elide.len()
    }

    /// Number of bodies analyzed (lambdas plus the toplevel form).
    pub fn bodies(&self) -> usize {
        self.bodies
    }
}

/// What a call site's operator resolves to, before bodies are indexed.
enum RawTarget {
    /// A lambda in this unit, by `RLambda` address.
    Lambda(usize),
    /// A global slot, classified during resolution.
    Global(u32),
    /// Anything else (computed operators, locals, captures).
    Unknown,
}

/// A call site recorded during the mirror walk.
struct SiteRec {
    key: usize,
    d: u16,
    tail: bool,
    target: RawTarget,
}

/// One analyzed body (a lambda's, or the toplevel form's).
struct BodyInfo {
    sites: Vec<SiteRec>,
}

/// Final per-site classification.
#[derive(Clone, Copy)]
enum Target {
    Known(usize),
    Prim,
    Poison,
    Unknown,
}

struct Analyzer<'a> {
    globals: &'a Globals,
    /// `RLambda` address → body index (body 0 is the toplevel form).
    body_ix: HashMap<usize, usize>,
    bodies: Vec<BodyInfo>,
}

/// Runs the analysis over one resolved toplevel form.
pub fn analyze(unit: &RExpr, globals: &Globals, frame_bound: usize) -> InterprocDecisions {
    // Pass 1: stable unit-level lambda definitions and touched globals.
    let mut defs: HashMap<u32, usize> = HashMap::new();
    let mut touched: HashSet<u32> = HashSet::new();
    collect_defs(unit, &mut defs, &mut touched);

    // Pass 2: mirror the code generator's displacement arithmetic to
    // record every call site with the displacement it will be emitted at.
    let mut a = Analyzer { globals, body_ix: HashMap::new(), bodies: Vec::new() };
    a.bodies.push(BodyInfo { sites: Vec::new() });
    a.walk(0, unit, 1, true);

    // Resolve raw targets now that every unit lambda has an index.
    let resolve = |raw: &RawTarget| -> Target {
        match raw {
            RawTarget::Lambda(ptr) => {
                a.body_ix.get(ptr).map_or(Target::Unknown, |&ix| Target::Known(ix))
            }
            RawTarget::Global(g) => {
                if let Some(ptr) = defs.get(g) {
                    // Known only while the unit's own define is the sole
                    // binding that can be live: unbound before this unit
                    // runs, never assigned inside it.
                    if !a.globals.is_bound(*g) {
                        return a.body_ix.get(ptr).map_or(Target::Unknown, |&ix| Target::Known(ix));
                    }
                    return Target::Unknown;
                }
                if touched.contains(g) {
                    return Target::Unknown;
                }
                match a.globals.get(*g) {
                    Ok(Value::Primitive(p)) => match def_of(p).kind {
                        PrimKind::CallCC | PrimKind::CallCC1 | PrimKind::Apply | PrimKind::Eval => {
                            Target::Poison
                        }
                        // Every other kind completes without pushing a
                        // Scheme frame (timer arming is a slot write; the
                        // handler frame itself is pushed by a *checked*
                        // call when the timer fires).
                        _ => Target::Prim,
                    },
                    _ => Target::Unknown,
                }
            }
            RawTarget::Unknown => Target::Unknown,
        }
    };

    let n = a.bodies.len();
    let resolved: Vec<Vec<(usize, u16, bool, Target)>> = a
        .bodies
        .iter()
        .map(|b| b.sites.iter().map(|s| (s.key, s.d, s.tail, resolve(&s.target))).collect())
        .collect();
    let poisoned: Vec<bool> = resolved
        .iter()
        .map(|sites| sites.iter().any(|(_, _, _, t)| matches!(t, Target::Poison)))
        .collect();

    // Least fixpoint of the height function on {0..B, ∞}.
    let b = frame_bound as u64;
    let mut av = vec![0u64; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut acc: u64 = 0;
            for (_, d, tail, target) in &resolved[i] {
                let c = match (tail, target) {
                    (false, Target::Known(t)) => (*d as u64).saturating_add(av[*t]),
                    (false, Target::Prim) | (false, Target::Unknown) => 0,
                    (false, Target::Poison) => INF,
                    (true, Target::Known(t)) => av[*t],
                    (true, Target::Prim) => 0,
                    (true, Target::Poison) | (true, Target::Unknown) => INF,
                };
                acc = acc.max(c);
            }
            if acc > b {
                acc = INF;
            }
            if av[i] != acc {
                av[i] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Gate: elide non-tail known-target sites whose displacement plus the
    // callee's height fits the bound, outside poisoned bodies.
    let mut elide = HashSet::new();
    for i in 0..n {
        if poisoned[i] {
            continue;
        }
        for (key, d, tail, target) in &resolved[i] {
            if *tail {
                continue;
            }
            if let Target::Known(t) = target {
                if (*d as u64).saturating_add(av[*t]) <= b {
                    elide.insert(*key);
                }
            }
        }
    }
    InterprocDecisions { elide, bodies: n }
}

/// Pass 1: `defs` maps globals defined exactly once, to a lambda, and
/// never `set!`, to that lambda's address; `touched` is every global the
/// unit defines or assigns at all.
fn collect_defs(e: &RExpr, defs: &mut HashMap<u32, usize>, touched: &mut HashSet<u32>) {
    match e {
        RExpr::GlobalDef(g, v) => {
            if touched.insert(*g) {
                if let RExpr::Lambda(l) = v.as_ref() {
                    defs.insert(*g, std::rc::Rc::as_ptr(l) as usize);
                }
            } else {
                defs.remove(g);
            }
            collect_defs(v, defs, touched);
        }
        RExpr::GlobalSet(g, v) => {
            touched.insert(*g);
            defs.remove(g);
            collect_defs(v, defs, touched);
        }
        RExpr::LocalCellSet(_, v) | RExpr::FreeCellSet(_, v) => collect_defs(v, defs, touched),
        RExpr::If(c, t, f) => {
            collect_defs(c, defs, touched);
            collect_defs(t, defs, touched);
            collect_defs(f, defs, touched);
        }
        RExpr::Begin(es) => es.iter().for_each(|e| collect_defs(e, defs, touched)),
        RExpr::Call(op, args) => {
            collect_defs(op, defs, touched);
            args.iter().for_each(|a| collect_defs(a, defs, touched));
        }
        RExpr::Lambda(l) => collect_defs(&l.body, defs, touched),
        RExpr::Quote(_)
        | RExpr::LocalRef(_)
        | RExpr::LocalCellRef(_)
        | RExpr::FreeRef(_)
        | RExpr::FreeCellRef(_)
        | RExpr::GlobalRef(_) => {}
    }
}

impl Analyzer<'_> {
    /// Registers a lambda's body as an analyzed body and walks it.
    fn register(&mut self, l: &std::rc::Rc<RLambda>) {
        let ptr = std::rc::Rc::as_ptr(l) as usize;
        if self.body_ix.contains_key(&ptr) {
            return;
        }
        let ix = self.bodies.len();
        self.bodies.push(BodyInfo { sites: Vec::new() });
        self.body_ix.insert(ptr, ix);
        self.walk(ix, &l.body, PARAM_BASE + l.nparams, true);
    }

    /// Mirrors `Gen::gen`/`Gen::gen_tail`'s watermark arithmetic: `wm` is
    /// the displacement a call site at this position would be emitted at.
    fn walk(&mut self, body: usize, e: &RExpr, wm: u16, tail: bool) {
        match e {
            RExpr::Quote(_)
            | RExpr::LocalRef(_)
            | RExpr::LocalCellRef(_)
            | RExpr::FreeRef(_)
            | RExpr::FreeCellRef(_)
            | RExpr::GlobalRef(_) => {}
            RExpr::LocalCellSet(_, v)
            | RExpr::FreeCellSet(_, v)
            | RExpr::GlobalSet(_, v)
            | RExpr::GlobalDef(_, v) => self.walk(body, v, wm, false),
            RExpr::If(c, t, f) => {
                self.walk(body, c, wm, false);
                self.walk(body, t, wm, tail);
                self.walk(body, f, wm, tail);
            }
            RExpr::Begin(es) => {
                let Some((last, init)) = es.split_last() else { return };
                for e in init {
                    self.walk(body, e, wm, false);
                }
                self.walk(body, last, wm, tail);
            }
            RExpr::Lambda(l) => self.register(l),
            RExpr::Call(op, args) => {
                let nargs = args.len() as u16;
                let d = if tail { wm.max(1 + nargs) } else { wm };
                self.walk(body, op, d + 1, false);
                for (j, a) in args.iter().enumerate() {
                    self.walk(body, a, d + 2 + j as u16, false);
                }
                let target = match op.as_ref() {
                    RExpr::Lambda(l) => RawTarget::Lambda(std::rc::Rc::as_ptr(l) as usize),
                    RExpr::GlobalRef(g) => RawTarget::Global(*g),
                    _ => RawTarget::Unknown,
                };
                self.bodies[body].sites.push(SiteRec { key: node_key(e), d, tail, target });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::Globals;
    use crate::expand::Expander;
    use crate::reader::read_all;
    use crate::resolve::resolve_toplevel;

    /// Resolves a whole program (multiple forms become one `begin`).
    fn resolved(src: &str, install_prims: bool) -> (RExpr, Globals) {
        let data = read_all(src).unwrap();
        let datum = if data.len() == 1 {
            data.into_iter().next().unwrap()
        } else {
            let mut items = vec![Value::Sym(crate::intern::Symbol::intern("begin"))];
            items.extend(data);
            Value::list(items)
        };
        let mut globals = Globals::new();
        if install_prims {
            crate::primitives::install(&mut globals);
        }
        let ast = Expander::new().expand_toplevel(&datum).unwrap();
        let r = resolve_toplevel(&ast, &mut globals).unwrap();
        (r, globals)
    }

    fn decisions(src: &str) -> InterprocDecisions {
        let (r, globals) = resolved(src, true);
        analyze(&r, &globals, 64)
    }

    #[test]
    fn prim_body_helper_called_through_stable_global_is_elided() {
        // helper's body only tail-calls a primitive → A(helper) = 0, so
        // the non-tail site (helper x) inside driver is elidable even
        // though the base analysis can't see through the global.
        let d = decisions(
            "(define (helper x) (+ x 1))
             (define (driver x) (* 2 (helper x)))
             (driver 5)",
        );
        assert_eq!(d.elided_sites(), 1, "exactly the (helper x) site");
    }

    #[test]
    fn two_level_helper_chain_is_elided() {
        let d = decisions(
            "(define (leafy x) (+ x 1))
             (define (mid x) (* (leafy x) 2))
             (define (top x) (- (mid x) 1))
             (top 5)",
        );
        // (leafy x) inside mid and (mid x) inside top both prove bounded.
        assert_eq!(d.elided_sites(), 2);
    }

    #[test]
    fn self_recursion_is_unbounded() {
        let d = decisions(
            "(define (f n) (if (< n 1) 0 (+ n (f (- n 1)))))
             (f 5)",
        );
        assert_eq!(d.elided_sites(), 0, "recursive height is infinite");
    }

    #[test]
    fn mutual_recursion_is_unbounded() {
        let d = decisions(
            "(define (even? n) (if (= n 0) #t (odd? (- n 1))))
             (define (odd? n) (if (= n 0) #f (even? (not-quite (- n 1)))))
             (define (not-quite x) (+ x 0))
             (even? 4)",
        );
        // Every call into the even?/odd? cycle is unbounded (the tail
        // sites through the cycle give both procedures A=∞). The only
        // non-tail known site outside the cycle is (not-quite ...), whose
        // callee is a finite-height leaf, so exactly that one is elided.
        assert_eq!(d.elided_sites(), 1, "only the not-quite site");
    }

    #[test]
    fn higher_order_operator_bails_out() {
        let d = decisions(
            "(define (use f x) (+ (f x) 1))
             (use car '(1 2))",
        );
        assert_eq!(d.elided_sites(), 0, "computed operator is unknown");
    }

    #[test]
    fn tail_call_to_unknown_poisons_the_caller_transitively() {
        // leak tail-calls its argument: unknown tail target → A(leak)=∞,
        // so the non-tail (leak f) site cannot be elided.
        let d = decisions(
            "(define (leak f) (f))
             (define (driver f) (+ 1 (leak f)))
             (driver (lambda () 0))",
        );
        assert_eq!(d.elided_sites(), 0);
    }

    #[test]
    fn call_cc_poisons_both_height_and_body() {
        let d = decisions(
            "(define (snap k) (+ 1 2))
             (define (capture) (call-with-current-continuation snap))
             (define (driver) (+ (capture) (snap 0)))
             (driver)",
        );
        // capture's body is poisoned (A=∞) so (capture) is not elided;
        // (snap 0) inside driver targets a prim-leaf body and is.
        assert_eq!(d.elided_sites(), 1);
    }

    #[test]
    fn set_banged_global_is_not_a_known_target() {
        let d = decisions(
            "(define (helper x) (+ x 1))
             (define (driver x) (* 2 (helper x)))
             (set! helper (lambda (x) (driver x)))
             (driver 5)",
        );
        assert_eq!(d.elided_sites(), 0, "assignment revokes the stable define");
    }

    #[test]
    fn redefined_global_is_not_a_known_target() {
        let d = decisions(
            "(define (helper x) (+ x 1))
             (define (driver x) (* 2 (helper x)))
             (define (helper x) (driver x))
             (driver 5)",
        );
        assert_eq!(d.elided_sites(), 0, "second define revokes the first");
    }

    #[test]
    fn previously_bound_global_is_not_a_known_target() {
        // `car` is bound (to a primitive) before this unit runs, so the
        // unit's own define is not the only binding that can be live at
        // the site — the analysis must refuse it.
        let d = decisions(
            "(define (car x) x)
             (define (driver x) (+ 1 (car x)))
             (driver 5)",
        );
        assert_eq!(d.elided_sites(), 0);
    }

    #[test]
    fn deep_known_chains_exceeding_the_bound_are_rejected() {
        // Each hop adds its displacement; a chain long enough to overrun
        // one frame bound must stop proving sites near the top. With 40
        // params per frame, two nested hops already exceed B = 64.
        let args: Vec<String> = (0..40).map(|i| format!("a{i}")).collect();
        let params = args.join(" ");
        let ones = vec!["1"; 40].join(" ");
        let src = format!(
            "(define (lvl0 {params}) (+ a0 1))
             (define (lvl1 {params}) (+ 1 (lvl0 {ones})))
             (define (lvl2 {params}) (+ 1 (lvl1 {ones})))
             (lvl2 {ones})"
        );
        let d = decisions(&src);
        // (lvl0 ...) inside lvl1 is at displacement ≥ 42 with A(lvl0)=0 →
        // elided. (lvl1 ...) inside lvl2 is at displacement ≥ 42 with
        // A(lvl1) ≥ 42 → rejected.
        assert_eq!(d.elided_sites(), 1);
    }

    #[test]
    fn direct_lambda_operators_are_known_targets() {
        // A non-leaf direct lambda (its body calls a known helper): base
        // elision can't prove it, the interprocedural gate can.
        let d = decisions(
            "(define (helper x) (+ x 1))
             (define (driver x) (+ 1 ((lambda (y) (helper y)) x)))
             (driver 5)",
        );
        // Sites: ((lambda (y) ...) x) — known lambda, A = A(helper) = 0 →
        // elided; (helper y) is a *tail* site inside the lambda (no check
        // to elide).
        assert_eq!(d.elided_sites(), 1);
    }
}
