//! The embedding API: a complete Scheme engine over a chosen control-stack
//! strategy.

use std::cell::RefCell;
use std::rc::Rc;

use segstack_baselines::Strategy;
use segstack_core::{Config, ControlStack, Metrics, RingSink, SegmentedStack, StackStats};

use crate::code::{CodeStore, Globals};
use crate::codegen::{compile_toplevel, CheckPolicy, CompileOptions};
use crate::error::SchemeError;
use crate::expand::Expander;
use crate::intern::Symbol;
use crate::prelude::PRELUDE;
use crate::primitives;
use crate::reader::read_all;
use crate::value::Value;
use crate::vm::{run, TimerState, VmOptions};

/// Builder for [`Engine`].
///
/// # Examples
///
/// ```
/// use segstack_scheme::Engine;
/// use segstack_baselines::Strategy;
///
/// let mut engine = Engine::builder()
///     .strategy(Strategy::Segmented)
///     .build()?;
/// assert_eq!(engine.eval("(+ 1 2)")?.to_string(), "3");
/// # Ok::<(), segstack_scheme::SchemeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    strategy: Strategy,
    config: Config,
    policy: CheckPolicy,
    stable_primitive_bindings: bool,
    interprocedural_elision: bool,
    max_steps: Option<u64>,
    prelude: bool,
    trace_sink: Option<Rc<RefCell<RingSink>>>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            strategy: Strategy::Segmented,
            config: Config::default(),
            policy: CheckPolicy::default(),
            stable_primitive_bindings: false,
            interprocedural_elision: false,
            max_steps: None,
            prelude: true,
            trace_sink: None,
        }
    }
}

impl EngineBuilder {
    /// Chooses the control-stack strategy (default: segmented).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the control-stack configuration (segment size, copy bound,
    /// frame bound, …).
    pub fn config(mut self, config: Config) -> Self {
        self.config = config;
        self
    }

    /// Sets the overflow-check policy used by the compiler (experiment E8).
    pub fn check_policy(mut self, policy: CheckPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Promises the compiler that globals bound to primitives stay bound
    /// to primitives, letting [`CheckPolicy::Elide`] also skip overflow
    /// checks for direct applications of lambdas whose bodies only call
    /// primitives (`let`-shaped code). See
    /// [`CompileOptions::stable_primitive_bindings`].
    pub fn stable_primitive_bindings(mut self, stable: bool) -> Self {
        self.stable_primitive_bindings = stable;
        self
    }

    /// Enables the interprocedural bounded-depth analysis: under
    /// [`CheckPolicy::Elide`], overflow checks are also skipped at call
    /// sites whose whole callee subgraph provably fits in the two-frame
    /// reserve. Carries the same binding-stability promise as
    /// [`EngineBuilder::stable_primitive_bindings`] for the globals the
    /// analysis resolves. See [`CompileOptions::interprocedural_elision`].
    pub fn interprocedural_elision(mut self, on: bool) -> Self {
        self.interprocedural_elision = on;
        self
    }

    /// Caps VM steps per [`Engine::eval`] call (guard for tests).
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = Some(steps);
        self
    }

    /// Skips loading the Scheme prelude (library procedures,
    /// `dynamic-wind`). Raw primitives remain available.
    pub fn without_prelude(mut self) -> Self {
        self.prelude = false;
        self
    }

    /// Attaches a shared trace ring to the engine's control stack.
    ///
    /// Only the segmented strategy is instrumented; with any other
    /// strategy the sink is accepted but records nothing. Several engines
    /// (e.g. the jobs multiplexed on one serve worker) may share a single
    /// ring through clones of the same handle. The Scheme program can read
    /// the ring's aggregates with `(trace-stats)`.
    pub fn trace_sink(mut self, sink: Rc<RefCell<RingSink>>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Builds the engine (installing primitives and loading the prelude).
    ///
    /// # Errors
    ///
    /// Stack allocation failures under a configured budget, or (never in a
    /// released build) prelude compilation errors.
    pub fn build(self) -> Result<Engine, SchemeError> {
        let store = Rc::new(CodeStore::new());
        let mut globals = Globals::new();
        primitives::install(&mut globals);
        let stack = match (self.trace_sink, self.strategy) {
            (Some(sink), Strategy::Segmented) => EngineStack::Dyn(Box::new(SegmentedStack::<
                Value,
                Rc<RefCell<RingSink>>,
            >::with_sink(
                self.config.clone(),
                store.clone(),
                sink,
            )?)),
            // The untraced segmented stack — the default configuration and
            // the one every benchmark's hot path runs on — is held
            // concretely so the interpreter loop monomorphizes over it
            // (static dispatch on every push/pop/check).
            (None, Strategy::Segmented) => {
                EngineStack::Seg(Box::new(SegmentedStack::new(self.config.clone(), store.clone())?))
            }
            _ => {
                EngineStack::Dyn(self.strategy.build::<Value>(self.config.clone(), store.clone())?)
            }
        };
        let vm_opts =
            VmOptions { max_steps: self.max_steps, frame_bound: self.config.frame_bound() };
        let copts = CompileOptions {
            policy: self.policy,
            frame_bound: self.config.frame_bound(),
            stable_primitive_bindings: self.stable_primitive_bindings,
            interprocedural_elision: self.interprocedural_elision,
        };
        let mut engine = Engine {
            strategy: self.strategy,
            store,
            globals,
            stack,
            expander: Expander::new(),
            out: String::new(),
            timer: TimerState::default(),
            vm_opts,
            copts,
        };
        if self.prelude {
            engine.eval(PRELUDE)?;
            engine.out.clear();
        }
        Ok(engine)
    }
}

/// The engine's control stack: the default segmented strategy is stored
/// concretely so the VM monomorphizes over it; every other configuration
/// (baseline strategies, traced segmented) goes through dynamic dispatch.
enum EngineStack {
    /// Untraced segmented stack, statically dispatched (boxed only to keep
    /// the enum small; the VM still monomorphizes over the concrete type).
    Seg(Box<SegmentedStack<Value>>),
    /// Any other strategy (or a traced segmented stack), type-erased.
    Dyn(Box<dyn ControlStack<Value>>),
}

impl EngineStack {
    fn as_dyn(&self) -> &dyn ControlStack<Value> {
        match self {
            EngineStack::Seg(s) => &**s,
            EngineStack::Dyn(s) => &**s,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn ControlStack<Value> {
        match self {
            EngineStack::Seg(s) => &mut **s,
            EngineStack::Dyn(s) => &mut **s,
        }
    }
}

/// A Scheme system: reader, compiler and VM over a pluggable control stack.
///
/// # Examples
///
/// Continuations are first class and multi-shot:
///
/// ```
/// use segstack_scheme::Engine;
///
/// let mut engine = Engine::new()?;
/// engine.eval("(define k #f)")?;
/// let v = engine.eval("(+ 1 (call/cc (lambda (c) (set! k c) 1)))")?;
/// assert_eq!(v.to_string(), "2");
/// // Re-entering the captured continuation restarts the addition.
/// assert_eq!(engine.eval("(k 41)")?.to_string(), "42");
/// assert_eq!(engine.eval("(k 99)")?.to_string(), "100");
/// # Ok::<(), segstack_scheme::SchemeError>(())
/// ```
pub struct Engine {
    strategy: Strategy,
    store: Rc<CodeStore>,
    globals: Globals,
    stack: EngineStack,
    expander: Expander,
    out: String,
    timer: TimerState,
    vm_opts: VmOptions,
    copts: CompileOptions,
}

impl Engine {
    /// Creates an engine with the segmented strategy and default
    /// configuration.
    ///
    /// # Errors
    ///
    /// See [`EngineBuilder::build`].
    pub fn new() -> Result<Engine, SchemeError> {
        Engine::builder().build()
    }

    /// Creates an engine with the given strategy and defaults otherwise.
    ///
    /// # Errors
    ///
    /// See [`EngineBuilder::build`].
    pub fn with_strategy(strategy: Strategy) -> Result<Engine, SchemeError> {
        Engine::builder().strategy(strategy).build()
    }

    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Reads, compiles and runs `src` as one program unit, returning the
    /// last form's value.
    ///
    /// The whole input is compiled together (top-level forms splice as if
    /// wrapped in `begin`), so a continuation captured in one form re-enters
    /// the forms after it — file semantics, matching what `load` would do.
    ///
    /// # Errors
    ///
    /// Lexing, parsing, compilation or runtime errors. On error the control
    /// stack is reset (metrics are preserved).
    pub fn eval(&mut self, src: &str) -> Result<Value, SchemeError> {
        let forms = read_all(src)?;
        if forms.is_empty() {
            return Ok(Value::Unspecified);
        }
        let unit = if forms.len() == 1 {
            forms.into_iter().next().expect("length checked")
        } else {
            let mut items = vec![Value::sym("begin")];
            items.extend(forms);
            Value::list(items)
        };
        let chunk = compile_toplevel(
            &unit,
            &mut self.expander,
            &self.store,
            &mut self.globals,
            &self.copts,
        )?;
        let result = match &mut self.stack {
            EngineStack::Seg(stack) => run(
                &mut **stack,
                &self.store,
                &mut self.globals,
                &mut self.out,
                &mut self.timer,
                &self.vm_opts,
                &mut self.expander,
                &self.copts,
                chunk,
            ),
            EngineStack::Dyn(stack) => run(
                &mut **stack,
                &self.store,
                &mut self.globals,
                &mut self.out,
                &mut self.timer,
                &self.vm_opts,
                &mut self.expander,
                &self.copts,
                chunk,
            ),
        };
        match result {
            Ok(v) => Ok(v),
            Err(e) => {
                // Walk the stack before resetting it so runtime errors carry
                // a backtrace (the paper's §3 debugger use of frame-size
                // words).
                let e = match e {
                    SchemeError::Runtime { message } => {
                        let frames = self.backtrace(16);
                        if frames.is_empty() {
                            SchemeError::Runtime { message }
                        } else {
                            SchemeError::Runtime {
                                message: format!("{message}\n  in {}", frames.join("\n  in ")),
                            }
                        }
                    }
                    other => other,
                };
                self.stack.as_dyn_mut().reset();
                self.timer = TimerState::default();
                Err(e)
            }
        }
    }

    /// Walks the live control stack, naming up to `limit` pending
    /// procedures, innermost first. Works on every strategy; this is the
    /// debugger/exception-handler stack walk the paper's frame-size words
    /// exist for (§3).
    pub fn backtrace(&self, limit: usize) -> Vec<String> {
        self.stack
            .as_dyn()
            .backtrace(limit)
            .into_iter()
            .map(|ra| self.store.chunk(ra.chunk()).name.clone())
            .collect()
    }

    /// Reads, compiles and runs a Scheme source file as one program unit.
    ///
    /// # Errors
    ///
    /// I/O failures are reported as [`SchemeError::Runtime`]; everything
    /// else as in [`Engine::eval`].
    pub fn eval_file<P: AsRef<std::path::Path>>(&mut self, path: P) -> Result<Value, SchemeError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path)
            .map_err(|e| SchemeError::runtime(format!("cannot load {}: {e}", path.display())))?;
        self.eval(&src)
    }

    /// Like [`Engine::eval`], but returns the printed (write-style)
    /// representation of the result.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn eval_to_string(&mut self, src: &str) -> Result<String, SchemeError> {
        Ok(self.eval(src)?.to_string())
    }

    /// Takes and clears everything `display`/`write`/`newline` produced.
    pub fn take_output(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    /// Defines a global variable from Rust.
    pub fn define(&mut self, name: &str, value: Value) {
        let slot = self.globals.slot(Symbol::intern(name));
        self.globals.define(slot, value);
    }

    /// Reads a global variable.
    pub fn global(&self, name: &str) -> Option<Value> {
        let slot = self.globals.lookup(Symbol::intern(name))?;
        self.globals.get(slot).ok()
    }

    /// The control-stack strategy in use.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Control-stack operation counters.
    pub fn metrics(&self) -> &Metrics {
        self.stack.as_dyn().metrics()
    }

    /// Zeroes the operation counters (e.g. after warmup).
    pub fn reset_metrics(&mut self) {
        self.stack.as_dyn_mut().metrics_mut().reset();
    }

    /// Control-stack structural snapshot.
    pub fn stack_stats(&self) -> StackStats {
        self.stack.as_dyn().stats()
    }

    /// Resets the control stack to an empty initial state.
    pub fn reset_stack(&mut self) {
        self.stack.as_dyn_mut().reset();
    }

    /// Static frame sizes of every chunk compiled so far (experiment E14).
    pub fn frame_sizes(&self) -> Vec<u16> {
        self.store.frame_sizes()
    }

    /// Structurally verifies every chunk compiled so far (the Figure 4
    /// code-stream invariants; see [`CodeStore::verify`]).
    pub fn verify_code(&self) -> Vec<crate::code::VerifyError> {
        self.store.verify()
    }

    /// Number of code chunks compiled so far.
    pub fn chunk_count(&self) -> usize {
        self.store.len()
    }

    /// A disassembly listing of chunk `id` (one instruction per line,
    /// including the `FrameSize` data words around every call — the
    /// paper's Figure 4 layout, visible).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a chunk of this engine.
    pub fn disassemble(&self, id: u32) -> String {
        self.store.chunk(id).to_string()
    }

    /// Disassembles the most recently compiled chunk (e.g. the last
    /// `eval`'s top level).
    pub fn disassemble_last(&self) -> String {
        let n = self.store.len();
        assert!(n > 0, "nothing compiled yet");
        self.disassemble(n as u32 - 1)
    }

    /// Disassembles the procedure a global name is bound to, if it is
    /// bound to a closure.
    pub fn disassemble_global(&self, name: &str) -> Option<String> {
        match self.global(name)? {
            Value::Closure(c) => Some(self.disassemble(c.chunk)),
            _ => None,
        }
    }

    /// Direct access to the control stack (instrumentation, tests).
    pub fn stack_mut(&mut self) -> &mut dyn ControlStack<Value> {
        self.stack.as_dyn_mut()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("strategy", &self.strategy)
            .field("chunks", &self.store.len())
            .field("globals", &self.globals.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::builder().max_steps(50_000_000).build().unwrap()
    }

    fn eval(src: &str) -> String {
        engine().eval_to_string(src).unwrap()
    }

    #[test]
    fn arithmetic_and_printing() {
        assert_eq!(eval("(+ 1 2 3)"), "6");
        assert_eq!(eval("(* 2 (- 10 4))"), "12");
        assert_eq!(eval("(/ 7 2)"), "3.5");
        assert_eq!(eval("'(1 2 . 3)"), "(1 2 . 3)");
        assert_eq!(eval("(list 1 \"two\" #\\3)"), "(1 \"two\" #\\3)");
    }

    #[test]
    fn definitions_and_closures() {
        let mut e = engine();
        e.eval("(define (make-adder n) (lambda (x) (+ x n)))").unwrap();
        assert_eq!(e.eval_to_string("((make-adder 3) 4)").unwrap(), "7");
        e.eval("(define add2 (make-adder 2))").unwrap();
        assert_eq!(e.eval_to_string("(add2 40)").unwrap(), "42");
    }

    #[test]
    fn set_and_shared_state() {
        assert_eq!(
            eval(
                "(define (counter)
                   (let ((n 0))
                     (lambda () (set! n (+ n 1)) n)))
                 (define c (counter))
                 (c) (c) (c)"
            ),
            "3"
        );
    }

    #[test]
    fn recursion_fib_and_tak() {
        assert_eq!(
            eval("(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 20)"),
            "6765"
        );
        assert_eq!(
            eval(
                "(define (tak x y z)
                   (if (not (< y x)) z
                       (tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y))))
                 (tak 18 12 6)"
            ),
            "7"
        );
    }

    #[test]
    fn deep_tail_recursion_is_constant_space() {
        let mut e = engine();
        let v = e
            .eval("(define (count n acc) (if (= n 0) acc (count (- n 1) (+ acc 1)))) (count 100000 0)")
            .unwrap();
        assert_eq!(v.to_string(), "100000");
        assert_eq!(e.metrics().overflows, 0, "tail recursion must not grow the stack");
    }

    #[test]
    fn deep_non_tail_recursion_overflows_gracefully() {
        let mut e = engine();
        let v = e.eval("(define (sum n) (if (= n 0) 0 (+ n (sum (- n 1))))) (sum 50000)").unwrap();
        assert_eq!(v.to_string(), "1250025000");
        assert!(e.metrics().overflows > 0, "depth 50000 must overflow 16k segments");
        assert!(e.metrics().underflows >= e.metrics().overflows);
    }

    #[test]
    fn named_let_and_do_loops() {
        assert_eq!(
            eval("(let loop ((i 0) (acc 1)) (if (= i 5) acc (loop (+ i 1) (* acc 2))))"),
            "32"
        );
        assert_eq!(eval("(do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i 5) s))"), "10");
    }

    #[test]
    fn variadic_procedures() {
        assert_eq!(eval("((lambda args args) 1 2 3)"), "(1 2 3)");
        assert_eq!(eval("((lambda (a . rest) (cons a rest)) 1 2 3)"), "(1 2 3)");
        assert_eq!(eval("((lambda (a . rest) rest) 1)"), "()");
        assert!(engine().eval("((lambda (a b) a) 1)").is_err());
        assert!(engine().eval("((lambda (a . r) a))").is_err());
    }

    #[test]
    fn apply_spreads_arguments() {
        assert_eq!(eval("(apply + 1 2 '(3 4))"), "10");
        assert_eq!(eval("(apply list '(1 2))"), "(1 2)");
        assert_eq!(eval("(apply (lambda (a b c) (* a (+ b c))) '(2 3 4))"), "14");
        assert!(engine().eval("(apply + 1)").is_err(), "last arg must be a list");
    }

    #[test]
    fn call_cc_escape() {
        assert_eq!(eval("(call/cc (lambda (k) (+ 1 (k 41))))"), "41");
        assert_eq!(eval("(+ 1 (call/cc (lambda (k) 1)))"), "2");
        assert_eq!(eval("(+ 1 (call/cc (lambda (k) (k 1) 99)))"), "2");
    }

    #[test]
    fn call_1cc_escape_and_one_shot_error() {
        assert_eq!(eval("(call/1cc (lambda (k) (+ 1 (k 41))))"), "41");
        assert_eq!(eval("(+ 1 (call/1cc (lambda (k) 1)))"), "2");
        let mut e = engine();
        e.eval("(define k #f)").unwrap();
        assert_eq!(e.eval_to_string("(+ 1 (call/1cc (lambda (c) (set! k c) 1)))").unwrap(), "2");
        assert_eq!(e.eval_to_string("(k 41)").unwrap(), "42");
        let err = e.eval("(k 99)").unwrap_err();
        assert!(err.to_string().contains("one-shot"), "{err}");
    }

    #[test]
    fn call_1cc_cross_eval_reinstate_relinks() {
        let mut e = engine();
        e.eval("(define k #f)").unwrap();
        e.eval("(+ 1 (call/1cc (lambda (c) (set! k c) 1)))").unwrap();
        // The capturing program has returned: the machine no longer
        // references the saved record, so the single shot may relink.
        let relinked = e.metrics().reinstates_relinked;
        assert_eq!(e.eval_to_string("(k 41)").unwrap(), "42");
        assert!(e.metrics().reinstates_relinked > relinked, "one-shot reinstate should relink");
        assert!(e.metrics().slots_copy_avoided > 0);
    }

    #[test]
    fn raw_one_shot_capture_works_in_tail_position() {
        // %call/1cc in tail position exercises the tail-capture rule
        // interaction; the wrapper still delivers exactly one shot.
        assert_eq!(eval("(define (f) (%call/1cc (lambda (k) (k 7)))) (f)"), "7");
    }

    #[test]
    fn call_cc_multi_shot_generator() {
        let src = "
          (define (make-gen lst)
            (define return #f)
            (define resume #f)
            (define (start)
              (for-each (lambda (x)
                          (call/cc (lambda (r) (set! resume r) (return x))))
                        lst)
              (return 'done))
            (lambda ()
              (call/cc (lambda (k)
                (set! return k)
                (if resume (resume #f) (start))))))
          (define g (make-gen '(1 2 3)))
          (list (g) (g) (g) (g))";
        assert_eq!(eval(src), "(1 2 3 done)");
    }

    #[test]
    fn ctak_runs() {
        let src = "
          (define (ctak x y z) (call/cc (lambda (k) (ctak-aux k x y z))))
          (define (ctak-aux k x y z)
            (if (not (< y x))
                (k z)
                (call/cc (lambda (k)
                  (ctak-aux k
                    (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))
                    (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))
                    (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))))
          (ctak 12 8 4)";
        assert_eq!(eval(src), "5");
    }

    #[test]
    fn looper_stays_in_constant_space() {
        let mut e = engine();
        e.eval(
            "(define (looper n) (if (= n 0) 'done (begin (call/cc (lambda (k) k)) (looper (- n 1)))))
             (looper 20000)",
        )
        .unwrap();
        let st = e.stack_stats();
        assert!(
            st.chain_records <= 2,
            "tail-recursive capture grew the chain to {}",
            st.chain_records
        );
    }

    #[test]
    fn dynamic_wind_with_escapes() {
        let src = "
          (define trace '())
          (define (note x) (set! trace (cons x trace)))
          (define k #f)
          (dynamic-wind
            (lambda () (note 'in))
            (lambda () (call/cc (lambda (c) (set! k c))) (note 'body))
            (lambda () (note 'out)))
          (if (memq 'again trace)
              'finished
              (begin (note 'again) (k #f)))";
        let mut e = engine();
        e.eval(src).unwrap();
        // First pass: in body out; after the jump: in body out again.
        assert_eq!(e.eval_to_string("(reverse trace)").unwrap(), "(in body out again in body out)");
    }

    #[test]
    fn timer_and_handler_preempt() {
        let src = "
          (define hits 0)
          (set-timer-handler! (lambda () (set! hits (+ hits 1)) (set-timer 100)))
          (set-timer 100)
          (define (spin n) (if (= n 0) 'done (spin (- n 1))))
          (spin 5000)
          (set-timer 0)
          hits";
        let got: i64 = eval(src).parse().unwrap();
        assert!(got >= 40, "timer fired only {got} times");
    }

    #[test]
    fn output_capture() {
        let mut e = engine();
        e.eval(r#"(display "x = ") (write "s") (newline) (display '(1 2))"#).unwrap();
        assert_eq!(e.take_output(), "x = \"s\"\n(1 2)");
        assert_eq!(e.take_output(), "", "take drains");
    }

    #[test]
    fn prelude_library_procedures() {
        assert_eq!(eval("(map (lambda (x) (* x x)) '(1 2 3))"), "(1 4 9)");
        assert_eq!(eval("(map + '(1 2) '(10 20))"), "(11 22)");
        assert_eq!(eval("(filter odd? '(1 2 3 4 5))"), "(1 3 5)");
        assert_eq!(eval("(fold-left + 0 '(1 2 3 4))"), "10");
        assert_eq!(eval("(fold-right cons '() '(1 2 3))"), "(1 2 3)");
        assert_eq!(eval("(iota 5)"), "(0 1 2 3 4)");
        assert_eq!(eval("(last-pair '(1 2 3))"), "(3)");
        assert_eq!(eval("(force (make-promise (lambda () 42)))"), "42");
    }

    #[test]
    fn quasiquote_evaluates() {
        assert_eq!(eval("(define x 5) `(a ,x ,@(list 1 2) b)"), "(a 5 1 2 b)");
        assert_eq!(eval("`(1 `(2 ,(+ 1 2)))"), "(1 (quasiquote (2 (unquote (+ 1 2)))))");
        assert_eq!(eval("(define v 9) `#(1 ,v)"), "#(1 9)");
    }

    #[test]
    fn errors_are_reported_and_stack_resets() {
        let mut e = engine();
        assert!(e.eval("(car 5)").is_err());
        assert_eq!(e.eval_to_string("(+ 1 2)").unwrap(), "3", "engine recovers after error");
        let err = e.eval("(error \"custom\" 1 2)").unwrap_err();
        assert_eq!(err.to_string(), "runtime error: custom 1 2");
        let err = e.eval("unbound-thing").unwrap_err();
        assert!(err.to_string().contains("unbound-thing"));
        let err = e.eval("(1 2)").unwrap_err();
        assert!(err.to_string().contains("non-procedure"));
    }

    #[test]
    fn step_budget_guards_infinite_loops() {
        let mut e = Engine::builder().max_steps(100_000).build().unwrap();
        let err = e.eval("(define (f) (f)) (f)").unwrap_err();
        assert!(err.to_string().contains("step budget"));
    }

    #[test]
    fn define_and_global_access_from_rust() {
        let mut e = engine();
        e.define("answer", Value::Fixnum(42));
        assert_eq!(e.eval_to_string("(* answer 2)").unwrap(), "84");
        assert_eq!(e.global("answer").unwrap(), Value::Fixnum(42));
        assert!(e.global("missing").is_none());
    }

    #[test]
    fn all_strategies_run_the_same_programs() {
        use segstack_baselines::Strategy;
        for s in Strategy::ALL {
            let mut e = Engine::builder().strategy(s).max_steps(50_000_000).build().unwrap();
            assert_eq!(
                e.eval_to_string(
                    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 15)"
                )
                .unwrap(),
                "610",
                "{s}"
            );
            assert_eq!(
                e.eval_to_string("(call/cc (lambda (k) (+ 1 (k 41))))").unwrap(),
                "41",
                "{s}"
            );
        }
    }

    #[test]
    fn continuations_survive_across_toplevel_evals() {
        let mut e = engine();
        e.eval("(define k #f)").unwrap();
        assert_eq!(e.eval_to_string("(* 2 (call/cc (lambda (c) (set! k c) 1)))").unwrap(), "2");
        assert_eq!(e.eval_to_string("(k 21)").unwrap(), "42");
        assert_eq!(e.eval_to_string("(k 5)").unwrap(), "10");
    }

    #[test]
    fn shadowing_keywords_works_at_runtime() {
        assert_eq!(eval("(let ((if (lambda (a b c) 'shadowed))) (if 1 2 3))"), "shadowed");
    }

    #[test]
    fn frame_sizes_are_observable() {
        let mut e = engine();
        e.eval("(define (f a b c) (+ a b c))").unwrap();
        let sizes = e.frame_sizes();
        assert!(!sizes.is_empty());
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn check_policies_compile_and_agree() {
        for policy in [CheckPolicy::Always, CheckPolicy::Elide] {
            let mut e = Engine::builder().check_policy(policy).build().unwrap();
            assert_eq!(
                e.eval_to_string(
                    "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))) (fib 12)"
                )
                .unwrap(),
                "144",
                "{policy:?}"
            );
        }
    }
}

#[cfg(test)]
mod disassembly_tests {
    use super::*;

    #[test]
    fn listings_show_frame_size_words_around_calls() {
        let mut e = Engine::builder().without_prelude().build().unwrap();
        e.eval("(define (f g) (+ 1 (g 2)))").unwrap();
        let mut found = None;
        for id in 0..e.chunk_count() as u32 {
            let text = e.disassemble(id);
            if text.contains("chunk \"f\"") {
                found = Some(text);
            }
        }
        let listing = found.expect("chunk for f");
        assert!(listing.contains("FrameSize"), "{listing}");
        assert!(listing.contains("Call"), "{listing}");
        // The word before the return point is the displacement (Fig 4):
        // a FrameSize line must appear right after the Call line.
        let lines: Vec<&str> = listing.lines().collect();
        let call_line = lines.iter().position(|l| l.contains("Call {")).unwrap();
        assert!(lines[call_line + 1].contains("FrameSize"), "{listing}");
        assert!(lines[call_line - 1].contains("FrameSize"), "{listing}");
    }

    #[test]
    fn disassemble_last_names_the_toplevel() {
        let mut e = Engine::builder().without_prelude().build().unwrap();
        e.eval("(+ 1 2)").unwrap();
        assert!(e.disassemble_last().contains("toplevel"));
    }
}

#[cfg(test)]
mod vm_edge_tests {
    use super::*;

    fn engine() -> Engine {
        Engine::builder().max_steps(50_000_000).build().unwrap()
    }

    #[track_caller]
    fn check(src: &str, expected: &str) {
        assert_eq!(engine().eval_to_string(src).unwrap(), expected, "{src}");
    }

    #[test]
    fn apply_in_tail_position() {
        check("(define (f) (apply + 1 '(2 3))) (f)", "6");
        check("(define (g . xs) (apply list xs)) (g 1 2)", "(1 2)");
        // apply of apply.
        check("(apply apply (list + '(1 2 3)))", "6");
        // apply of a continuation escapes.
        check("(+ 1 (call/cc (lambda (k) (apply k '(41)))))", "42");
        // apply of a variadic closure.
        check("(apply (lambda (a . rest) (cons a rest)) 1 '(2 3))", "(1 2 3)");
    }

    #[test]
    fn call_cc_of_unusual_receivers() {
        // The classic self-reference: a continuation flows back to its own
        // definition site and gets invoked with a plain value.
        check(
            "(define count 0)
             (define k1 (call/cc (lambda (c) c)))
             (set! count (+ count 1))
             (if (and (procedure? k1) (< count 5)) (k1 42) (list count k1))",
            "(2 42)",
        );
        // call/cc in operator position.
        check("((call/cc (lambda (k) (lambda (x) (* x 2)))) 21)", "42");
    }

    #[test]
    fn timer_fires_during_tail_loops_and_disarms() {
        let mut e = engine();
        let v = e
            .eval(
                "(define fired 0)
                 (set-timer-handler! (lambda () (set! fired (+ fired 1))))
                 (set-timer 50)
                 (define (spin n) (if (= n 0) fired (spin (- n 1))))
                 (spin 500)",
            )
            .unwrap();
        // Fired exactly once: the handler did not rearm.
        assert_eq!(v.to_string(), "1");
        // Timer state does not leak into the next evaluation.
        assert_eq!(e.eval_to_string("(set-timer 0)").unwrap(), "0");
    }

    #[test]
    fn timer_handler_sees_consistent_pending_call() {
        // The handler runs, then the interrupted call re-executes with its
        // staged arguments intact.
        check(
            "(define log '())
             (set-timer-handler! (lambda () (set! log (cons 'tick log))))
             (define (observe a b) (list a b (length log)))
             (set-timer 2)
             (observe (+ 1 1) (+ 2 2))",
            "(2 4 1)",
        );
    }

    #[test]
    fn deep_apply_spread_respects_frame_bound() {
        let mut e = engine();
        let err = e.eval("(apply + (iota 200))").unwrap_err().to_string();
        assert!(err.contains("frame bound"), "{err}");
        // A spread that fits works.
        assert_eq!(e.eval_to_string("(apply + (iota 20))").unwrap(), "190");
    }

    #[test]
    fn continuations_in_data_structures() {
        check(
            "(define ks (map (lambda (i) (call/cc (lambda (k) (cons i k)))) '(1 2)))
             (if (pair? (car ks)) (list (car (car ks)) (car (cadr ks))) 'reentered)",
            "(1 2)",
        );
    }

    #[test]
    fn varargs_arity_edges() {
        let mut e = engine();
        assert!(e.eval("((lambda (a b . r) r) 1)").is_err(), "too few for variadic");
        assert_eq!(e.eval_to_string("((lambda (a b . r) r) 1 2)").unwrap(), "()");
        assert!(e.eval("(car)").is_err());
        assert!(e.eval("(car '(1) '(2))").is_err());
        assert!(e.eval("(newline 1 2)").is_err());
    }

    #[test]
    fn set_timer_returns_remaining_fuel() {
        check(
            "(set-timer 1000)
             (define (burn n) (if (= n 0) 'x (burn (- n 1))))
             (burn 100)
             (define left (set-timer 0))
             (and (< left 1000) (> left 400))",
            "#t",
        );
    }

    #[test]
    fn accumulator_not_clobbered_across_branch_joins() {
        check("(if (begin 1 #f) 'a (begin 'dead 'b))", "b");
        check("(+ (if #t 1 2) (if #f 3 4))", "5");
    }

    #[test]
    fn global_redefinition_is_visible_to_old_callers() {
        check(
            "(define (f) 1)
             (define (caller) (f))
             (define first (caller))
             (define (f) 2)
             (list first (caller))",
            "(1 2)",
        );
    }
}

#[cfg(test)]
mod trace_stats_tests {
    use super::*;

    /// A program that captures and re-enters a continuation, so the traced
    /// machine must record `capture` and `reinstate_*` events.
    const CALLCC_LOOP: &str = "
        (define (count n)
          (if (= n 0)
              'done
              (call/cc (lambda (k) (k (count (- n 1)))))))
        (count 50)";

    #[test]
    fn untraced_machine_reports_an_empty_alist() {
        let mut e = Engine::new().unwrap();
        e.eval(CALLCC_LOOP).unwrap();
        assert_eq!(e.eval_to_string("(trace-stats)").unwrap(), "()");
    }

    #[test]
    fn traced_machine_reports_per_kind_histograms() {
        let sink = Rc::new(RefCell::new(RingSink::new()));
        let mut e = Engine::builder().trace_sink(sink.clone()).build().unwrap();
        e.eval(CALLCC_LOOP).unwrap();
        // Read the alist from inside the language: every entry is
        // (kind count p50 p90 p99 max) and the capture count matches the
        // machine's own counter.
        let captures = e
            .eval_to_string("(cadr (assq 'capture (trace-stats)))")
            .unwrap()
            .parse::<u64>()
            .unwrap();
        assert_eq!(captures, e.metrics().captures, "alist disagrees with Metrics");
        assert!(captures >= 50, "the loop captures at least once per iteration");
        assert_eq!(
            e.eval_to_string("(length (cdr (assq 'reinstate_end (trace-stats))))").unwrap(),
            "5",
            "each entry carries count p50 p90 p99 max"
        );
        // The engine-side handle sees the same ring the VM wrote through.
        assert!(sink.borrow().total_recorded() > 0);
    }

    #[test]
    fn tail_position_trace_stats_also_answers() {
        let sink = Rc::new(RefCell::new(RingSink::new()));
        let mut e = Engine::builder().trace_sink(sink).build().unwrap();
        e.eval(CALLCC_LOOP).unwrap();
        assert_eq!(e.eval_to_string("(define (f) (trace-stats)) (pair? (f))").unwrap(), "#t");
    }
}

#[cfg(test)]
mod disassemble_global_tests {
    use super::*;

    #[test]
    fn finds_named_procedures() {
        let mut e = Engine::builder().without_prelude().build().unwrap();
        e.eval("(define (square x) (* x x))").unwrap();
        let listing = e.disassemble_global("square").unwrap();
        assert!(listing.contains("chunk \"square\""), "{listing}");
        assert!(e.disassemble_global("nope").is_none());
        e.eval("(define notproc 42)").unwrap();
        assert!(e.disassemble_global("notproc").is_none());
    }
}
