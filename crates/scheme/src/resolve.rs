//! Variable resolution, assignment conversion and closure conversion.
//!
//! Three analyses fused into one pass over the core AST:
//!
//! * **Scoping**: every variable reference becomes a frame slot, a closure
//!   free-variable index, or a global slot.
//! * **Assignment conversion**: any parameter targeted by `set!` (anywhere
//!   in its scope) is *boxed* — the frame slot holds a heap cell, and all
//!   reads/writes go through it. This is the paper's "pointers to cells in
//!   the heap containing the actual parameters if the parameters are
//!   assignable" (§3), and it is what makes frame slots single-assignment,
//!   so sealed stack segments can be shared or copied freely.
//! * **Closure conversion**: each lambda gets a flat capture list; a
//!   captured boxed variable captures the *cell*, preserving sharing.

use std::collections::HashSet;
use std::rc::Rc;

use crate::ast::{Ast, AstLambda, LambdaId};
use crate::code::Globals;
use crate::error::SchemeError;
use crate::intern::Symbol;
use crate::value::Value;

/// A resolved expression.
#[derive(Clone, Debug)]
pub enum RExpr {
    /// Literal.
    Quote(Value),
    /// Read an unboxed frame slot.
    LocalRef(u16),
    /// Read through the cell in a frame slot.
    LocalCellRef(u16),
    /// Read an unboxed captured value.
    FreeRef(u16),
    /// Read through a captured cell.
    FreeCellRef(u16),
    /// Read a global.
    GlobalRef(u32),
    /// Write through the cell in a frame slot.
    LocalCellSet(u16, Box<RExpr>),
    /// Write through a captured cell.
    FreeCellSet(u16, Box<RExpr>),
    /// `set!` a global.
    GlobalSet(u32, Box<RExpr>),
    /// `define` a global (top level only).
    GlobalDef(u32, Box<RExpr>),
    /// Conditional.
    If(Box<RExpr>, Box<RExpr>, Box<RExpr>),
    /// Sequence.
    Begin(Vec<RExpr>),
    /// Procedure call.
    Call(Box<RExpr>, Vec<RExpr>),
    /// Lambda (closure template).
    Lambda(Rc<RLambda>),
}

/// How a lambda loads one captured value, evaluated in the *enclosing*
/// frame at closure-creation time. Boxed variables capture their cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Capture {
    /// Raw read of an enclosing frame slot.
    Local(u16),
    /// Raw read of the enclosing closure's capture.
    Free(u16),
}

/// A resolved lambda.
#[derive(Clone, Debug)]
pub struct RLambda {
    /// Required parameter count.
    pub nparams: u16,
    /// Rest-parameter flag (rest list bound to the last parameter).
    pub variadic: bool,
    /// Which parameters are assignment-converted (boxed at entry).
    pub boxed_params: Vec<bool>,
    /// Captured free variables, in capture-list order.
    pub captures: Vec<Capture>,
    /// The body.
    pub body: RExpr,
    /// Name for diagnostics.
    pub name: Option<Symbol>,
    /// Whether the body performs no calls (leaf procedure — eligible for
    /// overflow-check elision at call sites, §5).
    pub leaf: bool,
}

/// Offset of parameter 0 within a frame: slot 0 is the return address,
/// slot 1 the closure.
pub const PARAM_BASE: u16 = 2;

/// Resolves a top-level core expression.
///
/// # Errors
///
/// [`SchemeError::Compile`] on malformed programs (`define` in expression
/// position).
pub fn resolve_toplevel(ast: &Ast, globals: &mut Globals) -> Result<RExpr, SchemeError> {
    let assigned = collect_assigned(ast);
    let mut r = Resolver { assigned, globals, frames: Vec::new() };
    r.resolve(ast, true)
}

/// A binding site: which lambda, which parameter.
type BindId = (LambdaId, usize);

/// Collects every binding targeted by a `set!` anywhere in its scope.
fn collect_assigned(ast: &Ast) -> HashSet<BindId> {
    fn walk(ast: &Ast, scope: &mut Vec<(LambdaId, Vec<Symbol>)>, out: &mut HashSet<BindId>) {
        match ast {
            Ast::Quote(_) | Ast::Var(_) => {}
            Ast::Set(name, value) => {
                // Find the innermost binder of `name`.
                for (id, params) in scope.iter().rev() {
                    if let Some(i) = params.iter().rposition(|p| p == name) {
                        out.insert((*id, i));
                        break;
                    }
                }
                walk(value, scope, out);
            }
            Ast::If(c, t, e) => {
                walk(c, scope, out);
                walk(t, scope, out);
                walk(e, scope, out);
            }
            Ast::Lambda(l) => {
                scope.push((l.id, l.params.clone()));
                walk(&l.body, scope, out);
                scope.pop();
            }
            Ast::Call(op, args) => {
                walk(op, scope, out);
                for a in args {
                    walk(a, scope, out);
                }
            }
            Ast::Begin(es) => {
                for e in es {
                    walk(e, scope, out);
                }
            }
            Ast::Define(_, value) => walk(value, scope, out),
        }
    }
    let mut out = HashSet::new();
    walk(ast, &mut Vec::new(), &mut out);
    out
}

/// One lambda's scope during resolution.
struct FrameScope {
    id: LambdaId,
    params: Vec<Symbol>,
    /// Free variables accumulated so far (append-only; indices are final).
    free: Vec<Symbol>,
}

struct Resolver<'a> {
    assigned: HashSet<BindId>,
    globals: &'a mut Globals,
    frames: Vec<FrameScope>,
}

impl Resolver<'_> {
    /// Is binding (frame `d`, param `i`) boxed?
    fn boxed(&self, d: usize, i: usize) -> bool {
        self.assigned.contains(&(self.frames[d].id, i))
    }

    /// Finds the binding frame of `sym` and threads it as a free variable
    /// through every intervening lambda. Returns `None` for globals,
    /// `Some((kind, boxed))` otherwise, where kind is Local/Free relative
    /// to the innermost frame.
    fn lookup(&mut self, sym: Symbol) -> Option<(Capture, bool)> {
        let n = self.frames.len();
        if n == 0 {
            return None;
        }
        // Innermost binding frame.
        let db = (0..n).rev().find(|&d| self.frames[d].params.contains(&sym))?;
        let pidx = self.frames[db].params.iter().rposition(|p| *p == sym).expect("just found");
        let boxed = self.boxed(db, pidx);
        if db == n - 1 {
            return Some((Capture::Local(PARAM_BASE + pidx as u16), boxed));
        }
        // Thread through frames db+1 ..= n-1.
        for d in db + 1..n {
            if !self.frames[d].free.contains(&sym) {
                self.frames[d].free.push(sym);
            }
        }
        let idx = self.frames[n - 1].free.iter().position(|f| *f == sym).expect("just added");
        Some((Capture::Free(idx as u16), boxed))
    }

    fn resolve(&mut self, ast: &Ast, toplevel: bool) -> Result<RExpr, SchemeError> {
        match ast {
            Ast::Quote(v) => Ok(RExpr::Quote(v.clone())),
            Ast::Var(sym) => Ok(match self.lookup(*sym) {
                Some((Capture::Local(slot), false)) => RExpr::LocalRef(slot),
                Some((Capture::Local(slot), true)) => RExpr::LocalCellRef(slot),
                Some((Capture::Free(idx), false)) => RExpr::FreeRef(idx),
                Some((Capture::Free(idx), true)) => RExpr::FreeCellRef(idx),
                None => RExpr::GlobalRef(self.globals.slot(*sym)),
            }),
            Ast::Set(sym, value) => {
                let value = Box::new(self.resolve(value, false)?);
                Ok(match self.lookup(*sym) {
                    Some((Capture::Local(slot), true)) => RExpr::LocalCellSet(slot, value),
                    Some((Capture::Free(idx), true)) => RExpr::FreeCellSet(idx, value),
                    Some((_, false)) => unreachable!("set! target not marked assigned"),
                    None => RExpr::GlobalSet(self.globals.slot(*sym), value),
                })
            }
            Ast::If(c, t, e) => Ok(RExpr::If(
                Box::new(self.resolve(c, false)?),
                Box::new(self.resolve(t, false)?),
                Box::new(self.resolve(e, false)?),
            )),
            Ast::Begin(es) => {
                let rs =
                    es.iter().map(|e| self.resolve(e, toplevel)).collect::<Result<Vec<_>, _>>()?;
                Ok(RExpr::Begin(rs))
            }
            Ast::Call(op, args) => Ok(RExpr::Call(
                Box::new(self.resolve(op, false)?),
                args.iter().map(|a| self.resolve(a, false)).collect::<Result<Vec<_>, _>>()?,
            )),
            Ast::Define(name, value) => {
                if !toplevel {
                    return Err(SchemeError::compile(format!(
                        "define of {name} in expression position"
                    )));
                }
                let g = self.globals.slot(*name);
                let value = Box::new(self.resolve(value, false)?);
                Ok(RExpr::GlobalDef(g, value))
            }
            Ast::Lambda(l) => self.resolve_lambda(l),
        }
    }

    fn resolve_lambda(&mut self, l: &AstLambda) -> Result<RExpr, SchemeError> {
        let leaf = !l.body.contains_call();
        self.frames.push(FrameScope { id: l.id, params: l.params.clone(), free: Vec::new() });
        let body = self.resolve(&l.body, false)?;
        let frame = self.frames.pop().expect("frame pushed above");
        let boxed_params =
            (0..l.params.len()).map(|i| self.assigned.contains(&(l.id, i))).collect();
        // Resolve captures in the (now innermost) enclosing context; boxed
        // variables capture the cell itself, so raw reads either way.
        let mut captures = Vec::with_capacity(frame.free.len());
        for sym in &frame.free {
            let (cap, _boxed) =
                self.lookup(*sym).expect("free variable must be bound in an enclosing frame");
            captures.push(cap);
        }
        Ok(RExpr::Lambda(Rc::new(RLambda {
            nparams: l.params.len() as u16,
            variadic: l.variadic,
            boxed_params,
            captures,
            body,
            name: l.name,
            leaf,
        })))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::Expander;
    use crate::reader::read_one;

    fn resolve(src: &str) -> (RExpr, Globals) {
        let ast = Expander::new().expand_toplevel(&read_one(src).unwrap()).unwrap();
        let mut globals = Globals::new();
        let r = resolve_toplevel(&ast, &mut globals).unwrap();
        (r, globals)
    }

    fn lambda_of(r: &RExpr) -> Rc<RLambda> {
        match r {
            RExpr::Lambda(l) => l.clone(),
            _ => panic!("expected lambda, got {r:?}"),
        }
    }

    #[test]
    fn globals_are_allocated() {
        let (r, globals) = resolve("x");
        assert!(matches!(r, RExpr::GlobalRef(0)));
        assert_eq!(globals.name(0), Symbol::intern("x"));
    }

    #[test]
    fn params_resolve_to_slots() {
        let (r, _) = resolve("(lambda (a b) b)");
        let l = lambda_of(&r);
        assert!(matches!(l.body, RExpr::LocalRef(3)), "b is the second param: slot 3");
        assert_eq!(l.boxed_params, vec![false, false]);
        assert!(l.leaf);
    }

    #[test]
    fn assigned_params_are_boxed() {
        let (r, _) = resolve("(lambda (a) (set! a 1) a)");
        let l = lambda_of(&r);
        assert_eq!(l.boxed_params, vec![true]);
        let RExpr::Begin(es) = &l.body else { panic!() };
        assert!(matches!(es[0], RExpr::LocalCellSet(2, _)));
        assert!(matches!(es[1], RExpr::LocalCellRef(2)));
    }

    #[test]
    fn free_variables_are_captured() {
        let (r, _) = resolve("(lambda (a) (lambda (b) a))");
        let outer = lambda_of(&r);
        let inner = lambda_of(&outer.body);
        assert_eq!(inner.captures, vec![Capture::Local(2)]);
        assert!(matches!(inner.body, RExpr::FreeRef(0)));
    }

    #[test]
    fn free_variables_thread_through_intermediate_lambdas() {
        let (r, _) = resolve("(lambda (a) (lambda (b) (lambda (c) a)))");
        let l1 = lambda_of(&r);
        let l2 = lambda_of(&l1.body);
        let l3 = lambda_of(&l2.body);
        assert_eq!(
            l2.captures,
            vec![Capture::Local(2)],
            "middle captures a from its enclosing frame"
        );
        assert_eq!(
            l3.captures,
            vec![Capture::Free(0)],
            "inner captures a from the middle's closure"
        );
        assert!(matches!(l3.body, RExpr::FreeRef(0)));
    }

    #[test]
    fn assigned_free_variables_use_cells_at_both_levels() {
        let (r, _) = resolve("(lambda (a) (lambda () (set! a 1)) a)");
        let outer = lambda_of(&r);
        assert_eq!(outer.boxed_params, vec![true]);
        let RExpr::Begin(es) = &outer.body else { panic!() };
        let inner = lambda_of(&es[0]);
        assert_eq!(inner.captures, vec![Capture::Local(2)], "captures the cell slot raw");
        assert!(matches!(inner.body, RExpr::FreeCellSet(0, _)));
        assert!(matches!(es[1], RExpr::LocalCellRef(2)), "outer read goes through the cell");
    }

    #[test]
    fn set_on_global() {
        let (r, _) = resolve("(lambda () (set! g 1))");
        let l = lambda_of(&r);
        assert!(matches!(l.body, RExpr::GlobalSet(0, _)));
    }

    #[test]
    fn leaf_detection() {
        let (r, _) = resolve("(lambda (a) (+ a 1))");
        assert!(!lambda_of(&r).leaf, "a call to + is still a call");
        let (r, _) = resolve("(lambda (a) (if a 1 2))");
        assert!(lambda_of(&r).leaf);
    }

    #[test]
    fn let_bound_variables_are_params_after_expansion() {
        let (r, _) = resolve("(let ((x 1)) (let ((y 2)) (set! x y) x))");
        let RExpr::Call(op, _) = r else { panic!() };
        let outer = lambda_of(&op);
        assert_eq!(outer.boxed_params, vec![true], "x is assigned in the inner let");
    }

    #[test]
    fn same_name_shadowing_resolves_innermost() {
        let (r, _) = resolve("(lambda (x) (lambda (x) x))");
        let outer = lambda_of(&r);
        let inner = lambda_of(&outer.body);
        assert!(inner.captures.is_empty(), "inner x shadows; no capture needed");
        assert!(matches!(inner.body, RExpr::LocalRef(2)));
    }

    #[test]
    fn toplevel_define_resolves() {
        let (r, globals) = resolve("(define x 42)");
        assert!(matches!(r, RExpr::GlobalDef(0, _)));
        assert_eq!(globals.name(0), Symbol::intern("x"));
    }
}
