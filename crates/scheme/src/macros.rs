//! `syntax-rules` pattern-matching macros.
//!
//! Supports the R4RS appendix surface: `(define-syntax name (syntax-rules
//! (literal …) (pattern template) …))` with `...` ellipsis (including
//! nesting) and `_` wildcards. Expansion is *non-hygienic*: templates are
//! spliced as plain data, so a macro can capture user identifiers —
//! acceptable for this reproduction and documented. Lexically shadowed
//! macro names are not treated as macros (the expander's usual scope rule).

use std::collections::HashMap;

use crate::error::SchemeError;
use crate::intern::Symbol;
use crate::value::Value;

/// A compiled `syntax-rules` transformer.
#[derive(Clone, Debug)]
pub struct MacroDef {
    literals: Vec<Symbol>,
    rules: Vec<(Value, Value)>,
}

/// What a pattern variable captured: one datum, or a sequence of captures
/// under an ellipsis (possibly nested).
#[derive(Clone, Debug)]
enum Binding {
    One(Value),
    Seq(Vec<Binding>),
}

type Bindings = HashMap<Symbol, Binding>;

impl MacroDef {
    /// Parses `(syntax-rules (literal …) (pattern template) …)`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Compile`] on malformed transformers.
    pub fn parse(spec: &Value) -> Result<MacroDef, SchemeError> {
        let items = spec
            .list_to_vec()
            .map_err(|_| SchemeError::compile("define-syntax: bad transformer"))?;
        let [head, lits, rules @ ..] = items.as_slice() else {
            return Err(SchemeError::compile("syntax-rules: missing literals list"));
        };
        if !matches!(head, Value::Sym(s) if s.as_str() == "syntax-rules") {
            return Err(SchemeError::compile(format!(
                "define-syntax: only syntax-rules transformers are supported, got {head}"
            )));
        }
        let literals = lits
            .list_to_vec()
            .map_err(|_| SchemeError::compile("syntax-rules: bad literals list"))?
            .into_iter()
            .map(|l| match l {
                Value::Sym(s) => Ok(s),
                other => Err(SchemeError::compile(format!(
                    "syntax-rules: literal must be an identifier, got {other}"
                ))),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut parsed = Vec::new();
        for rule in rules {
            let pair = rule
                .list_to_vec()
                .map_err(|_| SchemeError::compile(format!("syntax-rules: bad rule {rule}")))?;
            let [pattern, template] = <[Value; 2]>::try_from(pair).map_err(|_| {
                SchemeError::compile("syntax-rules: each rule is (pattern template)")
            })?;
            parsed.push((pattern, template));
        }
        if parsed.is_empty() {
            return Err(SchemeError::compile("syntax-rules: no rules"));
        }
        Ok(MacroDef { literals, rules: parsed })
    }

    /// Expands one use of the macro. `form` is the whole `(name …)` datum.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Compile`] if no rule matches or a template misuses
    /// ellipsis.
    pub fn expand(&self, form: &Value) -> Result<Value, SchemeError> {
        for (pattern, template) in &self.rules {
            let mut b = Bindings::new();
            // The pattern's head position matches the macro keyword itself.
            if self.match_pattern_tail(pattern, form, &mut b) {
                return self.instantiate(template, &b);
            }
        }
        Err(SchemeError::compile(format!("no syntax-rules pattern matches {form}")))
    }

    /// Matches `pattern` against `form`, ignoring both head positions
    /// (the keyword slot).
    fn match_pattern_tail(&self, pattern: &Value, form: &Value, b: &mut Bindings) -> bool {
        match (pattern, form) {
            (Value::Pair(pp), Value::Pair(fp)) => {
                let ptail = pp.cdr.borrow().clone();
                let ftail = fp.cdr.borrow().clone();
                self.matches(&ptail, &ftail, b)
            }
            _ => false,
        }
    }

    fn is_ellipsis(v: &Value) -> bool {
        matches!(v, Value::Sym(s) if s.as_str() == "...")
    }

    fn matches(&self, pattern: &Value, form: &Value, b: &mut Bindings) -> bool {
        match pattern {
            Value::Sym(s) if s.as_str() == "_" => true,
            Value::Sym(s) if self.literals.contains(s) => {
                matches!(form, Value::Sym(f) if f == s)
            }
            Value::Sym(s) => {
                b.insert(*s, Binding::One(form.clone()));
                true
            }
            Value::Pair(pp) => {
                // Ellipsis sub-pattern: (p ... tail…)
                let pcar = pp.car.borrow().clone();
                let pcdr = pp.cdr.borrow().clone();
                if let Value::Pair(next) = &pcdr {
                    if Self::is_ellipsis(&next.car.borrow()) {
                        let after = next.cdr.borrow().clone();
                        return self.match_ellipsis(&pcar, &after, form, b);
                    }
                }
                let Value::Pair(fp) = form else { return false };
                let fcar = fp.car.borrow().clone();
                let fcdr = fp.cdr.borrow().clone();
                self.matches(&pcar, &fcar, b) && self.matches(&pcdr, &fcdr, b)
            }
            Value::Nil => matches!(form, Value::Nil),
            other => other.equal_value(form),
        }
    }

    /// Matches `sub ... after` against `form`: `sub` repeats greedily but
    /// must leave exactly as many trailing items as `after` requires.
    fn match_ellipsis(&self, sub: &Value, after: &Value, form: &Value, b: &mut Bindings) -> bool {
        let Ok(items) = form.list_to_vec() else { return false };
        let after_len = match after.list_len() {
            Some(n) => n,
            None => return false,
        };
        if items.len() < after_len {
            return false;
        }
        let split = items.len() - after_len;
        // Collect per-iteration bindings for every variable in `sub`.
        let vars = self.pattern_vars(sub);
        let mut seqs: HashMap<Symbol, Vec<Binding>> =
            vars.iter().map(|v| (*v, Vec::new())).collect();
        for item in &items[..split] {
            let mut inner = Bindings::new();
            if !self.matches(sub, item, &mut inner) {
                return false;
            }
            for v in &vars {
                let captured = inner.remove(v).unwrap_or(Binding::Seq(Vec::new()));
                seqs.get_mut(v).expect("pre-seeded").push(captured);
            }
        }
        for (v, seq) in seqs {
            b.insert(v, Binding::Seq(seq));
        }
        self.matches(after, &Value::list(items[split..].iter().cloned()), b)
    }

    /// Pattern variables of `p` (excluding literals, `_` and `...`).
    fn pattern_vars(&self, p: &Value) -> Vec<Symbol> {
        let mut out = Vec::new();
        self.collect_vars(p, &mut out);
        out
    }

    fn collect_vars(&self, p: &Value, out: &mut Vec<Symbol>) {
        match p {
            Value::Sym(s)
                if s.as_str() != "_"
                    && s.as_str() != "..."
                    && !self.literals.contains(s)
                    && !out.contains(s) =>
            {
                out.push(*s);
            }
            Value::Pair(pp) => {
                self.collect_vars(&pp.car.borrow(), out);
                self.collect_vars(&pp.cdr.borrow(), out);
            }
            _ => {}
        }
    }

    /// Instantiates `template` under the bindings.
    fn instantiate(&self, template: &Value, b: &Bindings) -> Result<Value, SchemeError> {
        match template {
            Value::Sym(s) => Ok(match b.get(s) {
                Some(Binding::One(v)) => v.clone(),
                Some(Binding::Seq(_)) => {
                    return Err(SchemeError::compile(format!(
                        "syntax-rules: {s} is an ellipsis variable used without ..."
                    )))
                }
                None => template.clone(),
            }),
            Value::Pair(tp) => {
                let tcar = tp.car.borrow().clone();
                let tcdr = tp.cdr.borrow().clone();
                // (sub ... rest): splice the expanded repetitions.
                if let Value::Pair(next) = &tcdr {
                    if Self::is_ellipsis(&next.car.borrow()) {
                        let after = next.cdr.borrow().clone();
                        let mut items = self.expand_repetitions(&tcar, b)?;
                        let rest = self.instantiate(&after, b)?;
                        let mut out = rest;
                        while let Some(v) = items.pop() {
                            out = Value::cons(v, out);
                        }
                        return Ok(out);
                    }
                }
                Ok(Value::cons(self.instantiate(&tcar, b)?, self.instantiate(&tcdr, b)?))
            }
            other => Ok(other.clone()),
        }
    }

    /// Expands `sub ...`: iterates the sequence bindings of the ellipsis
    /// variables occurring in `sub`.
    fn expand_repetitions(&self, sub: &Value, b: &Bindings) -> Result<Vec<Value>, SchemeError> {
        let vars: Vec<Symbol> = self
            .pattern_vars(sub)
            .into_iter()
            .filter(|v| matches!(b.get(v), Some(Binding::Seq(_))))
            .collect();
        if vars.is_empty() {
            return Err(SchemeError::compile(format!(
                "syntax-rules: template {sub} ... has no ellipsis variable"
            )));
        }
        let len = match b.get(&vars[0]) {
            Some(Binding::Seq(seq)) => seq.len(),
            _ => unreachable!("filtered above"),
        };
        for v in &vars[1..] {
            if let Some(Binding::Seq(seq)) = b.get(v) {
                if seq.len() != len {
                    return Err(SchemeError::compile(format!(
                        "syntax-rules: ellipsis variables {} and {} repeat different counts",
                        vars[0], v
                    )));
                }
            }
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let mut inner = b.clone();
            for v in &vars {
                if let Some(Binding::Seq(seq)) = b.get(v) {
                    inner.insert(*v, seq[i].clone());
                }
            }
            out.push(self.instantiate(sub, &inner)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::read_one;

    fn def(src: &str) -> MacroDef {
        MacroDef::parse(&read_one(src).unwrap()).unwrap()
    }

    fn expand(m: &MacroDef, form: &str) -> String {
        m.expand(&read_one(form).unwrap()).unwrap().to_string()
    }

    #[test]
    fn fixed_arity_rule() {
        let m = def("(syntax-rules () ((_ a b) (b a)))");
        assert_eq!(expand(&m, "(swapped 1 2)"), "(2 1)");
        assert_eq!(expand(&m, "(swapped (f x) y)"), "(y (f x))");
    }

    #[test]
    fn multiple_rules_choose_first_match() {
        let m = def("(syntax-rules () ((_ ) 'none) ((_ a) a) ((_ a b) (cons a b)))");
        assert_eq!(expand(&m, "(m)"), "(quote none)");
        assert_eq!(expand(&m, "(m 7)"), "7");
        assert_eq!(expand(&m, "(m 7 8)"), "(cons 7 8)");
    }

    #[test]
    fn ellipsis_splices() {
        let m = def("(syntax-rules () ((_ x ...) (list x ...)))");
        assert_eq!(expand(&m, "(m)"), "(list)");
        assert_eq!(expand(&m, "(m 1 2 3)"), "(list 1 2 3)");
        let m = def("(syntax-rules () ((_ first rest ...) (cons first (list rest ...))))");
        assert_eq!(expand(&m, "(m a b c)"), "(cons a (list b c))");
    }

    #[test]
    fn ellipsis_with_structured_subpatterns() {
        let m = def("(syntax-rules () ((_ (name val) ...) (list (cons 'name val) ...)))");
        assert_eq!(expand(&m, "(m (x 1) (y 2))"), "(list (cons (quote x) 1) (cons (quote y) 2))");
    }

    #[test]
    fn nested_ellipsis() {
        let m = def("(syntax-rules () ((_ (a ...) ...) (list (list a ...) ...)))");
        assert_eq!(expand(&m, "(m (1 2) () (3))"), "(list (list 1 2) (list) (list 3))");
    }

    #[test]
    fn literals_must_match_exactly() {
        let m = def("(syntax-rules (=>) ((_ a => b) (b a)) ((_ a b) (list a b)))");
        assert_eq!(expand(&m, "(m 1 => f)"), "(f 1)");
        assert_eq!(expand(&m, "(m 1 2)"), "(list 1 2)");
    }

    #[test]
    fn ellipsis_followed_by_tail_pattern() {
        let m = def("(syntax-rules () ((_ x ... last) (cons last (list x ...))))");
        assert_eq!(expand(&m, "(m 1 2 3)"), "(cons 3 (list 1 2))");
        assert_eq!(expand(&m, "(m 9)"), "(cons 9 (list))");
    }

    #[test]
    fn wildcards_do_not_bind() {
        let m = def("(syntax-rules () ((_ _ b) b))");
        assert_eq!(expand(&m, "(m anything 42)"), "42");
    }

    #[test]
    fn no_matching_rule_is_an_error() {
        let m = def("(syntax-rules () ((_ a) a))");
        assert!(m.expand(&read_one("(m 1 2 3)").unwrap()).is_err());
    }

    #[test]
    fn mismatched_repetition_counts_error() {
        let m = def("(syntax-rules () ((_ (a ...) (b ...)) (list (cons a b) ...)))");
        assert!(m.expand(&read_one("(m (1 2) (3))").unwrap()).is_err());
    }

    #[test]
    fn parse_rejects_malformed_transformers() {
        assert!(MacroDef::parse(&read_one("(not-syntax-rules () ((_ a) a))").unwrap()).is_err());
        assert!(MacroDef::parse(&read_one("(syntax-rules ())").unwrap()).is_err());
        assert!(MacroDef::parse(&read_one("(syntax-rules (1) ((_ a) a))").unwrap()).is_err());
        assert!(MacroDef::parse(&read_one("(syntax-rules () (just-pattern))").unwrap()).is_err());
    }
}
