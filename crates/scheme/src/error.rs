//! Error types for the Scheme system.

use std::error::Error;
use std::fmt;

use segstack_core::StackError;

/// A position in Scheme source text (1-based line and column).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourcePos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for SourcePos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Any error produced while lexing, reading, compiling or running Scheme
/// code.
#[derive(Clone, Debug, PartialEq)]
pub enum SchemeError {
    /// Lexical error in the source text.
    Lex {
        /// Where the offending text begins.
        pos: SourcePos,
        /// What went wrong.
        message: String,
    },
    /// Malformed s-expression structure.
    Parse {
        /// Where the offending token sits, when known.
        pos: Option<SourcePos>,
        /// What went wrong.
        message: String,
    },
    /// Malformed program (bad special form, unbound name at compile time,
    /// frame too large, etc.).
    Compile {
        /// What went wrong.
        message: String,
    },
    /// Runtime error (type errors, arity errors, `(error ...)` calls,
    /// unbound globals).
    Runtime {
        /// What went wrong.
        message: String,
    },
    /// The control stack failed (budget exhaustion, foreign continuation).
    Stack(StackError),
}

impl SchemeError {
    /// Convenience constructor for runtime errors.
    pub fn runtime(message: impl Into<String>) -> Self {
        SchemeError::Runtime { message: message.into() }
    }

    /// Convenience constructor for compile-time errors.
    pub fn compile(message: impl Into<String>) -> Self {
        SchemeError::Compile { message: message.into() }
    }
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            SchemeError::Parse { pos: Some(pos), message } => {
                write!(f, "parse error at {pos}: {message}")
            }
            SchemeError::Parse { pos: None, message } => write!(f, "parse error: {message}"),
            SchemeError::Compile { message } => write!(f, "compile error: {message}"),
            SchemeError::Runtime { message } => write!(f, "runtime error: {message}"),
            SchemeError::Stack(e) => write!(f, "stack error: {e}"),
        }
    }
}

impl Error for SchemeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchemeError::Stack(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StackError> for SchemeError {
    fn from(e: StackError) -> Self {
        SchemeError::Stack(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = SchemeError::Lex { pos: SourcePos { line: 2, col: 5 }, message: "bad".into() };
        assert_eq!(e.to_string(), "lex error at 2:5: bad");
        assert_eq!(SchemeError::runtime("oops").to_string(), "runtime error: oops");
        assert_eq!(SchemeError::compile("nope").to_string(), "compile error: nope");
        let e = SchemeError::Parse { pos: None, message: "eof".into() };
        assert_eq!(e.to_string(), "parse error: eof");
    }

    #[test]
    fn stack_errors_convert_and_chain() {
        let e: SchemeError = StackError::FrameTooLarge { requested: 5, bound: 4 }.into();
        assert!(e.to_string().contains("frame"));
        assert!(e.source().is_some());
    }

    #[test]
    fn is_send_error_type() {
        fn assert_traits<E: Error + Send + Sync + 'static>() {}
        assert_traits::<SchemeError>();
    }
}
