//! The Scheme prelude: library procedures written in Scheme.
//!
//! Loaded into every engine at startup (unless disabled), the prelude is
//! compiled and run by the same pipeline as user code, so the standard
//! library itself exercises the control stack. It includes the classic
//! winders implementation of `dynamic-wind`, with `call/cc` rewrapped so
//! continuation jumps unwind and rewind correctly — a torture test for
//! multi-shot continuations in its own right.

/// Scheme source of the prelude.
pub const PRELUDE: &str = r#"
;; ---- list utilities -------------------------------------------------------

(define (map1 f l)
  (if (null? l) '() (cons (f (car l)) (map1 f (cdr l)))))

(define (map f . ls)
  (if (null? (car ls))
      '()
      (cons (apply f (map1 car ls))
            (apply map f (map1 cdr ls)))))

(define (for-each f . ls)
  (if (null? (car ls))
      (void)
      (begin
        (apply f (map1 car ls))
        (apply for-each f (map1 cdr ls)))))

(define (filter pred l)
  (cond ((null? l) '())
        ((pred (car l)) (cons (car l) (filter pred (cdr l))))
        (else (filter pred (cdr l)))))

(define (fold-left f acc l)
  (if (null? l) acc (fold-left f (f acc (car l)) (cdr l))))

(define (fold-right f init l)
  (if (null? l) init (f (car l) (fold-right f init (cdr l)))))

(define (iota n)
  (let loop ((i (- n 1)) (acc '()))
    (if (< i 0) acc (loop (- i 1) (cons i acc)))))

(define (last-pair l)
  (if (pair? (cdr l)) (last-pair (cdr l)) l))

(define (list-copy l) (append l '()))

;; ---- dynamic-wind and rerooting call/cc ------------------------------------

(define %winders '())

(define (%common-tail x y)
  (let ((lx (length x)) (ly (length y)))
    (let loop ((x (if (> lx ly) (list-tail x (- lx ly)) x))
               (y (if (> ly lx) (list-tail y (- ly lx)) y)))
      (if (eq? x y) x (loop (cdr x) (cdr y))))))

(define (%unwind-to common)
  (if (eq? %winders common)
      (void)
      (let ((w (car %winders)))
        (set! %winders (cdr %winders))
        ((cdr w))
        (%unwind-to common))))

(define (%rewind-above target common)
  (if (eq? target common)
      (void)
      (begin
        (%rewind-above (cdr target) common)
        ((car (car target)))
        (set! %winders target))))

(define (%reroot! target)
  (let ((common (%common-tail %winders target)))
    (%unwind-to common)
    (%rewind-above target common)))

(define (dynamic-wind before thunk after)
  (before)
  (set! %winders (cons (cons before after) %winders))
  (let ((result (thunk)))
    (set! %winders (cdr %winders))
    (after)
    result))

(define call-with-current-continuation
  (let ((primitive %call/cc))
    (lambda (f)
      (primitive
        (lambda (k)
          (f (let ((saved %winders))
               (lambda (v)
                 (if (eq? %winders saved) (void) (%reroot! saved))
                 (k v)))))))))

(define call/cc call-with-current-continuation)

;; One-shot capture: like call/cc but the continuation may be invoked (or
;; returned into) at most once, which lets the segmented stack reinstate it
;; by relinking the saved segment chain instead of copying it.
(define call/1cc
  (let ((primitive %call/1cc))
    (lambda (f)
      (primitive
        (lambda (k)
          (f (let ((saved %winders))
               (lambda (v)
                 (if (eq? %winders saved) (void) (%reroot! saved))
                 (k v)))))))))

;; ---- string ports -----------------------------------------------------------

(define (call-with-output-string proc)
  (let ((port (open-output-string)))
    (proc port)
    (get-output-string port)))

;; ---- multiple values --------------------------------------------------------

(define (call-with-values producer consumer)
  (let ((v (producer)))
    (if (%values? v)
        (apply consumer (%values->list v))
        (consumer v))))

;; ---- sorting ----------------------------------------------------------------

(define (sort lst less?)
  (define (merge a b)
    (cond ((null? a) b)
          ((null? b) a)
          ((less? (car b) (car a)) (cons (car b) (merge a (cdr b))))
          (else (cons (car a) (merge (cdr a) b)))))
  (define (split l)
    (if (or (null? l) (null? (cdr l)))
        (cons l '())
        (let ((rest (split (cddr l))))
          (cons (cons (car l) (car rest)) (cons (cadr l) (cdr rest))))))
  (if (or (null? lst) (null? (cdr lst)))
      lst
      (let ((halves (split lst)))
        (merge (sort (car halves) less?) (sort (cdr halves) less?)))))

;; ---- promises ---------------------------------------------------------------

(define (make-promise thunk)
  (let ((forced #f) (value #f))
    (lambda ()
      (if forced
          value
          (begin
            (set! value (thunk))
            (set! forced #t)
            value)))))

(define (force p) (p))
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_is_readable() {
        let data = crate::reader::read_all(PRELUDE).unwrap();
        assert!(data.len() > 10);
    }
}
