//! # segstack-scheme
//!
//! A complete Scheme system — lexer, reader, expander, compiler, bytecode
//! VM — whose activation records live in a pluggable control stack. It is
//! the workload substrate for reproducing *Representing Control in the
//! Presence of First-Class Continuations* (Hieb, Dybvig & Bruggeman, PLDI
//! 1990): the same programs run unchanged over the paper's segmented stack
//! and over the four baseline strategies it is compared against.
//!
//! The implementation follows the paper's calling convention: the return
//! address sits at the frame base (so tail calls need not move it, §3),
//! partial frames are staged at compile-time-known displacements, the frame
//! pointer is adjusted by constants at call and return, frame-size words
//! precede every return point in the code stream (Figure 4), and assigned
//! variables are boxed in heap cells so frame slots are single-assignment
//! (§3) — the invariant that lets sealed stack segments be copied or shared
//! safely.
//!
//! ## Quick start
//!
//! ```
//! use segstack_scheme::Engine;
//!
//! let mut engine = Engine::new()?;
//! let v = engine.eval(
//!     "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
//!      (fib 15)",
//! )?;
//! assert_eq!(v.to_string(), "610");
//!
//! // First-class continuations, the paper's subject:
//! let v = engine.eval("(call/cc (lambda (k) (+ 1 (k 41))))")?;
//! assert_eq!(v.to_string(), "41");
//! # Ok::<(), segstack_scheme::SchemeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod code;
mod codegen;
mod error;
pub mod expand;
mod intern;
mod interproc;
pub mod lexer;
mod machine;
pub mod macros;
pub mod prelude;
pub mod primitives;
mod reader;
pub mod resolve;
mod value;
mod vm;

pub use code::{Check, Chunk, CodeStore, Globals, IcSlot, IcTarget, Instr, VerifyError};
pub use codegen::{compile_toplevel, CheckPolicy, CompileOptions};
pub use error::{SchemeError, SourcePos};
pub use intern::Symbol;
pub use interproc::{analyze, InterprocDecisions};
pub use machine::{Engine, EngineBuilder};
pub use reader::{read_all, read_one};
pub use value::{Closure, Displayed, Pair, Primitive, Value};
pub use vm::{run, TimerState, VmOptions};
