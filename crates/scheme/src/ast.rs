//! Core-form abstract syntax, the output of the expander.
//!
//! After expansion only eight core forms remain: constants, variable
//! references, assignments, conditionals, lambdas, calls, sequences, and
//! top-level definitions. All derived forms (`let`, `cond`, `do`,
//! quasiquote, internal defines, …) have been rewritten into these.

use std::rc::Rc;

use crate::intern::Symbol;
use crate::value::Value;

/// Identity of a lambda node, used to key assignment analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LambdaId(pub u32);

/// A core-form expression.
#[derive(Clone, Debug)]
pub enum Ast {
    /// A literal datum.
    Quote(Value),
    /// A variable reference (lexical or global — resolved later).
    Var(Symbol),
    /// `(set! name value)`.
    Set(Symbol, Box<Ast>),
    /// `(if test then else)`; a missing else arm is `Quote(Unspecified)`.
    If(Box<Ast>, Box<Ast>, Box<Ast>),
    /// A lambda expression.
    Lambda(Rc<AstLambda>),
    /// A procedure call.
    Call(Box<Ast>, Vec<Ast>),
    /// A sequence; the value is the last expression's.
    Begin(Vec<Ast>),
    /// A top-level definition (only valid at top level).
    Define(Symbol, Box<Ast>),
}

impl Ast {
    /// Convenience constructor for unspecified-value constants.
    pub fn unspecified() -> Ast {
        Ast::Quote(Value::Unspecified)
    }

    /// Does this expression (or any subexpression outside nested lambdas)
    /// contain a call? Used for the leaf-procedure overflow-check elision
    /// of paper §5.
    pub fn contains_call(&self) -> bool {
        match self {
            Ast::Quote(_) | Ast::Var(_) | Ast::Lambda(_) => false,
            Ast::Set(_, e) => e.contains_call(),
            Ast::If(c, t, e) => c.contains_call() || t.contains_call() || e.contains_call(),
            Ast::Call(_, _) => true,
            Ast::Begin(es) => es.iter().any(Ast::contains_call),
            Ast::Define(_, e) => e.contains_call(),
        }
    }
}

/// A lambda node.
#[derive(Clone, Debug)]
pub struct AstLambda {
    /// Unique id (assignment analysis key).
    pub id: LambdaId,
    /// Required parameters, in order.
    pub params: Vec<Symbol>,
    /// Whether a rest parameter follows (`(lambda (a . rest) …)` or
    /// `(lambda args …)`); the rest parameter is the last of `params`.
    pub variadic: bool,
    /// The body (a single core expression after body expansion).
    pub body: Ast,
    /// Name hint from an enclosing `define`/`let`, for diagnostics.
    pub name: Option<Symbol>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_call_sees_through_structure_but_not_lambdas() {
        let call = Ast::Call(Box::new(Ast::Var(Symbol::intern("f"))), vec![]);
        assert!(call.contains_call());
        let in_if = Ast::If(
            Box::new(Ast::Quote(Value::Bool(true))),
            Box::new(call.clone()),
            Box::new(Ast::unspecified()),
        );
        assert!(in_if.contains_call());
        let lambda = Ast::Lambda(Rc::new(AstLambda {
            id: LambdaId(0),
            params: vec![],
            variadic: false,
            body: call,
            name: None,
        }));
        assert!(!lambda.contains_call(), "calls inside nested lambdas do not count");
        assert!(!Ast::Var(Symbol::intern("x")).contains_call());
    }
}
