//! Lexical analysis of Scheme source text (R3RS-style).

use std::fmt;

use crate::error::{SchemeError, SourcePos};

/// A lexical token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token proper.
    pub kind: TokenKind,
    /// Position of the token's first character.
    pub pos: SourcePos,
}

/// The kinds of Scheme tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `#(` — vector literal opener.
    VecOpen,
    /// `'`
    Quote,
    /// `` ` ``
    Quasiquote,
    /// `,`
    Unquote,
    /// `,@`
    UnquoteSplicing,
    /// `.` in dotted pairs.
    Dot,
    /// `#t` / `#f`
    Bool(bool),
    /// Exact integer literal.
    Fixnum(i64),
    /// Inexact real literal.
    Flonum(f64),
    /// Character literal (`#\a`, `#\space`, `#\newline`).
    Char(char),
    /// String literal (escapes resolved).
    Str(String),
    /// Identifier / symbol.
    Ident(String),
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::VecOpen => write!(f, "#("),
            TokenKind::Quote => write!(f, "'"),
            TokenKind::Quasiquote => write!(f, "`"),
            TokenKind::Unquote => write!(f, ","),
            TokenKind::UnquoteSplicing => write!(f, ",@"),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Bool(true) => write!(f, "#t"),
            TokenKind::Bool(false) => write!(f, "#f"),
            TokenKind::Fixnum(n) => write!(f, "{n}"),
            TokenKind::Flonum(x) => write!(f, "{x}"),
            TokenKind::Char(c) => write!(f, "#\\{c}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenizes Scheme source text.
///
/// # Errors
///
/// Returns [`SchemeError::Lex`] on malformed input (unterminated strings,
/// bad character literals, stray `#` syntax).
///
/// # Examples
///
/// ```
/// use segstack_scheme::lexer::{tokenize, TokenKind};
/// let toks = tokenize("(+ 1 2)")?;
/// assert_eq!(toks.len(), 5);
/// assert_eq!(toks[1].kind, TokenKind::Ident("+".into()));
/// # Ok::<(), segstack_scheme::SchemeError>(())
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, SchemeError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { chars: src.chars().collect(), i: 0, line: 1, col: 1, src }
    }

    fn pos(&self) -> SourcePos {
        SourcePos { line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> SchemeError {
        SchemeError::Lex { pos: self.pos(), message: msg.into() }
    }

    fn run(mut self) -> Result<Vec<Token>, SchemeError> {
        let mut out = Vec::new();
        loop {
            self.skip_atmosphere();
            let pos = self.pos();
            if self.peek().is_none() {
                break;
            }
            let kind = self.next_token()?;
            out.push(Token { kind, pos });
        }
        let _ = self.src;
        Ok(out)
    }

    /// Lexes one token; the caller has skipped atmosphere and checked for
    /// end of input.
    fn next_token(&mut self) -> Result<TokenKind, SchemeError> {
        let c = self.peek().expect("caller checked for input");
        match c {
            '(' | '[' => {
                self.bump();
                Ok(TokenKind::LParen)
            }
            ')' | ']' => {
                self.bump();
                Ok(TokenKind::RParen)
            }
            '\'' => {
                self.bump();
                Ok(TokenKind::Quote)
            }
            '`' => {
                self.bump();
                Ok(TokenKind::Quasiquote)
            }
            ',' => {
                self.bump();
                if self.peek() == Some('@') {
                    self.bump();
                    Ok(TokenKind::UnquoteSplicing)
                } else {
                    Ok(TokenKind::Unquote)
                }
            }
            '"' => self.string(),
            '#' => self.hash(),
            _ => self.atom(),
        }
    }

    /// Consumes a (nestable) `#| … |#` block comment; the caller has
    /// consumed the `#` and peeked the `|`.
    fn block_comment(&mut self) -> Result<(), SchemeError> {
        self.bump(); // '|'
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                None => return Err(self.err("unterminated block comment")),
                Some('|') if self.peek() == Some('#') => {
                    self.bump();
                    depth -= 1;
                }
                Some('#') if self.peek() == Some('|') => {
                    self.bump();
                    depth += 1;
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Skips whitespace, `;` line comments and `#| … |#` block comments.
    /// Malformed (unterminated) block comments are left for the token path
    /// to report.
    fn skip_atmosphere(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some(';') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('#') if self.chars.get(self.i + 1) == Some(&'|') => {
                    let saved = (self.i, self.line, self.col);
                    self.bump(); // '#'
                    if self.block_comment().is_err() {
                        // Unterminated: rewind so the token path reports it
                        // at the comment's opening position.
                        (self.i, self.line, self.col) = saved;
                        return;
                    }
                }
                _ => return,
            }
        }
    }

    fn string(&mut self) -> Result<TokenKind, SchemeError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('"') => return Ok(TokenKind::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('r') => s.push('\r'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    Some(c) => return Err(self.err(format!("unknown string escape \\{c}"))),
                    None => return Err(self.err("unterminated string escape")),
                },
                Some(c) => s.push(c),
            }
        }
    }

    fn hash(&mut self) -> Result<TokenKind, SchemeError> {
        self.bump(); // '#'
        match self.peek() {
            Some('t') => {
                self.bump();
                Ok(TokenKind::Bool(true))
            }
            Some('f') => {
                self.bump();
                Ok(TokenKind::Bool(false))
            }
            Some('(') => {
                self.bump();
                Ok(TokenKind::VecOpen)
            }
            Some('|') => Err(self.err("unterminated block comment")),
            Some('\\') => {
                self.bump();
                let mut name = String::new();
                // First character is taken literally (it may be a delimiter).
                match self.bump() {
                    Some(c) => name.push(c),
                    None => return Err(self.err("unterminated character literal")),
                }
                while let Some(c) = self.peek() {
                    if c.is_alphanumeric() || c == '-' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "space" => Ok(TokenKind::Char(' ')),
                    "newline" => Ok(TokenKind::Char('\n')),
                    "tab" => Ok(TokenKind::Char('\t')),
                    _ if name.chars().count() == 1 => {
                        Ok(TokenKind::Char(name.chars().next().unwrap()))
                    }
                    _ => Err(self.err(format!("unknown character literal #\\{name}"))),
                }
            }
            Some(c) => Err(self.err(format!("unknown # syntax #{c}"))),
            None => Err(self.err("dangling #")),
        }
    }

    fn is_delimiter(c: char) -> bool {
        c.is_whitespace() || matches!(c, '(' | ')' | '[' | ']' | '"' | ';' | '\'' | '`' | ',')
    }

    fn atom(&mut self) -> Result<TokenKind, SchemeError> {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if Self::is_delimiter(c) {
                break;
            }
            s.push(c);
            self.bump();
        }
        debug_assert!(!s.is_empty());
        if s == "." {
            return Ok(TokenKind::Dot);
        }
        // Numbers: [+-]?digits, [+-]?digits.digits(e[+-]?digits)?
        if let Ok(n) = s.parse::<i64>() {
            return Ok(TokenKind::Fixnum(n));
        }
        if looks_numeric(&s) {
            if let Ok(x) = s.parse::<f64>() {
                return Ok(TokenKind::Flonum(x));
            }
        }
        // Anything that fails to parse as a number is an identifier
        // (historical identifiers like `1+` included).
        Ok(TokenKind::Ident(s))
    }
}

/// Distinguishes would-be numbers from identifiers like `+` or `1+`.
fn looks_numeric(s: &str) -> bool {
    let body = s.strip_prefix(['+', '-']).unwrap_or(s);
    !body.is_empty()
        && body.starts_with(|c: char| c.is_ascii_digit() || c == '.')
        && body.chars().all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_expression() {
        assert_eq!(
            kinds("(+ 1 2)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("+".into()),
                TokenKind::Fixnum(1),
                TokenKind::Fixnum(2),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn brackets_are_parens() {
        assert_eq!(kinds("[]"), vec![TokenKind::LParen, TokenKind::RParen]);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Fixnum(42)]);
        assert_eq!(kinds("-7"), vec![TokenKind::Fixnum(-7)]);
        assert_eq!(kinds("+7"), vec![TokenKind::Fixnum(7)]);
        assert_eq!(kinds("3.25"), vec![TokenKind::Flonum(3.25)]);
        assert_eq!(kinds("-1.5e3"), vec![TokenKind::Flonum(-1500.0)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Flonum(0.5)]);
    }

    #[test]
    fn identifiers_including_signs() {
        assert_eq!(kinds("+"), vec![TokenKind::Ident("+".into())]);
        assert_eq!(kinds("-"), vec![TokenKind::Ident("-".into())]);
        assert_eq!(kinds("list->vector"), vec![TokenKind::Ident("list->vector".into())]);
        assert_eq!(kinds("set!"), vec![TokenKind::Ident("set!".into())]);
        assert_eq!(kinds("1+"), vec![TokenKind::Ident("1+".into())]);
    }

    #[test]
    fn booleans_chars_vectors() {
        assert_eq!(kinds("#t #f"), vec![TokenKind::Bool(true), TokenKind::Bool(false)]);
        assert_eq!(kinds("#\\a"), vec![TokenKind::Char('a')]);
        assert_eq!(kinds("#\\space"), vec![TokenKind::Char(' ')]);
        assert_eq!(kinds("#\\newline"), vec![TokenKind::Char('\n')]);
        assert_eq!(kinds("#\\)"), vec![TokenKind::Char(')')]);
        assert_eq!(kinds("#(1 2)")[0], TokenKind::VecOpen);
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""hi\n\"there\"""#), vec![TokenKind::Str("hi\n\"there\"".into())]);
    }

    #[test]
    fn quotes_and_unquotes() {
        assert_eq!(
            kinds("'a `b ,c ,@d"),
            vec![
                TokenKind::Quote,
                TokenKind::Ident("a".into()),
                TokenKind::Quasiquote,
                TokenKind::Ident("b".into()),
                TokenKind::Unquote,
                TokenKind::Ident("c".into()),
                TokenKind::UnquoteSplicing,
                TokenKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("; hello\n42 ; trailing"), vec![TokenKind::Fixnum(42)]);
    }

    #[test]
    fn dotted_pair_dot() {
        assert_eq!(
            kinds("(a . b)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn position_tracking() {
        let toks = tokenize("(a\n  b)").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[2].pos.line, 2);
        assert_eq!(toks[2].pos.col, 3);
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("#q").is_err());
        assert!(tokenize("#\\bogusname").is_err());
        assert!(tokenize(r#""bad \q escape""#).is_err());
    }
}

#[cfg(test)]
mod block_comment_tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn block_comments_are_atmosphere() {
        assert_eq!(kinds("1 #| two |# 3"), vec![TokenKind::Fixnum(1), TokenKind::Fixnum(3)]);
        assert_eq!(kinds("#| leading |# x"), vec![TokenKind::Ident("x".into())]);
        assert_eq!(kinds("x #| trailing |#"), vec![TokenKind::Ident("x".into())]);
        assert_eq!(kinds("#||#42"), vec![TokenKind::Fixnum(42)]);
    }

    #[test]
    fn block_comments_nest() {
        assert_eq!(
            kinds("(a #| outer #| inner |# still-comment |# b)"),
            vec![
                TokenKind::LParen,
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn block_comments_may_span_lines_and_hold_strings() {
        assert_eq!(kinds("#| \"(unclosed\n ;; ) |# ok"), vec![TokenKind::Ident("ok".into())]);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(tokenize("1 #| never closed").is_err());
        assert!(tokenize("#| a #| b |#").is_err(), "inner close only");
    }
}
