//! Compiled code: instructions, chunks, the code store, and the global
//! table.
//!
//! The code store is the Scheme system's "code stream". Exactly as in the
//! paper (§3, Figure 4), a [`Instr::FrameSize`] data word sits immediately
//! before every return point; the store's
//! [`FrameSizeTable`](segstack_core::FrameSizeTable) implementation reads
//! `instrs[ra - 1]` to recover frame displacements for stack walking,
//! continuation splitting and frame migration.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use segstack_core::{CodeAddr, FrameSizeTable};

use crate::error::SchemeError;
use crate::intern::Symbol;
use crate::primitives::FastOp;
use crate::value::Value;

/// How a non-tail call site treats the stack-overflow check (Figure 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Check {
    /// The site performs the overflow check, re-establishing the
    /// two-frame reserve for its callee.
    Yes,
    /// The check is statically elided: the callee provably stays within
    /// the reserve (leaf/prim-leaf bodies), or the `never` policy is in
    /// force.
    Elided,
    /// The check is elided by the *interprocedural* bounded-depth
    /// analysis: the whole callee subgraph was proved to stay within the
    /// reserve. Counted separately so the win is auditable.
    ElidedInterproc,
}

impl Check {
    /// Whether the VM must execute the overflow check at this site.
    pub fn performs_check(self) -> bool {
        matches!(self, Check::Yes)
    }
}

/// Monomorphic inline-cache target for a global-operator call site.
///
/// Only metadata that is `Copy` is cached; the operator *value* is still
/// read from the global table on a hit (the version match guarantees it
/// is the same binding the cache was filled from).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IcTarget {
    /// Nothing cached (never executed, or the operator is uncacheable —
    /// a continuation, a special form primitive, etc.).
    #[default]
    Empty,
    /// A `PrimKind::Normal` primitive whose arity already validated for
    /// this site's fixed argument count.
    Prim {
        /// Primitive table index.
        p: u16,
        /// Fixnum fast-path operation, if the primitive has one.
        fast: FastOp,
    },
    /// A closure; arity metadata lets the hit path skip `adjust_arity`.
    Closure {
        /// Code chunk of the closure body.
        chunk: u32,
        /// Required parameter count.
        nparams: u16,
        /// Whether extra arguments form a rest list.
        variadic: bool,
    },
}

/// One inline-cache slot. Interior-mutable: chunks are shared behind
/// `Rc` in a single-threaded engine, and the cache is pure memoization —
/// resetting it never changes behaviour, only dispatch cost.
#[derive(Debug, Default)]
pub struct IcSlot {
    /// Global-table version the cache entry was filled at.
    pub version: Cell<u32>,
    /// The cached target.
    pub target: Cell<IcTarget>,
}

/// A bytecode instruction.
///
/// Slot indices are relative to the current frame base: slot 0 is the
/// return address, slot 1 the operator (closure), slots `2..2+nparams` the
/// arguments, temporaries above.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `acc = consts[i]`.
    Const(u32),
    /// `acc = fixnum`.
    Fix(i64),
    /// `acc = #t` / `#f` / `()` / unspecified.
    True,
    /// See [`Instr::True`].
    False,
    /// See [`Instr::True`].
    Nil,
    /// See [`Instr::True`].
    Unspec,
    /// `acc = frame[slot]`.
    LocalRef(u16),
    /// `frame[slot] = acc`.
    LocalSet(u16),
    /// `acc = cell-contents(frame[slot])` (assignment-converted variable).
    CellRef(u16),
    /// `cell-contents(frame[slot]) = acc`.
    CellSet(u16),
    /// `acc = closure.free[i]` (closure is `frame[1]`).
    FreeRef(u16),
    /// `acc = cell-contents(closure.free[i])`.
    FreeCellRef(u16),
    /// `cell-contents(closure.free[i]) = acc`.
    FreeCellSet(u16),
    /// `frame[slot] = new cell(frame[slot])` — prologue boxing of assigned
    /// parameters (paper §3: assignable parameters live in heap cells).
    WrapCell(u16),
    /// `acc = globals[g]`, erroring if unbound.
    GlobalRef(u32),
    /// `globals[g] = acc`, erroring if not yet defined.
    GlobalSet(u32),
    /// `globals[g] = acc`, defining.
    GlobalDef(u32),
    /// `acc = closure { chunk, free: frame[src..src+nfree] }`.
    MakeClosure {
        /// Code chunk of the body.
        chunk: u32,
        /// First staged free-variable slot.
        src: u16,
        /// Number of free variables.
        nfree: u16,
    },
    /// Unconditional jump to an offset in the current chunk.
    Jump(u32),
    /// Jump if `acc` is `#f`.
    JumpIfFalse(u32),
    /// Non-tail call: operator staged at `frame[d+1]`, arguments at
    /// `frame[d+2..]`. Always preceded by a `FrameSize` word (the handler
    /// re-entry point) and followed by `FrameSize(d)` then the return
    /// point.
    Call {
        /// Frame displacement.
        d: u16,
        /// Number of arguments staged.
        nargs: u16,
        /// How this site treats the stack-overflow check.
        check: Check,
    },
    /// Tail call: operator staged at `frame[src]`, arguments after it.
    /// Always preceded by a `FrameSize` word.
    TailCall {
        /// Operator slot.
        src: u16,
        /// Number of arguments staged.
        nargs: u16,
    },
    /// Superinstruction: `frame[dst] = frame[src]` without touching the
    /// accumulator (fused `LocalRef(src); LocalSet(dst)`). Only emitted
    /// where the accumulator is provably dead.
    Move {
        /// Source slot.
        src: u16,
        /// Destination slot.
        dst: u16,
    },
    /// Superinstruction: `frame[dst] = fixnum` without touching the
    /// accumulator (fused `Fix(n); LocalSet(dst)`).
    FixStage {
        /// The fixnum staged.
        n: i64,
        /// Destination slot.
        dst: u16,
    },
    /// Superinstruction: `frame[dst] = globals[g]` without touching the
    /// accumulator (fused `GlobalRef(g); LocalSet(dst)`), erroring if
    /// unbound.
    GlobalStage {
        /// Global slot.
        g: u32,
        /// Destination slot.
        dst: u16,
    },
    /// Superinstruction: fused `GlobalRef(g); LocalSet(d+1); Call` with a
    /// monomorphic inline cache. The VM stages the operator itself; on a
    /// cache hit a primitive runs without the generic dispatch and a
    /// closure call skips the arity adjustment. Framing invariants are
    /// identical to [`Instr::Call`] (a `FrameSize` word before and
    /// after).
    CallGlobal {
        /// Global slot of the operator.
        g: u32,
        /// Inline-cache index into [`Chunk::ics`].
        ic: u32,
        /// Frame displacement.
        d: u16,
        /// Number of arguments staged.
        nargs: u16,
        /// How this site treats the stack-overflow check.
        check: Check,
    },
    /// Superinstruction: fused `GlobalRef(g); LocalSet(src); TailCall`
    /// with a monomorphic inline cache. Preceded by a `FrameSize` word
    /// like [`Instr::TailCall`].
    TailCallGlobal {
        /// Global slot of the operator.
        g: u32,
        /// Inline-cache index into [`Chunk::ics`].
        ic: u32,
        /// Operator slot.
        src: u16,
        /// Number of arguments staged.
        nargs: u16,
    },
    /// Superinstruction: a [`Instr::CallGlobal`] whose return point is
    /// immediately followed by `JumpIfFalse(target)` (fused test+branch).
    /// The physical layout `[FrameSize, CallGlobalBr, FrameSize(d),
    /// JumpIfFalse(target)]` is preserved, so closure returns execute the
    /// real `JumpIfFalse` at the return point; only the inline-cached
    /// primitive hit takes the fused branch directly.
    CallGlobalBr {
        /// Global slot of the operator.
        g: u32,
        /// Inline-cache index into [`Chunk::ics`].
        ic: u32,
        /// Frame displacement.
        d: u16,
        /// Number of arguments staged.
        nargs: u16,
        /// How this site treats the stack-overflow check.
        check: Check,
        /// Branch target taken when the primitive result is `#f`.
        target: u32,
    },
    /// Return `acc` to the current frame's return address.
    Return,
    /// The frame-size data word placed in the code stream (never executed;
    /// stack walkers read it through the return address).
    FrameSize(u32),
}

/// A compiled code chunk: one lambda body or one top-level form.
#[derive(Debug)]
pub struct Chunk {
    /// The instructions.
    pub instrs: Vec<Instr>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Required parameter count (lambda chunks).
    pub nparams: u16,
    /// Whether extra arguments are collected into a rest list.
    pub variadic: bool,
    /// Name for diagnostics.
    pub name: String,
    /// Maximum frame slots used (static frame size — experiment E14).
    pub frame_slots: u16,
    /// Inline-cache slots, one per `CallGlobal`-family site.
    pub ics: Vec<IcSlot>,
}

/// Append-only store of compiled chunks; the system's code stream.
///
/// Implements [`FrameSizeTable`] by reading the data word before each
/// return point, exactly as the paper's stack walker does.
#[derive(Debug, Default)]
pub struct CodeStore {
    chunks: RefCell<Vec<Rc<Chunk>>>,
}

impl CodeStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CodeStore::default()
    }

    /// Adds a chunk, returning its id.
    pub fn add(&self, chunk: Chunk) -> u32 {
        let mut chunks = self.chunks.borrow_mut();
        let id = chunks.len() as u32;
        chunks.push(Rc::new(chunk));
        id
    }

    /// Fetches a chunk by id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this store.
    pub fn chunk(&self, id: u32) -> Rc<Chunk> {
        self.chunks.borrow()[id as usize].clone()
    }

    /// Number of chunks compiled so far.
    pub fn len(&self) -> usize {
        self.chunks.borrow().len()
    }

    /// Returns `true` if no chunks have been compiled.
    pub fn is_empty(&self) -> bool {
        self.chunks.borrow().is_empty()
    }

    /// Static frame sizes of every compiled chunk (experiment E14's input).
    pub fn frame_sizes(&self) -> Vec<u16> {
        self.chunks.borrow().iter().map(|c| c.frame_slots).collect()
    }
}

/// A violation found by [`CodeStore::verify`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Chunk the violation is in.
    pub chunk: u32,
    /// Instruction offset.
    pub offset: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk {} @{}: {}", self.chunk, self.offset, self.message)
    }
}

impl CodeStore {
    /// Structurally verifies every compiled chunk:
    ///
    /// * every `Call` is preceded by a `FrameSize` word (the timer re-entry
    ///   point) **and** followed by one (the word before the return point —
    ///   the paper's Figure 4 invariant that makes stacks walkable);
    /// * every `TailCall` is preceded by a `FrameSize` word;
    /// * jump targets stay inside the chunk;
    /// * constant-pool and closure-chunk references resolve;
    /// * staged slots stay within the recorded frame size.
    ///
    /// Returns every violation found (empty = verified).
    pub fn verify(&self) -> Vec<VerifyError> {
        let chunks = self.chunks.borrow();
        let mut errors = Vec::new();
        for (id, chunk) in chunks.iter().enumerate() {
            let id32 = id as u32;
            let n = chunk.instrs.len();
            let mut err = |offset: usize, message: String| {
                errors.push(VerifyError { chunk: id32, offset, message });
            };
            for (i, instr) in chunk.instrs.iter().enumerate() {
                let framesize_at =
                    |j: usize| matches!(chunk.instrs.get(j), Some(Instr::FrameSize(_)));
                match instr {
                    Instr::Call { d, nargs, .. }
                    | Instr::CallGlobal { d, nargs, .. }
                    | Instr::CallGlobalBr { d, nargs, .. } => {
                        if i == 0 || !framesize_at(i - 1) {
                            err(i, "call not preceded by a frame-size word".into());
                        }
                        if !framesize_at(i + 1) {
                            err(i, "call's return point lacks its frame-size word".into());
                        }
                        if usize::from(d + 2 + nargs) > usize::from(chunk.frame_slots) {
                            err(
                                i,
                                format!(
                                    "call stages {} slots beyond the recorded frame size {}",
                                    d + 2 + nargs,
                                    chunk.frame_slots
                                ),
                            );
                        }
                        if let Instr::CallGlobal { ic, .. } | Instr::CallGlobalBr { ic, .. } = instr
                        {
                            if *ic as usize >= chunk.ics.len() {
                                err(
                                    i,
                                    format!(
                                        "inline-cache index {ic} outside table of {}",
                                        chunk.ics.len()
                                    ),
                                );
                            }
                        }
                        if let Instr::CallGlobalBr { target, .. } = instr {
                            if *target as usize > n {
                                err(i, format!("fused branch target {target} outside chunk"));
                            }
                            match chunk.instrs.get(i + 2) {
                                Some(Instr::JumpIfFalse(t)) if t == target => {}
                                other => err(
                                    i,
                                    format!(
                                        "fused test+branch return point is not the matching \
                                         JumpIfFalse({target}) (found {other:?})"
                                    ),
                                ),
                            }
                        }
                    }
                    Instr::TailCall { src, nargs } | Instr::TailCallGlobal { src, nargs, .. } => {
                        if i == 0 || !framesize_at(i - 1) {
                            err(i, "tail call not preceded by a frame-size word".into());
                        }
                        if usize::from(src + 1 + nargs) > usize::from(chunk.frame_slots) {
                            err(i, "tail call stages beyond the recorded frame size".into());
                        }
                        if let Instr::TailCallGlobal { ic, .. } = instr {
                            if *ic as usize >= chunk.ics.len() {
                                err(
                                    i,
                                    format!(
                                        "inline-cache index {ic} outside table of {}",
                                        chunk.ics.len()
                                    ),
                                );
                            }
                        }
                    }
                    Instr::Move { src, dst } => {
                        for slot in [src, dst] {
                            if usize::from(*slot) >= usize::from(chunk.frame_slots) {
                                err(
                                    i,
                                    format!(
                                        "move slot {slot} beyond recorded frame size {}",
                                        chunk.frame_slots
                                    ),
                                );
                            }
                        }
                    }
                    Instr::FixStage { dst, .. } | Instr::GlobalStage { dst, .. }
                        if usize::from(*dst) >= usize::from(chunk.frame_slots) =>
                    {
                        err(
                            i,
                            format!(
                                "staged slot {dst} beyond recorded frame size {}",
                                chunk.frame_slots
                            ),
                        );
                    }
                    Instr::Jump(t) | Instr::JumpIfFalse(t) if *t as usize > n => {
                        err(i, format!("jump target {t} outside chunk of {n}"));
                    }
                    Instr::Const(c) if *c as usize >= chunk.consts.len() => {
                        err(i, format!("constant {c} outside pool of {}", chunk.consts.len()));
                    }
                    Instr::MakeClosure { chunk: target, .. }
                        if *target as usize >= chunks.len() =>
                    {
                        err(i, format!("closure chunk {target} does not exist"));
                    }
                    Instr::LocalSet(slot)
                        if usize::from(*slot) >= usize::from(chunk.frame_slots) =>
                    {
                        err(
                            i,
                            format!(
                                "slot {slot} written beyond recorded frame size {}",
                                chunk.frame_slots
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        errors
    }
}

impl FrameSizeTable for CodeStore {
    fn displacement(&self, ra: CodeAddr) -> usize {
        let chunks = self.chunks.borrow();
        let chunk = &chunks[ra.chunk() as usize];
        match chunk.instrs[ra.offset() as usize - 1] {
            Instr::FrameSize(d) => d as usize,
            ref other => panic!(
                "return point {ra} in chunk {:?} is not preceded by a frame-size word (found {other:?})",
                chunk.name
            ),
        }
    }
}

/// The global-variable table.
///
/// Globals are indexed slots so compiled code avoids hashing; unbound
/// references fail at runtime with the variable's name.
#[derive(Debug, Default)]
pub struct Globals {
    names: Vec<Symbol>,
    values: Vec<Option<Value>>,
    /// Per-slot write version, bumped on every `define`/`set!` — the
    /// invalidation signal for inline caches keyed on a global operator.
    versions: Vec<u32>,
    map: HashMap<Symbol, u32>,
}

impl Globals {
    /// Creates an empty global table.
    pub fn new() -> Self {
        Globals::default()
    }

    /// Returns the slot for `name`, creating an (unbound) one if needed.
    pub fn slot(&mut self, name: Symbol) -> u32 {
        if let Some(&id) = self.map.get(&name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name);
        self.values.push(None);
        self.versions.push(0);
        self.map.insert(name, id);
        id
    }

    /// Looks up a slot without creating it.
    pub fn lookup(&self, name: Symbol) -> Option<u32> {
        self.map.get(&name).copied()
    }

    /// Reads global `g`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Runtime`] if the variable has never been defined.
    pub fn get(&self, g: u32) -> Result<Value, SchemeError> {
        self.values[g as usize].clone().ok_or_else(|| {
            SchemeError::runtime(format!("unbound variable: {}", self.names[g as usize]))
        })
    }

    /// Writes global `g` via `set!`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Runtime`] if the variable has never been defined.
    pub fn set(&mut self, g: u32, v: Value) -> Result<(), SchemeError> {
        let slot = &mut self.values[g as usize];
        if slot.is_none() {
            return Err(SchemeError::runtime(format!(
                "set!: unbound variable: {}",
                self.names[g as usize]
            )));
        }
        *slot = Some(v);
        self.versions[g as usize] = self.versions[g as usize].wrapping_add(1);
        Ok(())
    }

    /// Defines (or redefines) global `g`.
    pub fn define(&mut self, g: u32, v: Value) {
        self.values[g as usize] = Some(v);
        self.versions[g as usize] = self.versions[g as usize].wrapping_add(1);
    }

    /// The write version of slot `g` (bumped on every `define`/`set!`).
    /// Inline caches record the version they were filled at and treat any
    /// difference as an invalidation.
    pub fn version(&self, g: u32) -> u32 {
        self.versions[g as usize]
    }

    /// The name of global slot `g`.
    pub fn name(&self, g: u32) -> Symbol {
        self.names[g as usize]
    }

    /// Is slot `g` currently bound?
    pub fn is_bound(&self, g: u32) -> bool {
        self.values[g as usize].is_some()
    }

    /// Number of global slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Display for Chunk {
    /// Disassembly listing, for debugging and tests.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            ";; chunk {:?} params={} variadic={} frame={}",
            self.name, self.nparams, self.variadic, self.frame_slots
        )?;
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:4}  {instr:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_store_round_trips_chunks() {
        let store = CodeStore::new();
        assert!(store.is_empty());
        let id = store.add(Chunk {
            instrs: vec![Instr::Fix(1), Instr::Return],
            consts: vec![],
            nparams: 0,
            variadic: false,
            name: "t".into(),
            frame_slots: 1,
            ics: Vec::new(),
        });
        assert_eq!(id, 0);
        assert_eq!(store.len(), 1);
        assert_eq!(store.chunk(0).instrs.len(), 2);
        assert_eq!(store.frame_sizes(), vec![1]);
    }

    #[test]
    fn displacement_reads_the_word_before_the_return_point() {
        let store = CodeStore::new();
        let id = store.add(Chunk {
            instrs: vec![
                Instr::FrameSize(9),
                Instr::Call { d: 3, nargs: 1, check: Check::Yes },
                Instr::FrameSize(3),
                Instr::Return, // return point at offset 3
            ],
            consts: vec![],
            nparams: 0,
            variadic: false,
            name: "t".into(),
            frame_slots: 6,
            ics: Vec::new(),
        });
        assert_eq!(store.displacement(CodeAddr::new(id, 3)), 3);
        assert_eq!(store.displacement(CodeAddr::new(id, 1)), 9);
    }

    #[test]
    #[should_panic(expected = "not preceded by a frame-size word")]
    fn displacement_panics_on_non_return_point() {
        let store = CodeStore::new();
        let id = store.add(Chunk {
            instrs: vec![Instr::Fix(1), Instr::Return],
            consts: vec![],
            nparams: 0,
            variadic: false,
            name: "t".into(),
            frame_slots: 1,
            ics: Vec::new(),
        });
        store.displacement(CodeAddr::new(id, 1));
    }

    #[test]
    fn globals_define_set_get() {
        let mut g = Globals::new();
        let x = g.slot(Symbol::intern("x"));
        assert_eq!(g.slot(Symbol::intern("x")), x, "slots are stable");
        assert!(!g.is_bound(x));
        assert!(g.get(x).is_err());
        assert!(g.set(x, Value::Fixnum(1)).is_err(), "set! before define fails");
        g.define(x, Value::Fixnum(1));
        assert_eq!(g.get(x).unwrap(), Value::Fixnum(1));
        g.set(x, Value::Fixnum(2)).unwrap();
        assert_eq!(g.get(x).unwrap(), Value::Fixnum(2));
        assert_eq!(g.name(x), Symbol::intern("x"));
        assert_eq!(g.lookup(Symbol::intern("x")), Some(x));
        assert_eq!(g.lookup(Symbol::intern("y")), None);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn chunk_disassembly_is_nonempty() {
        let c = Chunk {
            instrs: vec![Instr::Nil, Instr::Return],
            consts: vec![],
            nparams: 1,
            variadic: true,
            name: "f".into(),
            frame_slots: 3,
            ics: Vec::new(),
        };
        let listing = c.to_string();
        assert!(listing.contains("chunk \"f\""));
        assert!(listing.contains("Return"));
    }
}
