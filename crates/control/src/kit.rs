//! A ready-to-use engine with every control library loaded, plus typed
//! helpers for the classic continuation workloads.

use std::cell::RefCell;
use std::rc::Rc;

use segstack_baselines::Strategy;
use segstack_core::{Config, Metrics, RingSink};
use segstack_scheme::{CheckPolicy, Engine, SchemeError, Value};

use crate::libs;

/// A Scheme engine with the coroutine, generator, engine and amb libraries
/// installed.
///
/// # Examples
///
/// ```
/// use segstack_control::Control;
/// use segstack_baselines::Strategy;
///
/// let mut kit = Control::new(Strategy::Segmented)?;
/// assert!(kit.same_fringe("'((1 2) 3)", "'(1 (2 3))")?);
/// assert_eq!(kit.queens_count(6)?, 4);
/// # Ok::<(), segstack_scheme::SchemeError>(())
/// ```
#[derive(Debug)]
pub struct Control {
    engine: Engine,
}

impl Control {
    /// Creates a kit over the given control-stack strategy with default
    /// configuration.
    ///
    /// # Errors
    ///
    /// Propagates engine construction or library loading failures.
    pub fn new(strategy: Strategy) -> Result<Self, SchemeError> {
        Self::with_config(strategy, Config::default(), CheckPolicy::default())
    }

    /// Creates a kit with explicit stack configuration and check policy.
    ///
    /// # Errors
    ///
    /// Propagates engine construction or library loading failures.
    pub fn with_config(
        strategy: Strategy,
        config: Config,
        policy: CheckPolicy,
    ) -> Result<Self, SchemeError> {
        let engine =
            Engine::builder().strategy(strategy).config(config).check_policy(policy).build()?;
        Self::with_engine(engine)
    }

    /// Creates a kit whose engine records trace events into a shared
    /// ring (see [`segstack_core::trace`]). Only the segmented strategy
    /// is instrumented; other strategies accept the sink and record
    /// nothing. Several kits may share one ring through clones of the
    /// same handle.
    ///
    /// # Errors
    ///
    /// Propagates engine construction or library loading failures.
    pub fn with_trace_sink(
        strategy: Strategy,
        sink: Rc<RefCell<RingSink>>,
    ) -> Result<Self, SchemeError> {
        let engine = Engine::builder().strategy(strategy).trace_sink(sink).build()?;
        Self::with_engine(engine)
    }

    /// Installs the libraries into an existing engine.
    ///
    /// # Errors
    ///
    /// Propagates library compilation failures.
    pub fn with_engine(mut engine: Engine) -> Result<Self, SchemeError> {
        for (_, src) in libs::ALL {
            engine.eval(src)?;
        }
        Ok(Control { engine })
    }

    /// The underlying engine.
    pub fn engine(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Evaluates arbitrary Scheme.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn eval(&mut self, src: &str) -> Result<Value, SchemeError> {
        self.engine.eval(src)
    }

    /// Control-stack operation counters.
    pub fn metrics(&self) -> &Metrics {
        self.engine.metrics()
    }

    /// Do two trees (as Scheme expressions) have the same fringe? Uses two
    /// coroutines walking the trees in lockstep — the canonical coroutine
    /// workload.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn same_fringe(&mut self, tree1: &str, tree2: &str) -> Result<bool, SchemeError> {
        let v = self.engine.eval(&format!("(same-fringe? {tree1} {tree2})"))?;
        Ok(v.is_truthy())
    }

    /// Runs the two-coroutine ping-pong for `rounds` control transfers,
    /// returning the final counter.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn coroutine_pingpong(&mut self, rounds: u32) -> Result<i64, SchemeError> {
        self.engine.eval(&format!("(coroutine-pingpong {rounds})"))?.as_fixnum()
    }

    /// Counts the solutions of the `n`-queens puzzle via `amb`
    /// backtracking.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn queens_count(&mut self, n: u32) -> Result<usize, SchemeError> {
        Ok(self.engine.eval(&format!("(queens-count {n})"))?.as_fixnum()? as usize)
    }

    /// Runs `k` engines round-robin, each counting down from `n`, with the
    /// given tick quantum; returns their values in completion order.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn round_robin_countdowns(
        &mut self,
        k: u32,
        n: u32,
        quantum: u32,
    ) -> Result<Vec<i64>, SchemeError> {
        let src = format!(
            "(round-robin
               (map (lambda (id)
                      (make-engine (lambda ()
                        (let loop ((i {n})) (if (= i 0) id (loop (- i 1)))))))
                    (iota {k}))
               {quantum})"
        );
        let v = self.engine.eval(&src)?;
        v.list_to_vec()?.iter().map(Value::as_fixnum).collect()
    }

    /// Spawns one cooperative thread per Scheme thunk source and runs them
    /// all with the given quantum; returns `(thread-id, value)` pairs in
    /// completion order. Threads are engines under the hood: preemption is
    /// continuation capture at a timer interrupt.
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn run_threads(
        &mut self,
        thunks: &[&str],
        quantum: u32,
    ) -> Result<Vec<(i64, Value)>, SchemeError> {
        for thunk in thunks {
            self.engine.eval(&format!("(spawn {thunk})"))?;
        }
        let v = self.engine.eval(&format!("(run-threads {quantum})"))?;
        v.list_to_vec()?
            .into_iter()
            .map(|pair| Ok((pair.car()?.as_fixnum()?, pair.cdr()?)))
            .collect()
    }

    /// Runs the ctak benchmark (continuation-intensive tak).
    ///
    /// # Errors
    ///
    /// See [`Engine::eval`].
    pub fn ctak(&mut self, x: i64, y: i64, z: i64) -> Result<i64, SchemeError> {
        self.engine.eval(CTAK)?;
        self.engine.eval(&format!("(ctak {x} {y} {z})"))?.as_fixnum()
    }
}

/// The ctak benchmark source (continuation-intensive tak).
pub const CTAK: &str = "
(define (ctak x y z) (call/cc (lambda (k) (ctak-aux k x y z))))
(define (ctak-aux k x y z)
  (if (not (< y x))
      (k z)
      (call/cc (lambda (k)
        (ctak-aux k
          (call/cc (lambda (k) (ctak-aux k (- x 1) y z)))
          (call/cc (lambda (k) (ctak-aux k (- y 1) z x)))
          (call/cc (lambda (k) (ctak-aux k (- z 1) x y))))))))";

#[cfg(test)]
mod tests {
    use super::*;

    fn kit() -> Control {
        Control::new(Strategy::Segmented).unwrap()
    }

    #[test]
    fn same_fringe_positive_and_negative() {
        let mut k = kit();
        assert!(k.same_fringe("'((1 2) 3)", "'(1 (2 3))").unwrap());
        assert!(k.same_fringe("'(1 2 3)", "'(((1) 2) (3))").unwrap());
        assert!(!k.same_fringe("'(1 2 3)", "'(1 2 4)").unwrap());
        assert!(!k.same_fringe("'(1 2 3)", "'(1 2)").unwrap());
        assert!(!k.same_fringe("'(1 2)", "'(1 2 3)").unwrap());
    }

    #[test]
    fn pingpong_transfers_control() {
        let mut k = kit();
        assert_eq!(k.coroutine_pingpong(100).unwrap(), 100);
    }

    #[test]
    fn generators_compose() {
        let mut k = kit();
        assert_eq!(
            k.eval("(generator->list (list->generator '(1 2 3)))").unwrap().to_string(),
            "(1 2 3)"
        );
        assert_eq!(
            k.eval("(generator-take (integers-from 10) 4)").unwrap().to_string(),
            "(10 11 12 13)"
        );
        assert_eq!(
            k.eval(
                "(generator-take
                   (generator-map (lambda (x) (* x x))
                     (generator-filter even? (integers-from 0)))
                   4)"
            )
            .unwrap()
            .to_string(),
            "(0 4 16 36)"
        );
    }

    #[test]
    fn engines_complete_and_expire() {
        let mut k = kit();
        // A fast thunk completes within one quantum.
        let v = k.eval("(engine-run-to-completion (make-engine (lambda () 42)) 1000)").unwrap();
        assert_eq!(v.to_string(), "(42 . 1)");
        // A slow loop needs several quanta.
        let v = k
            .eval(
                "(engine-run-to-completion
                   (make-engine (lambda () (let loop ((i 2000)) (if (= i 0) 'slow (loop (- i 1))))))
                   100)",
            )
            .unwrap();
        let s = v.to_string();
        assert!(s.starts_with("(slow . "), "{s}");
        let quanta: i64 = s[8..s.len() - 1].trim().parse().unwrap();
        assert!(quanta > 5, "only {quanta} quanta used");
    }

    #[test]
    fn round_robin_interleaves_fairly() {
        let mut k = kit();
        // Equal workloads complete in submission order under round-robin.
        let order = k.round_robin_countdowns(3, 500, 100).unwrap();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn amb_solves_queens() {
        let mut k = kit();
        assert_eq!(k.queens_count(4).unwrap(), 2);
        assert_eq!(k.queens_count(5).unwrap(), 10);
        assert_eq!(k.queens_count(6).unwrap(), 4);
    }

    #[test]
    fn amb_choose_and_require() {
        let mut k = kit();
        assert_eq!(
            k.eval(
                "(amb-collect (lambda ()
                   (let ((x (choose '(1 2 3))) (y (choose '(1 2 3))))
                     (amb-require (= (+ x y) 4))
                     (list x y))))"
            )
            .unwrap()
            .to_string(),
            "((1 3) (2 2) (3 1))"
        );
    }

    #[test]
    fn ctak_runs_on_all_strategies() {
        for s in Strategy::ALL {
            let mut k = Control::new(s).unwrap();
            assert_eq!(k.ctak(7, 5, 2).unwrap(), 3, "{s}");
        }
    }

    #[test]
    fn workloads_run_on_all_strategies() {
        for s in Strategy::ALL {
            let mut k = Control::new(s).unwrap();
            assert!(k.same_fringe("'((1 2) 3)", "'(1 (2 3))").unwrap(), "{s}");
            assert_eq!(k.queens_count(5).unwrap(), 10, "{s}");
            assert_eq!(k.coroutine_pingpong(50).unwrap(), 50, "{s}");
        }
    }
}

#[cfg(test)]
mod thread_tests {
    use super::*;

    fn kit() -> Control {
        Control::new(Strategy::Segmented).unwrap()
    }

    #[test]
    fn threads_run_to_completion_in_order() {
        let mut k = kit();
        let results = k
            .run_threads(
                &[
                    "(lambda () (let loop ((i 400)) (if (= i 0) 'first (loop (- i 1)))))",
                    "(lambda () (let loop ((i 400)) (if (= i 0) 'second (loop (- i 1)))))",
                ],
                100,
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.to_string(), "first");
        assert_eq!(results[1].1.to_string(), "second");
    }

    #[test]
    fn short_threads_finish_before_long_ones() {
        let mut k = kit();
        let results = k
            .run_threads(
                &[
                    "(lambda () (let loop ((i 5000)) (if (= i 0) 'long (loop (- i 1)))))",
                    "(lambda () 'instant)",
                ],
                50,
            )
            .unwrap();
        assert_eq!(results[0].1.to_string(), "instant");
        assert_eq!(results[1].1.to_string(), "long");
    }

    #[test]
    fn thread_yield_interleaves_voluntarily() {
        let mut k = kit();
        // Two threads appending to a shared trace, yielding every step with
        // a huge quantum: interleaving can only come from thread-yield.
        k.eval("(define trace '())").unwrap();
        let results = k
            .run_threads(
                &[
                    "(lambda ()
                       (let loop ((i 3))
                         (if (= i 0) 'a
                             (begin (set! trace (cons 'a trace)) (thread-yield) (loop (- i 1))))))",
                    "(lambda ()
                       (let loop ((i 3))
                         (if (= i 0) 'b
                             (begin (set! trace (cons 'b trace)) (thread-yield) (loop (- i 1))))))",
                ],
                1_000_000,
            )
            .unwrap();
        assert_eq!(results.len(), 2);
        let trace = k.eval("(reverse trace)").unwrap().to_string();
        assert_eq!(trace, "(a b a b a b)", "yield must alternate the threads");
    }

    #[test]
    fn channels_connect_producer_and_consumer() {
        let mut k = kit();
        k.eval("(define ch (make-channel))").unwrap();
        let results = k
            .run_threads(
                &[
                    // Consumer spawned FIRST: it must block until values arrive.
                    "(lambda ()
                       (let loop ((n 3) (acc '()))
                         (if (= n 0) (reverse acc)
                             (loop (- n 1) (cons (channel-recv! ch) acc)))))",
                    "(lambda ()
                       (for-each (lambda (x) (channel-send! ch x) (thread-yield)) '(10 20 30))
                       'sent)",
                ],
                200,
            )
            .unwrap();
        let consumer = results.iter().find(|(tid, _)| *tid == 1).unwrap();
        assert_eq!(consumer.1.to_string(), "(10 20 30)");
    }

    #[test]
    fn many_threads_share_fairly() {
        let mut k = kit();
        let thunks: Vec<String> = (0..8)
            .map(|i| format!("(lambda () (let loop ((n 300)) (if (= n 0) {i} (loop (- n 1)))))"))
            .collect();
        let refs: Vec<&str> = thunks.iter().map(String::as_str).collect();
        let results = k.run_threads(&refs, 60).unwrap();
        assert_eq!(results.len(), 8);
        // Equal work + round-robin => completion in spawn order.
        let order: Vec<String> = results.iter().map(|(_, v)| v.to_string()).collect();
        assert_eq!(order, ["0", "1", "2", "3", "4", "5", "6", "7"]);
    }

    #[test]
    fn threads_work_on_all_strategies() {
        for s in Strategy::ALL {
            let mut k = Control::new(s).unwrap();
            let results = k
                .run_threads(
                    &[
                        "(lambda () (let loop ((i 500)) (if (= i 0) 'x (loop (- i 1)))))",
                        "(lambda () (let loop ((i 200)) (if (= i 0) 'y (loop (- i 1)))))",
                    ],
                    60,
                )
                .unwrap();
            assert_eq!(results.len(), 2, "{s}");
            assert_eq!(results[0].1.to_string(), "y", "{s}: shorter finishes first");
        }
    }
}
