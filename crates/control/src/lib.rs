//! # segstack-control
//!
//! Control abstractions built on first-class continuations, exercising the
//! segmented control stack the way the paper's introduction motivates:
//! "loops, nonblind backtracking \[16\], coroutines \[8\], and engines
//! \[10, 7\]" (§2).
//!
//! The abstractions are implemented *in Scheme* on top of `call/cc` (and,
//! for engines, the timer interrupt), loaded into a
//! [`segstack_scheme::Engine`], and wrapped in typed Rust APIs:
//!
//! * **Coroutines** — symmetric control transfer, tree walkers, the
//!   same-fringe problem.
//! * **Generators** — one-way coroutines with `map`/`filter`/`take`
//!   combinators over infinite streams.
//! * **Engines** — timed preemption from continuations (Dybvig & Hieb,
//!   "Engines from Continuations"), with a round-robin scheduler.
//! * **Amb** — nonblind backtracking with `choose`/`amb-require`/
//!   `amb-collect` and the n-queens puzzle.
//!
//! ```
//! use segstack_control::Control;
//! use segstack_baselines::Strategy;
//!
//! let mut kit = Control::new(Strategy::Segmented)?;
//! // Two engines share the processor via continuation-based preemption.
//! let order = kit.round_robin_countdowns(2, 300, 50)?;
//! assert_eq!(order, vec![0, 1]);
//! # Ok::<(), segstack_scheme::SchemeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod kit;
pub mod libs;
mod step;

pub use kit::{Control, CTAK};
pub use step::{EngineJob, Step};
