//! The Scheme sources of the control-abstraction libraries.
//!
//! Everything here is built from `call/cc` (and, for engines, the timer
//! interrupt), following the constructions the paper cites: coroutines
//! (Friedman, Haynes & Wand \[8\]), engines (Haynes & Friedman \[10\];
//! Dybvig & Hieb \[7\]), and nonblind backtracking (Sussman & Steele
//! \[16\]).

/// Coroutines: `(spawn-coroutine body)` where `body` receives a `yield`
/// procedure; the result is a resumer taking the value to send in. Includes
/// tree walkers and the classic same-fringe test, the canonical coroutine
/// workload.
pub const COROUTINES: &str = r#"
(define (spawn-coroutine body)
  (let ((return #f) (resume #f))
    (define (entry v)
      (body (lambda (out)
              (call/cc (lambda (k)
                         (set! resume k)
                         (return out))))
            v)
      (return 'coroutine-done))
    (lambda (v)
      (call/cc (lambda (k)
                 (set! return k)
                 (if resume (resume v) (entry v)))))))

;; A generator yields each leaf of a tree (pairs are interior nodes).
(define (tree->fringe-coroutine tree)
  (spawn-coroutine
    (lambda (yield ignored)
      (define (walk t)
        (if (pair? t)
            (begin (walk (car t)) (walk (cdr t)))
            (if (null? t) (void) (yield t))))
      (walk tree)
      (yield 'fringe-end))))

(define (same-fringe? t1 t2)
  (let ((g1 (tree->fringe-coroutine t1))
        (g2 (tree->fringe-coroutine t2)))
    (let loop ()
      (let ((a (g1 #f)) (b (g2 #f)))
        (cond ((not (eqv? a b)) #f)
              ((eq? a 'fringe-end) #t)
              (else (loop)))))))

;; A two-party ping-pong: each resume transfers control to the other side.
(define (coroutine-pingpong rounds)
  (define pong
    (spawn-coroutine
      (lambda (yield first)
        (let loop ((v first))
          (loop (yield (+ v 1)))))))
  (let loop ((i 0) (v 0))
    (if (= i rounds)
        v
        (loop (+ i 1) (pong v)))))
"#;

/// Generators (one-way coroutines) with a small combinator set.
pub const GENERATORS: &str = r#"
(define (make-generator producer)
  ;; producer receives a yield procedure; the generator returns 'done when
  ;; the producer finishes.
  (let ((return #f) (resume #f))
    (define (entry)
      (producer (lambda (out)
                  (call/cc (lambda (k)
                             (set! resume k)
                             (return out)))))
      (return 'done))
    (lambda ()
      (call/cc (lambda (k)
                 (set! return k)
                 (if resume (resume #f) (entry)))))))

(define (list->generator lst)
  (make-generator (lambda (yield) (for-each yield lst))))

(define (generator->list g)
  (let loop ((acc '()))
    (let ((v (g)))
      (if (eq? v 'done) (reverse acc) (loop (cons v acc))))))

(define (generator-take g n)
  (let loop ((i 0) (acc '()))
    (if (= i n)
        (reverse acc)
        (let ((v (g)))
          (if (eq? v 'done) (reverse acc) (loop (+ i 1) (cons v acc)))))))

(define (integers-from n)
  (make-generator
    (lambda (yield)
      (let loop ((i n)) (yield i) (loop (+ i 1))))))

(define (generator-map f g)
  (make-generator
    (lambda (yield)
      (let loop ()
        (let ((v (g)))
          (if (eq? v 'done) (void) (begin (yield (f v)) (loop))))))))

(define (generator-filter pred g)
  (make-generator
    (lambda (yield)
      (let loop ()
        (let ((v (g)))
          (if (eq? v 'done)
              (void)
              (begin (if (pred v) (yield v) (void)) (loop))))))))
"#;

/// Engines: timed preemption from continuations and the timer interrupt
/// (the classic construction of Dybvig & Hieb, "Engines from
/// Continuations"). `(make-engine thunk)` gives `(engine ticks complete
/// expire)`; `complete` receives the value and leftover ticks, `expire`
/// receives a fresh engine for the remainder of the computation.
pub const ENGINES: &str = r#"
(define (start-timer ticks handler)
  (set-timer-handler! handler)
  (set-timer ticks))

(define (stop-timer) (set-timer 0))

(define make-engine
  (let ((do-complete #f) (do-expire #f))
    (define (timer-handler)
      (start-timer (call/cc do-expire) timer-handler))
    (define (new-engine resume)
      (lambda (ticks complete expire)
        ((call/cc
           (lambda (escape)
             (set! do-complete
               (lambda (value ticks)
                 (escape (lambda () (complete value ticks)))))
             (set! do-expire
               (lambda (resume)
                 (escape (lambda () (expire (new-engine resume))))))
             (resume ticks))))))
    (lambda (thunk)
      (new-engine
        (lambda (ticks)
          (start-timer ticks timer-handler)
          (let ((value (thunk)))
            (let ((leftover (stop-timer)))
              (do-complete value leftover))))))))

;; Runs engines round-robin with a fixed quantum until all complete;
;; returns the values in completion order.
(define (round-robin engines quantum)
  (if (null? engines)
      '()
      ((car engines)
       quantum
       (lambda (value ticks)
         (cons value (round-robin (cdr engines) quantum)))
       (lambda (eng)
         (round-robin (append (cdr engines) (list eng)) quantum)))))

;; Runs an engine to completion, counting how many quanta it needed.
(define (engine-run-to-completion eng quantum)
  (let loop ((eng eng) (quanta 1))
    (eng quantum
         (lambda (value ticks) (cons value quanta))
         (lambda (next) (loop next (+ quanta 1))))))
"#;

/// Nonblind backtracking (`amb`) via continuations.
pub const AMB: &str = r#"
(define %amb-fail #f)

(define (amb-reset!)
  (set! %amb-fail (lambda () (error "amb: no more choices"))))

(amb-reset!)

;; Nondeterministically chooses an element; on failure, later elements are
;; tried, then the enclosing choice point.
(define (choose lst)
  (call/cc
    (lambda (k)
      (let ((prev %amb-fail))
        (define (try items)
          (if (null? items)
              (begin (set! %amb-fail prev) (prev))
              (begin
                (set! %amb-fail (lambda () (try (cdr items))))
                (k (car items)))))
        (try lst)))))

(define (amb-require ok) (if ok #t (%amb-fail)))

;; Collects every solution of thunk by failing after each success.
(define (amb-collect thunk)
  (let ((results '()))
    (call/cc
      (lambda (done)
        (amb-reset!)
        (set! %amb-fail (lambda () (done #f)))
        (let ((v (thunk)))
          (set! results (cons v results))
          (%amb-fail))))
    (reverse results)))

;; The n-queens puzzle with amb: the canonical backtracking workload.
(define (queens-ok? row placed dist)
  (cond ((null? placed) #t)
        ((= (car placed) row) #f)
        ((= (abs (- (car placed) row)) dist) #f)
        (else (queens-ok? row (cdr placed) (+ dist 1)))))

(define (queens n)
  (define (place col placed)
    (if (= col n)
        placed
        (let ((row (choose (iota n))))
          (amb-require (queens-ok? row placed 1))
          (place (+ col 1) (cons row placed)))))
  (amb-collect (lambda () (place 0 '()))))

(define (queens-count n) (length (queens n)))
"#;

/// Cooperative threads with preemptive time slicing, built on engines — the
/// direction of the paper's closing line ("we are investigating the use of
/// similar mechanisms in the implementation of concurrent continuations",
/// citing Hieb & Dybvig's PPoPP 1990 paper). Each thread is an engine; the
/// scheduler round-robins quanta; `thread-yield` surrenders the rest of a
/// quantum; channels provide producer/consumer communication.
pub const THREADS: &str = r#"
(define %threads '())
(define %results '())
(define %thread-counter 0)
(define %current-thread #f)

(define (spawn thunk)
  (set! %thread-counter (+ %thread-counter 1))
  (let ((tid %thread-counter))
    (set! %threads (append %threads (list (cons tid (make-engine thunk)))))
    tid))

;; Surrenders the remainder of the current quantum: the timer fires at the
;; very next call, expiring the engine back to the scheduler.
(define (thread-yield) (set-timer 1) (void))

;; Runs every spawned thread to completion with the given quantum; returns
;; an association list of (tid . value) in completion order.
(define (run-threads quantum)
  (define (loop)
    (if (null? %threads)
        (reverse %results)
        (let ((entry (car %threads)))
          (set! %threads (cdr %threads))
          (set! %current-thread (car entry))
          ((cdr entry) quantum
           (lambda (value ticks)
             (set! %results (cons (cons (car entry) value) %results))
             (loop))
           (lambda (eng)
             (set! %threads (append %threads (list (cons (car entry) eng))))
             (loop))))))
  (set! %results '())
  (loop))

(define (thread-result tid results)
  (let ((hit (assv tid results)))
    (if hit (cdr hit) (error "no such thread" tid))))

;; ---- channels (cooperative, unbounded) -------------------------------------

(define (make-channel) (vector '()))

(define (channel-send! ch v)
  (vector-set! ch 0 (append (vector-ref ch 0) (list v))))

(define (channel-empty? ch) (null? (vector-ref ch 0)))

;; Blocks (cooperatively) until a value is available.
(define (channel-recv! ch)
  (if (channel-empty? ch)
      (begin (thread-yield) (channel-recv! ch))
      (let ((v (car (vector-ref ch 0))))
        (vector-set! ch 0 (cdr (vector-ref ch 0)))
        v)))
"#;

/// Every library, in load order.
pub const ALL: &[(&str, &str)] = &[
    ("coroutines", COROUTINES),
    ("generators", GENERATORS),
    ("engines", ENGINES),
    ("amb", AMB),
    ("threads", THREADS),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libraries_parse() {
        for (name, src) in ALL {
            let forms = segstack_scheme::read_all(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!forms.is_empty(), "{name} is empty");
        }
    }
}
