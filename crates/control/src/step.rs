//! Engine stepping hooks: run a program one quantum at a time.
//!
//! `segstack-serve` schedules many requests onto one Scheme engine by
//! slicing each program into engine quanta (Dybvig & Hieb, "Engines from
//! Continuations"): a job is reified as an engine procedure, every
//! [`Control::step_job`] call grants it a bounded number of timer ticks
//! (one tick per procedure call), and an expired quantum hands back a
//! fresh engine for the rest of the computation — a first-class
//! continuation in disguise. Because capture is O(1) on the segmented
//! strategy (and stack overflow is itself an implicit capture),
//! preemption cost does not grow with how deep the request's recursion
//! happens to be when the timer fires.
//!
//! The hooks are deliberately low-level — spawn, step, fuel counters —
//! so schedulers own all policy (quantum size, fairness, deadlines).

use segstack_scheme::{SchemeError, Value};

use crate::Control;

/// A partially evaluated program: the current engine procedure plus fuel
/// accounting. Dropping the job drops the captured continuation.
///
/// A job is tied to the [`Control`] that spawned it; stepping it on a
/// different kit is a programming error (the engine value's code indices
/// only mean something to its own VM).
#[derive(Debug)]
pub struct EngineJob {
    eng: Value,
    quanta: u64,
    ticks_used: u64,
}

impl EngineJob {
    /// Quanta granted so far (completed or expired).
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// Timer ticks consumed so far (one tick is one procedure call; the
    /// final quantum counts only the ticks actually used).
    pub fn ticks_used(&self) -> u64 {
        self.ticks_used
    }
}

/// The outcome of granting one quantum to a job.
#[derive(Clone, Debug)]
pub enum Step {
    /// The program ran to completion with this value.
    Done {
        /// The program's result.
        value: Value,
        /// Unused ticks from the final quantum.
        leftover: u64,
    },
    /// The quantum expired; the job now holds the reified remainder of
    /// the computation and can be stepped again (or dropped to cancel).
    Expired,
}

impl Control {
    /// Compiles `program` (one or more top-level forms) into a suspended
    /// engine without running any of it. Top-level `define`s in the
    /// program become internal definitions scoped to the job.
    ///
    /// # Errors
    ///
    /// Read or compile errors in `program`; nothing is evaluated yet.
    pub fn spawn_job(&mut self, program: &str) -> Result<EngineJob, SchemeError> {
        // Reject unreadable programs eagerly so the error surfaces at
        // submission, not at the first quantum.
        segstack_scheme::read_all(program)?;
        let eng = self.eval(&format!("(make-engine (lambda ()\n{program}\n))"))?;
        Ok(EngineJob { eng, quanta: 0, ticks_used: 0 })
    }

    /// Grants the job `quantum` timer ticks. The job runs until it either
    /// finishes ([`Step::Done`]) or the timer preempts it mid-computation
    /// via continuation capture ([`Step::Expired`]).
    ///
    /// # Errors
    ///
    /// Runtime errors raised by the program. The engine's control stack
    /// is reset by the error path, so the kit stays usable — an erroring
    /// job cannot poison its worker.
    pub fn step_job(&mut self, job: &mut EngineJob, quantum: u64) -> Result<Step, SchemeError> {
        let quantum = quantum.clamp(1, i64::MAX as u64);
        self.engine().define("%step-job-engine", job.eng.clone());
        let v = self.eval(&format!(
            "(%step-job-engine {quantum}
               (lambda (value leftover) (vector 'done value leftover))
               (lambda (rest) (vector 'expired rest)))"
        ));
        job.quanta += 1;
        let v = match v {
            Ok(v) => v,
            Err(e) => {
                // The whole quantum is gone and the job is dead.
                job.ticks_used += quantum;
                return Err(e);
            }
        };
        let items = match &v {
            Value::Vector(items) => items.borrow().clone(),
            other => {
                return Err(SchemeError::runtime(format!(
                    "engine step returned {} instead of a tagged vector",
                    other.type_name()
                )))
            }
        };
        match items.first() {
            Some(tag) if tag.eq_value(&Value::sym("done")) => {
                let value = items[1].clone();
                let leftover = items[2].as_fixnum()?.max(0) as u64;
                job.ticks_used += quantum.saturating_sub(leftover);
                Ok(Step::Done { value, leftover })
            }
            Some(tag) if tag.eq_value(&Value::sym("expired")) => {
                job.eng = items[1].clone();
                job.ticks_used += quantum;
                Ok(Step::Expired)
            }
            _ => Err(SchemeError::runtime("engine step returned a malformed vector")),
        }
    }

    /// Runs a spawned job to completion with a fixed quantum, returning
    /// the value and the number of quanta it took. A convenience for
    /// tests and examples; real schedulers interleave jobs instead.
    ///
    /// # Errors
    ///
    /// See [`Control::step_job`].
    pub fn run_job(
        &mut self,
        job: &mut EngineJob,
        quantum: u64,
    ) -> Result<(Value, u64), SchemeError> {
        loop {
            if let Step::Done { value, .. } = self.step_job(job, quantum)? {
                return Ok((value, job.quanta()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use segstack_baselines::Strategy;

    fn kit() -> Control {
        Control::new(Strategy::Segmented).unwrap()
    }

    #[test]
    fn fast_job_completes_in_one_quantum() {
        let mut k = kit();
        let mut job = k.spawn_job("(+ 40 2)").unwrap();
        match k.step_job(&mut job, 1000).unwrap() {
            Step::Done { value, leftover } => {
                assert_eq!(value.to_string(), "42");
                assert!(leftover > 0);
            }
            Step::Expired => panic!("trivial job expired"),
        }
        assert_eq!(job.quanta(), 1);
        assert!(job.ticks_used() < 1000);
    }

    #[test]
    fn long_job_is_preempted_across_toplevel_steps() {
        let mut k = kit();
        let mut job =
            k.spawn_job("(let loop ((i 5000)) (if (= i 0) 'finished (loop (- i 1))))").unwrap();
        let mut expirations = 0;
        let value = loop {
            match k.step_job(&mut job, 100).unwrap() {
                Step::Done { value, .. } => break value,
                Step::Expired => expirations += 1,
            }
        };
        assert_eq!(value.to_string(), "finished");
        assert!(expirations > 5, "only {expirations} expirations for 5000 calls at quantum 100");
        assert_eq!(job.quanta(), expirations + 1);
    }

    #[test]
    fn jobs_with_defines_and_continuations_run() {
        let mut k = kit();
        let mut job = k
            .spawn_job(
                "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
                 (+ (fib 12) (call/cc (lambda (c) (c 1))))",
            )
            .unwrap();
        let (value, _) = k.run_job(&mut job, 500).unwrap();
        assert_eq!(value.to_string(), "145");
    }

    #[test]
    fn interleaved_jobs_do_not_interfere() {
        let mut k = kit();
        let mut a = k
            .spawn_job("(let loop ((i 300) (acc 0)) (if (= i 0) acc (loop (- i 1) (+ acc 2))))")
            .unwrap();
        let mut b = k
            .spawn_job("(let loop ((i 500) (acc 1)) (if (= i 0) acc (loop (- i 1) acc)))")
            .unwrap();
        let mut results = Vec::new();
        let mut pending: Vec<&mut EngineJob> = vec![&mut a, &mut b];
        // Round-robin the two jobs on the same kit until both finish.
        while !pending.is_empty() {
            let mut still = Vec::new();
            for job in pending {
                match k.step_job(job, 60).unwrap() {
                    Step::Done { value, .. } => results.push(value.to_string()),
                    Step::Expired => still.push(job),
                }
            }
            pending = still;
        }
        results.sort();
        assert_eq!(results, ["1", "600"]);
    }

    #[test]
    fn erroring_job_leaves_the_kit_usable() {
        let mut k = kit();
        let mut bad = k.spawn_job("(car 42)").unwrap();
        assert!(k.step_job(&mut bad, 100).is_err());
        // The worker survives: a fresh job still runs.
        let mut good = k.spawn_job("(* 6 7)").unwrap();
        let (value, _) = k.run_job(&mut good, 100).unwrap();
        assert_eq!(value.to_string(), "42");
    }

    #[test]
    fn divergent_job_expires_forever_without_poisoning() {
        let mut k = kit();
        let mut spin = k.spawn_job("(let loop () (loop))").unwrap();
        for _ in 0..10 {
            match k.step_job(&mut spin, 50).unwrap() {
                Step::Expired => {}
                Step::Done { value, .. } => panic!("divergent job finished with {value}"),
            }
        }
        assert_eq!(spin.ticks_used(), 500);
        drop(spin);
        let mut after = k.spawn_job("'alive").unwrap();
        let (value, _) = k.run_job(&mut after, 100).unwrap();
        assert_eq!(value.to_string(), "alive");
    }

    #[test]
    fn unreadable_program_fails_at_spawn() {
        let mut k = kit();
        assert!(k.spawn_job("(unbalanced").is_err());
    }

    #[test]
    fn stepping_works_on_every_strategy() {
        for s in Strategy::ALL {
            let mut k = Control::new(s).unwrap();
            let mut job =
                k.spawn_job("(let loop ((i 1000)) (if (= i 0) 'ok (loop (- i 1))))").unwrap();
            let (value, quanta) = k.run_job(&mut job, 100).unwrap();
            assert_eq!(value.to_string(), "ok", "{s}");
            assert!(quanta > 1, "{s}: never preempted");
        }
    }
}
