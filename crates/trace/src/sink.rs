//! The sink abstraction instrumented code writes into.
//!
//! Hot paths are generic over [`TraceSink`] so the disabled case
//! ([`NoopSink`]) monomorphizes to nothing at all — no branch, no load,
//! no store. The enabled case is a per-owner [`RingSink`](crate::RingSink)
//! behind an `Rc<RefCell<..>>` so one worker's engines can share a ring
//! without locks.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::EventKind;
use crate::hist::HistSummary;
use crate::ring::RingSink;

/// A destination for trace events.
///
/// Implementations must be cheap: `emit` sits on the segmented stack's
/// call/return/capture paths. `enabled` lets call sites skip computing
/// expensive payloads when tracing is off.
pub trait TraceSink {
    /// Whether events are actually recorded.
    fn enabled(&self) -> bool;

    /// Records one event.
    fn emit(&mut self, kind: EventKind, a: u64, b: u64);

    /// Histogram readouts per event kind seen so far; empty for sinks
    /// that keep no aggregates (the noop sink).
    fn stats(&self) -> Vec<(EventKind, HistSummary)> {
        Vec::new()
    }
}

/// The zero-cost disabled sink: a zero-sized type whose `emit`
/// monomorphizes to an empty body.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn emit(&mut self, _kind: EventKind, _a: u64, _b: u64) {}
}

impl TraceSink for RingSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn emit(&mut self, kind: EventKind, a: u64, b: u64) {
        self.record_now(kind, a, b);
    }

    fn stats(&self) -> Vec<(EventKind, HistSummary)> {
        self.summaries()
    }
}

/// Shared-ring form: lets a worker thread hand the same ring to several
/// engines (and keep a handle for itself) without locks.
impl TraceSink for Rc<RefCell<RingSink>> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn emit(&mut self, kind: EventKind, a: u64, b: u64) {
        self.borrow_mut().record_now(kind, a, b);
    }

    fn stats(&self) -> Vec<(EventKind, HistSummary)> {
        self.borrow().summaries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopSink>(), 0);
        assert!(!NoopSink.enabled());
        let mut s = NoopSink;
        s.emit(EventKind::Capture, 1, 2); // must be a no-op
    }

    #[test]
    fn shared_ring_records_through_the_handle() {
        let ring = Rc::new(RefCell::new(RingSink::new()));
        let mut handle = ring.clone();
        assert!(handle.enabled());
        handle.emit(EventKind::Capture, 4, 0);
        handle.emit(EventKind::Relink, 9, 1);
        assert_eq!(ring.borrow().len(), 2);
        assert_eq!(ring.borrow().kind_count(EventKind::Capture), 1);
    }
}
