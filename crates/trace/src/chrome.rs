//! Chrome trace-event export (Perfetto / `chrome://tracing`) and the
//! text flame summary.
//!
//! The exporter turns drained [`OwnerTrace`]s into one JSON document in
//! the Trace Event Format: each owner becomes a named thread track
//! (`"M"` metadata + `pid`/`tid`), span-paired events (`*Begin`/`*End`)
//! become complete `"X"` events with durations, core one-off events
//! become thread-scoped instants (`"i"`), the job lifecycle becomes
//! async `"b"`/`"n"`/`"e"` spans keyed by job id, and queue-depth
//! samples become `"C"` counter events.
//!
//! [`validate_chrome_trace`] is the matching checker: it re-parses the
//! document with the in-tree JSON reader and verifies shape and
//! per-track span nesting — the well-bracketed control flow the trace
//! claims must actually hold in the file.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};
use crate::json::{self, JsonValue};
use crate::ring::OwnerTrace;

/// All traces share one synthetic process.
const PID: u64 = 1;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Microsecond timestamp with nanosecond precision, as Chrome expects.
fn us(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Which span a `*End` kind closes, if any.
fn span_begin_of(kind: EventKind) -> Option<EventKind> {
    match kind {
        EventKind::ReinstateEnd => Some(EventKind::ReinstateBegin),
        EventKind::OverflowEnd => Some(EventKind::OverflowBegin),
        EventKind::QuantumEnd => Some(EventKind::QuantumBegin),
        _ => None,
    }
}

fn is_span_begin(kind: EventKind) -> bool {
    matches!(kind, EventKind::ReinstateBegin | EventKind::OverflowBegin | EventKind::QuantumBegin)
}

fn span_name(begin: EventKind) -> &'static str {
    match begin {
        EventKind::ReinstateBegin => "reinstate",
        EventKind::OverflowBegin => "overflow",
        EventKind::QuantumBegin => "quantum",
        _ => unreachable!("not a span begin"),
    }
}

fn span_args(begin: &Event, end: &Event) -> String {
    match begin.kind {
        EventKind::ReinstateBegin => format!(
            "{{\"record_slots\":{},\"one_shot\":{},\"slots_copied\":{},\"relinked\":{}}}",
            begin.a, begin.b, end.a, end.b
        ),
        EventKind::OverflowBegin => format!(
            "{{\"sealed_slots\":{},\"staged_args\":{},\"slots_copied\":{},\"segment_capacity\":{}}}",
            begin.a, begin.b, end.a, end.b
        ),
        EventKind::QuantumBegin => format!(
            "{{\"job\":{},\"worker\":{},\"busy_nanos\":{}}}",
            begin.a, begin.b, end.b
        ),
        _ => unreachable!("not a span begin"),
    }
}

/// Instant-event name and args, if this kind is a thread-scoped instant.
fn instant(ev: &Event) -> Option<(&'static str, String)> {
    match ev.kind {
        EventKind::Capture => {
            Some(("capture", format!("{{\"sealed_slots\":{},\"tail_rule\":{}}}", ev.a, ev.b)))
        }
        EventKind::Relink => {
            Some(("relink", format!("{{\"slots_avoided\":{},\"same_buffer\":{}}}", ev.a, ev.b)))
        }
        EventKind::Underflow => Some(("underflow", format!("{{\"record_slots\":{}}}", ev.a))),
        EventKind::SegmentAlloc => {
            Some(("segment_alloc", format!("{{\"capacity_slots\":{},\"reused\":{}}}", ev.a, ev.b)))
        }
        EventKind::Split => Some(("split", format!("{{\"deferred_slots\":{}}}", ev.a))),
        EventKind::JobAdmit => {
            Some(("job_admit", format!("{{\"job\":{},\"strategy\":{}}}", ev.a, ev.b)))
        }
        _ => None,
    }
}

/// Job-outcome name for the async-span end, if this kind ends a job.
fn job_outcome(kind: EventKind) -> Option<&'static str> {
    match kind {
        EventKind::JobComplete => Some("complete"),
        EventKind::JobError => Some("error"),
        EventKind::JobCancelled => Some("cancelled"),
        EventKind::JobDeadline => Some("deadline"),
        EventKind::JobFuel => Some("fuel"),
        _ => None,
    }
}

struct Pending {
    ev: Event,
    child_nanos: u64,
}

/// Renders owner traces as a Chrome trace-event JSON document.
///
/// The output is a single object `{"traceEvents":[...]}` loadable in
/// Perfetto or `chrome://tracing`. Events whose span partner was lost to
/// ring wrap are dropped rather than exported unbalanced.
pub fn chrome_trace_json(traces: &[OwnerTrace]) -> String {
    let mut out: Vec<String> = Vec::new();
    for trace in traces {
        let tid = trace.tid;
        out.push(format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(&trace.owner)
        ));
        let mut stack: Vec<Pending> = Vec::new();
        for ev in &trace.events {
            if is_span_begin(ev.kind) {
                stack.push(Pending { ev: *ev, child_nanos: 0 });
                continue;
            }
            if let Some(begin_kind) = span_begin_of(ev.kind) {
                // Pop to the matching begin; intermediates lost their
                // ends (ring wrap) and are dropped.
                let Some(depth) = stack.iter().rposition(|p| p.ev.kind == begin_kind) else {
                    continue;
                };
                stack.truncate(depth + 1);
                let open = stack.pop().expect("depth points into the stack");
                let dur = ev.nanos.saturating_sub(open.ev.nanos);
                if let Some(parent) = stack.last_mut() {
                    parent.child_nanos = parent.child_nanos.saturating_add(dur);
                }
                out.push(format!(
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{}\",\
                     \"cat\":\"segstack\",\"ts\":{},\"dur\":{},\"args\":{}}}",
                    span_name(begin_kind),
                    us(open.ev.nanos),
                    us(dur),
                    span_args(&open.ev, ev)
                ));
                continue;
            }
            if let Some((name, args)) = instant(ev) {
                out.push(format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{name}\",\
                     \"cat\":\"segstack\",\"s\":\"t\",\"ts\":{},\"args\":{args}}}",
                    us(ev.nanos)
                ));
            }
            match ev.kind {
                EventKind::JobEnqueue => out.push(format!(
                    "{{\"ph\":\"b\",\"pid\":{PID},\"tid\":{tid},\"name\":\"job\",\
                     \"cat\":\"job\",\"id\":{},\"ts\":{},\"args\":{{}}}}",
                    ev.a,
                    us(ev.nanos)
                )),
                EventKind::QueueDepth => out.push(format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{tid},\"name\":\"queue_depth\",\
                     \"ts\":{},\"args\":{{\"queued\":{}}}}}",
                    us(ev.nanos),
                    ev.a
                )),
                k => {
                    if let Some(outcome) = job_outcome(k) {
                        out.push(format!(
                            "{{\"ph\":\"e\",\"pid\":{PID},\"tid\":{tid},\"name\":\"job\",\
                             \"cat\":\"job\",\"id\":{},\"ts\":{},\
                             \"args\":{{\"outcome\":\"{outcome}\",\"latency_nanos\":{}}}}}",
                            ev.a,
                            us(ev.nanos),
                            ev.b
                        ));
                    }
                }
            }
        }
    }
    let mut doc = String::from("{\"traceEvents\":[");
    doc.push_str(&out.join(","));
    doc.push_str("],\"displayTimeUnit\":\"ms\"}");
    doc
}

/// Shape counts from a validated trace document.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Thread-scoped instants (`"i"`).
    pub instants: usize,
    /// Async begin/end pairs (`"b"`/`"e"`) that matched up.
    pub async_spans: usize,
    /// Named thread tracks (`"M"` thread_name records).
    pub tracks: usize,
}

/// Validates an exported document: parses with the in-tree JSON reader,
/// checks required members per phase, verifies `"X"` spans are properly
/// nested per `(pid, tid)` track, and that every async `"e"` closes a
/// previously opened `"b"` of the same id.
pub fn validate_chrome_trace(doc: &str) -> Result<ChromeStats, String> {
    let parsed = json::parse(doc).map_err(|e| e.to_string())?;
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeStats { events: events.len(), ..ChromeStats::default() };
    // (pid, tid) -> [(ts, dur)] for X-nesting; (cat, id) -> open b count.
    let mut spans: BTreeMap<(u64, u64), Vec<(f64, f64)>> = BTreeMap::new();
    let mut open_async: BTreeMap<(String, u64), u64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let fail = |what: &str| Err(format!("traceEvents[{i}]: {what}"));
        let ph = match ev.get("ph").and_then(JsonValue::as_str) {
            Some(p) => p,
            None => return fail("missing ph"),
        };
        if ev.get("name").and_then(JsonValue::as_str).is_none() {
            return fail("missing name");
        }
        let pid = ev.get("pid").and_then(JsonValue::as_u64);
        let tid = ev.get("tid").and_then(JsonValue::as_u64);
        if pid.is_none() || tid.is_none() {
            return fail("missing pid/tid");
        }
        if ph == "M" {
            stats.tracks += 1;
            continue;
        }
        let ts = match ev.get("ts").and_then(JsonValue::as_f64) {
            Some(t) if t >= 0.0 => t,
            _ => return fail("missing or negative ts"),
        };
        match ph {
            "X" => {
                let dur = match ev.get("dur").and_then(JsonValue::as_f64) {
                    Some(d) if d >= 0.0 => d,
                    _ => return fail("X event missing dur"),
                };
                spans.entry((pid.unwrap(), tid.unwrap())).or_default().push((ts, dur));
                stats.spans += 1;
            }
            "i" => stats.instants += 1,
            "b" => {
                let id = ev.get("id").and_then(JsonValue::as_u64).ok_or("b without id")?;
                let cat = ev.get("cat").and_then(JsonValue::as_str).unwrap_or_default().to_string();
                *open_async.entry((cat, id)).or_insert(0) += 1;
            }
            "e" => {
                let id = ev.get("id").and_then(JsonValue::as_u64).ok_or("e without id")?;
                let cat = ev.get("cat").and_then(JsonValue::as_str).unwrap_or_default().to_string();
                match open_async.get_mut(&(cat, id)) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        stats.async_spans += 1;
                    }
                    _ => return fail("async end without matching begin"),
                }
            }
            "n" | "C" => {}
            other => return Err(format!("traceEvents[{i}]: unknown phase {other:?}")),
        }
    }
    // Proper nesting per track: sweeping spans by (ts, widest first),
    // every span must lie inside the innermost still-open span.
    const EPS: f64 = 1e-6;
    for ((pid, tid), mut list) in spans {
        list.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap().then(y.1.partial_cmp(&x.1).unwrap()));
        let mut open: Vec<f64> = Vec::new(); // stack of end timestamps
        for (ts, dur) in list {
            while matches!(open.last(), Some(&end) if end <= ts + EPS) {
                open.pop();
            }
            if let Some(&end) = open.last() {
                if ts + dur > end + EPS {
                    return Err(format!(
                        "track pid={pid} tid={tid}: span [{ts}, {}] overlaps \
                         enclosing span ending at {end}",
                        ts + dur
                    ));
                }
            }
            open.push(ts + dur);
        }
    }
    Ok(stats)
}

/// A self-contained text flame summary in folded-stack format: one line
/// per unique span path with its *self* time in nanoseconds, followed by
/// per-owner instant counts. Paths read `owner;outer;inner`.
pub fn flame_summary(traces: &[OwnerTrace]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut instants: BTreeMap<(String, &'static str), u64> = BTreeMap::new();
    for trace in traces {
        let mut stack: Vec<Pending> = Vec::new();
        for ev in &trace.events {
            if is_span_begin(ev.kind) {
                stack.push(Pending { ev: *ev, child_nanos: 0 });
                continue;
            }
            if let Some(begin_kind) = span_begin_of(ev.kind) {
                let Some(depth) = stack.iter().rposition(|p| p.ev.kind == begin_kind) else {
                    continue;
                };
                stack.truncate(depth + 1);
                let open = stack.pop().expect("depth points into the stack");
                let dur = ev.nanos.saturating_sub(open.ev.nanos);
                if let Some(parent) = stack.last_mut() {
                    parent.child_nanos = parent.child_nanos.saturating_add(dur);
                }
                let mut path = trace.owner.clone();
                for p in &stack {
                    path.push(';');
                    path.push_str(span_name(p.ev.kind));
                }
                path.push(';');
                path.push_str(span_name(begin_kind));
                *folded.entry(path).or_insert(0) += dur.saturating_sub(open.child_nanos);
                continue;
            }
            if let Some((name, _)) = instant(ev) {
                *instants.entry((trace.owner.clone(), name)).or_insert(0) += 1;
            }
        }
    }
    let mut out = String::from("# flame summary — self time per span path, nanoseconds\n");
    for (path, nanos) in &folded {
        out.push_str(&format!("{path} {nanos}\n"));
    }
    out.push_str("# instants — count per owner\n");
    for ((owner, name), count) in &instants {
        out.push_str(&format!("{owner} {name} {count}\n"));
    }
    for trace in traces {
        if trace.dropped > 0 {
            out.push_str(&format!(
                "# note: {} dropped {} events to ring wrap\n",
                trace.owner, trace.dropped
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, nanos: u64, kind: EventKind, a: u64, b: u64) -> Event {
        Event { seq, nanos, kind, a, b }
    }

    fn sample_trace() -> Vec<OwnerTrace> {
        // worker-0: a quantum containing a reinstate (with a relink) and
        // an overflow; a job async span around it; queue gauge samples.
        let events = vec![
            ev(0, 100, EventKind::JobEnqueue, 7, 0),
            ev(1, 1_000, EventKind::JobAdmit, 7, 0),
            ev(2, 1_050, EventKind::QueueDepth, 3, 0),
            ev(3, 1_100, EventKind::QuantumBegin, 7, 0),
            ev(4, 1_200, EventKind::Capture, 12, 0),
            ev(5, 1_300, EventKind::ReinstateBegin, 12, 1),
            ev(6, 1_350, EventKind::Relink, 12, 1),
            ev(7, 1_400, EventKind::ReinstateEnd, 0, 1),
            ev(8, 1_500, EventKind::OverflowBegin, 40, 3),
            ev(9, 1_550, EventKind::SegmentAlloc, 512, 0),
            ev(10, 1_600, EventKind::OverflowEnd, 3, 512),
            ev(11, 2_000, EventKind::QuantumEnd, 7, 900),
            ev(12, 2_100, EventKind::JobComplete, 7, 2_000),
        ];
        vec![OwnerTrace { owner: "worker-0".into(), tid: 1, events, dropped: 0 }]
    }

    #[test]
    fn export_validates_and_counts_shapes() {
        let doc = chrome_trace_json(&sample_trace());
        let stats = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(stats.tracks, 1);
        assert_eq!(stats.spans, 3); // quantum, reinstate, overflow
        assert_eq!(stats.async_spans, 1); // the job
        assert!(stats.instants >= 4); // capture, relink, segment_alloc, job_admit
        assert!(doc.contains("\"slots_avoided\":12"));
        assert!(doc.contains("\"thread_name\""));
    }

    #[test]
    fn validator_rejects_overlapping_spans() {
        let doc = r#"{"traceEvents":[
            {"ph":"X","pid":1,"tid":1,"name":"a","ts":0,"dur":10},
            {"ph":"X","pid":1,"tid":1,"name":"b","ts":5,"dur":10}
        ]}"#;
        let err = validate_chrome_trace(doc).unwrap_err();
        assert!(err.contains("overlaps"), "got: {err}");
    }

    #[test]
    fn validator_rejects_unbalanced_async() {
        let doc = r#"{"traceEvents":[
            {"ph":"e","pid":1,"tid":1,"name":"job","cat":"job","id":3,"ts":1}
        ]}"#;
        assert!(validate_chrome_trace(doc).is_err());
    }

    #[test]
    fn unmatched_span_ends_are_dropped_not_exported() {
        let events = vec![
            ev(0, 10, EventKind::ReinstateEnd, 0, 0), // begin lost to ring wrap
            ev(1, 20, EventKind::QuantumBegin, 1, 0),
            ev(2, 30, EventKind::QuantumEnd, 1, 5),
        ];
        let traces = vec![OwnerTrace { owner: "w".into(), tid: 1, events, dropped: 1 }];
        let doc = chrome_trace_json(&traces);
        let stats = validate_chrome_trace(&doc).expect("valid");
        assert_eq!(stats.spans, 1);
    }

    #[test]
    fn flame_summary_attributes_self_time_by_path() {
        let s = flame_summary(&sample_trace());
        // quantum self = 900 total - 100 (reinstate) - 100 (overflow).
        assert!(s.contains("worker-0;quantum 700\n"), "summary:\n{s}");
        assert!(s.contains("worker-0;quantum;reinstate 100\n"), "summary:\n{s}");
        assert!(s.contains("worker-0;quantum;overflow 100\n"), "summary:\n{s}");
        assert!(s.contains("worker-0 capture 1\n"), "summary:\n{s}");
    }
}
