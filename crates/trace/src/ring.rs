//! The per-owner ring-buffer sink.
//!
//! One [`RingSink`] belongs to exactly one owner (a worker thread, a
//! benchmark run, an engine) and is never shared across threads — that is
//! what makes it lock-free: the owner writes, the owner reads. Cross-owner
//! timelines are aligned by sharing an *epoch* `Instant` at construction
//! and merging the drained [`OwnerTrace`]s afterwards.
//!
//! The ring keeps the most recent `capacity` events (drop-oldest) but
//! counts and histograms every event it ever saw, so aggregate readouts
//! survive ring wrap.

use std::collections::VecDeque;
use std::time::Instant;

use crate::event::{Event, EventKind, KIND_COUNT};
use crate::hist::{HistSummary, Histogram};

/// Default ring capacity: enough for a few seconds of serve traffic or a
/// full small benchmark, ~3 MiB.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A bounded, drop-oldest event ring with always-on aggregate counters
/// and per-kind histograms of the first payload word.
#[derive(Clone, Debug)]
pub struct RingSink {
    epoch: Instant,
    capacity: usize,
    events: VecDeque<Event>,
    seq: u64,
    dropped: u64,
    kind_counts: [u64; KIND_COUNT],
    hists: Vec<Histogram>,
}

impl Default for RingSink {
    fn default() -> Self {
        RingSink::new()
    }
}

impl RingSink {
    /// A ring with the default capacity, epoch = now.
    pub fn new() -> Self {
        RingSink::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A ring keeping at most `capacity` events, epoch = now.
    pub fn with_capacity(capacity: usize) -> Self {
        RingSink::with_epoch_and_capacity(Instant::now(), capacity)
    }

    /// A ring whose timestamps are relative to a shared `epoch` — use
    /// one epoch across all owners whose traces will be merged.
    pub fn with_epoch(epoch: Instant) -> Self {
        RingSink::with_epoch_and_capacity(epoch, DEFAULT_RING_CAPACITY)
    }

    /// Shared epoch and explicit capacity.
    pub fn with_epoch_and_capacity(epoch: Instant, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink {
            epoch,
            capacity,
            events: VecDeque::with_capacity(capacity.min(DEFAULT_RING_CAPACITY)),
            seq: 0,
            dropped: 0,
            kind_counts: [0; KIND_COUNT],
            hists: (0..KIND_COUNT).map(|_| Histogram::new()).collect(),
        }
    }

    /// The epoch timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Nanoseconds elapsed since the epoch, saturating at `u64::MAX`.
    #[inline]
    pub fn now_nanos(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Records an event stamped now.
    #[inline]
    pub fn record_now(&mut self, kind: EventKind, a: u64, b: u64) {
        self.record_at(self.now_nanos(), kind, a, b)
    }

    /// Records an event with an explicit timestamp — used to backdate
    /// (e.g. a job's enqueue instant observed at admission time).
    pub fn record_at(&mut self, nanos: u64, kind: EventKind, a: u64, b: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.kind_counts[kind.index()] += 1;
        self.hists[kind.index()].record(a);
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(Event { seq, nanos, kind, a, b });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by ring wrap (still counted in aggregates).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.seq
    }

    /// How many events of `kind` were ever recorded.
    pub fn kind_count(&self, kind: EventKind) -> u64 {
        self.kind_counts[kind.index()]
    }

    /// Histogram of the first payload word for `kind`.
    pub fn histogram(&self, kind: EventKind) -> &Histogram {
        &self.hists[kind.index()]
    }

    /// Summaries for every kind that has been seen at least once, in
    /// kind order.
    pub fn summaries(&self) -> Vec<(EventKind, HistSummary)> {
        EventKind::ALL
            .iter()
            .filter(|k| self.kind_counts[k.index()] > 0)
            .map(|k| (*k, self.hists[k.index()].summary()))
            .collect()
    }

    /// Drains the retained events into an [`OwnerTrace`] for export,
    /// leaving the aggregate counters and histograms in place.
    pub fn take_trace(&mut self, owner: impl Into<String>, tid: u64) -> OwnerTrace {
        OwnerTrace {
            owner: owner.into(),
            tid,
            events: self.events.drain(..).collect(),
            dropped: self.dropped,
        }
    }

    /// Clears events and aggregates; keeps epoch and capacity.
    pub fn reset(&mut self) {
        self.events.clear();
        self.seq = 0;
        self.dropped = 0;
        self.kind_counts = [0; KIND_COUNT];
        for h in &mut self.hists {
            h.reset();
        }
    }
}

/// One owner's drained timeline, ready for export: the owner name becomes
/// the Perfetto track (thread) name.
#[derive(Clone, Debug)]
pub struct OwnerTrace {
    /// Human-readable owner name ("worker-0", "bench", ...).
    pub owner: String,
    /// Track id; unique per owner within one export.
    pub tid: u64,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring wrap before the drain.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotonic_and_timestamps_nondecreasing() {
        let mut r = RingSink::new();
        for i in 0..100 {
            r.record_now(EventKind::Capture, i, 0);
        }
        let evs: Vec<_> = r.events().copied().collect();
        for w in evs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].nanos >= w[0].nanos);
        }
        assert_eq!(r.total_recorded(), 100);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_drops_oldest_but_keeps_aggregates() {
        let mut r = RingSink::with_capacity(4);
        for i in 0..10u64 {
            r.record_now(EventKind::Split, i, 0);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(r.kind_count(EventKind::Split), 10);
        assert_eq!(r.histogram(EventKind::Split).count(), 10);
        // The retained window is the most recent events.
        assert_eq!(r.events().next().unwrap().a, 6);
    }

    #[test]
    fn backdating_and_shared_epoch() {
        let epoch = Instant::now();
        let mut a = RingSink::with_epoch(epoch);
        let mut b = RingSink::with_epoch(epoch);
        a.record_at(5, EventKind::JobEnqueue, 1, 0);
        b.record_at(7, EventKind::JobEnqueue, 2, 0);
        assert_eq!(a.events().next().unwrap().nanos, 5);
        assert_eq!(b.events().next().unwrap().nanos, 7);
        assert_eq!(a.epoch(), b.epoch());
    }

    #[test]
    fn take_trace_drains_events_only() {
        let mut r = RingSink::new();
        r.record_now(EventKind::Capture, 3, 0);
        let t = r.take_trace("w0", 1);
        assert_eq!(t.owner, "w0");
        assert_eq!(t.events.len(), 1);
        assert!(r.is_empty());
        assert_eq!(r.kind_count(EventKind::Capture), 1);
    }

    #[test]
    fn summaries_cover_only_seen_kinds() {
        let mut r = RingSink::new();
        r.record_now(EventKind::Capture, 8, 0);
        r.record_now(EventKind::Capture, 16, 0);
        let s = r.summaries();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, EventKind::Capture);
        assert_eq!(s[0].1.count, 2);
        assert_eq!(s[0].1.max, 16);
    }
}
