//! # segstack-trace
//!
//! Always-on observability for the segmented-stack workspace: compact
//! binary trace events, lock-free-per-owner ring sinks, log2-bucketed
//! histograms, and a Chrome trace-event (Perfetto) exporter.
//!
//! The paper's claims — O(1) capture, bounded copy on reinstatement, the
//! Figure 8 two-frame reserve — are statements about *per-event* cost,
//! but aggregate counters (`segstack_core::Metrics`) only show totals.
//! This crate records the individual events so distributions (p50/p99
//! capture size, reinstate copy cost) and timelines (per-worker quantum
//! schedules, per-job latency) become observable.
//!
//! ## Design
//!
//! * [`TraceSink`] is the hook instrumented code writes into. Hot paths
//!   are generic over it, so the disabled [`NoopSink`] — a zero-sized
//!   type with an empty `emit` — compiles to nothing.
//! * [`RingSink`] is the enabled sink: owned by exactly one thread
//!   (lock-free by ownership), bounded (drop-oldest), with always-on
//!   per-kind counters and [`Histogram`]s that survive ring wrap.
//! * [`OwnerTrace`]s drained from per-owner rings merge into one
//!   [`chrome_trace_json`] document; [`validate_chrome_trace`] checks it
//!   and [`flame_summary`] renders a folded-stack text view.
//! * [`json`] is a tiny JSON reader used by the validator and by tests
//!   that check the workspace's hand-rolled JSON emitters.
//!
//! This crate is dependency-free by design: the build environment is
//! offline, and `segstack-core` sits below every other crate.
//!
//! ## Example
//!
//! ```
//! use segstack_trace::{EventKind, RingSink, TraceSink};
//!
//! let mut ring = RingSink::new();
//! ring.emit(EventKind::Capture, 24, 0);
//! ring.emit(EventKind::Capture, 96, 0);
//! assert_eq!(ring.kind_count(EventKind::Capture), 2);
//! assert_eq!(ring.histogram(EventKind::Capture).summary().max, 96);
//!
//! let trace = ring.take_trace("bench", 1);
//! let doc = segstack_trace::chrome_trace_json(&[trace]);
//! segstack_trace::validate_chrome_trace(&doc).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod hist;
pub mod json;
mod ring;
mod sink;

pub use chrome::{chrome_trace_json, flame_summary, validate_chrome_trace, ChromeStats};
pub use event::{Event, EventKind, KIND_COUNT};
pub use hist::{percentile, HistSummary, Histogram, HIST_BUCKETS};
pub use ring::{OwnerTrace, RingSink, DEFAULT_RING_CAPACITY};
pub use sink::{NoopSink, TraceSink};
