//! The compact binary event record.
//!
//! An [`Event`] is four machine words plus a kind byte: a monotonic
//! per-owner sequence number, a nanosecond timestamp relative to the
//! owner's epoch, and two payload words whose meaning depends on the
//! [`EventKind`]. Events never allocate; a ring sink stores them inline.

/// What happened. Core kinds mirror the paper's cost model (capture,
/// bounded-copy reinstatement, overflow/underflow as implicit capture and
/// reinstatement); serve kinds describe the job lifecycle
/// (enqueue → admit → quanta → outcome) and scheduler gauges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A continuation was captured. `a` = slots sealed into the new
    /// record, `b` = 1 if the §4 tail rule reused the existing link
    /// (no new record), 0 otherwise.
    Capture = 0,
    /// A reinstatement started. `a` = target record size in slots,
    /// `b` = 1 if the caller holds a uniquely-owned one-shot handle.
    ReinstateBegin = 1,
    /// The matching end of [`EventKind::ReinstateBegin`]. `a` = slots
    /// copied, `b` = 1 if served by the relink fast path.
    ReinstateEnd = 2,
    /// A reinstatement adopted the target's segment chain without
    /// copying. `a` = slots the copy path would have moved,
    /// `b` = 1 if the target lived in the current buffer.
    Relink = 3,
    /// A stack overflow (implicit capture, §5) started.
    /// `a` = slots sealed below the call, `b` = staged argument slots.
    OverflowBegin = 4,
    /// The matching end of [`EventKind::OverflowBegin`]. `a` = slots
    /// copied (the staged arguments only), `b` = new segment capacity.
    OverflowEnd = 5,
    /// A stack underflow (implicit reinstatement, §4–5). `a` = size of
    /// the record being resumed, `b` = 0.
    Underflow = 6,
    /// A stack segment was obtained. `a` = capacity in slots,
    /// `b` = 1 if reused from the pool, 0 if freshly allocated.
    SegmentAlloc = 7,
    /// A saved segment was split before reinstatement (Figure 7).
    /// `a` = slots left in the deferred remainder, `b` = 0.
    Split = 8,
    /// A job entered the queue. `a` = job id, `b` = 0. Timestamp is the
    /// submission instant (backdated by the admitting worker).
    JobEnqueue = 9,
    /// A worker admitted a job. `a` = job id, `b` = strategy index.
    JobAdmit = 10,
    /// A scheduling quantum started. `a` = job id, `b` = worker index.
    QuantumBegin = 11,
    /// The matching end of [`EventKind::QuantumBegin`]. `a` = job id,
    /// `b` = busy nanoseconds of this quantum.
    QuantumEnd = 12,
    /// A job produced its value. `a` = job id, `b` = latency nanos.
    JobComplete = 13,
    /// A job failed with an evaluation error. `a` = job id,
    /// `b` = latency nanos.
    JobError = 14,
    /// A job was cancelled. `a` = job id, `b` = latency nanos.
    JobCancelled = 15,
    /// A job overran its wall-clock deadline. `a` = job id,
    /// `b` = latency nanos.
    JobDeadline = 16,
    /// A job exhausted its tick budget. `a` = job id, `b` = latency
    /// nanos.
    JobFuel = 17,
    /// Queue-depth gauge, sampled on admit/drain. `a` = jobs queued,
    /// `b` = 0.
    QueueDepth = 18,
}

/// Number of distinct event kinds (array-index upper bound).
pub const KIND_COUNT: usize = 19;

impl EventKind {
    /// Every kind, in discriminant order.
    pub const ALL: [EventKind; KIND_COUNT] = [
        EventKind::Capture,
        EventKind::ReinstateBegin,
        EventKind::ReinstateEnd,
        EventKind::Relink,
        EventKind::OverflowBegin,
        EventKind::OverflowEnd,
        EventKind::Underflow,
        EventKind::SegmentAlloc,
        EventKind::Split,
        EventKind::JobEnqueue,
        EventKind::JobAdmit,
        EventKind::QuantumBegin,
        EventKind::QuantumEnd,
        EventKind::JobComplete,
        EventKind::JobError,
        EventKind::JobCancelled,
        EventKind::JobDeadline,
        EventKind::JobFuel,
        EventKind::QueueDepth,
    ];

    /// Stable lowercase name used in exports and `(trace-stats)` alists.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Capture => "capture",
            EventKind::ReinstateBegin => "reinstate_begin",
            EventKind::ReinstateEnd => "reinstate_end",
            EventKind::Relink => "relink",
            EventKind::OverflowBegin => "overflow_begin",
            EventKind::OverflowEnd => "overflow_end",
            EventKind::Underflow => "underflow",
            EventKind::SegmentAlloc => "segment_alloc",
            EventKind::Split => "split",
            EventKind::JobEnqueue => "job_enqueue",
            EventKind::JobAdmit => "job_admit",
            EventKind::QuantumBegin => "quantum_begin",
            EventKind::QuantumEnd => "quantum_end",
            EventKind::JobComplete => "job_complete",
            EventKind::JobError => "job_error",
            EventKind::JobCancelled => "job_cancelled",
            EventKind::JobDeadline => "job_deadline",
            EventKind::JobFuel => "job_fuel",
            EventKind::QueueDepth => "queue_depth",
        }
    }

    /// Inverse of the discriminant, for decoding stored records.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        EventKind::ALL.get(v as usize).copied()
    }

    /// Index into per-kind arrays.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One trace event: sequence number, relative timestamp, kind, and two
/// payload words (see [`EventKind`] for per-kind meanings).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic per-owner sequence number (dense unless the ring
    /// dropped events).
    pub seq: u64,
    /// Nanoseconds since the owning sink's epoch.
    pub nanos: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_match_all_order() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(EventKind::from_u8(i as u8), Some(*k));
        }
        assert_eq!(EventKind::from_u8(KIND_COUNT as u8), None);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(names.iter().all(|n| !n.is_empty()));
    }
}
