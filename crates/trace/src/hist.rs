//! Log2-bucketed histograms with percentile readout.
//!
//! Buckets are powers of two: bucket `k` holds values whose bit length is
//! `k` (so bucket 0 is exactly the value 0, bucket 1 is 1, bucket 2 is
//! 2–3, bucket 3 is 4–7, ...). Recording is two instructions on the hot
//! path (`leading_zeros` + increment); readout reports nearest-rank
//! percentiles at bucket resolution, clamped to the exact observed max.

use std::fmt;
use std::time::Duration;

/// Number of buckets: one per possible bit length of a `u64`, plus the
/// dedicated zero bucket.
pub const HIST_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram { counts: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Bucket index for a value: its bit length (0 for 0).
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of a bucket's value range.
    pub fn bucket_limit(bucket: usize) -> u64 {
        match bucket {
            0 => 0,
            64.. => u64::MAX,
            k => (1u64 << k) - 1,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts, bucket 0 first.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// Adds every bucket of `other` into `self` (saturating).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile (`p` in `0.0..=1.0`) at bucket
    /// resolution: the upper bound of the bucket holding the rank,
    /// clamped to the exact observed maximum.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count - 1) as f64 * p.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return Self::bucket_limit(k).min(self.max);
            }
        }
        self.max
    }

    /// The standard readout: count, p50/p90/p99, and exact max.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
            max: self.max,
        }
    }

    /// Zeroes the histogram.
    pub fn reset(&mut self) {
        *self = Histogram::new();
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram({:?})", self.summary())
    }
}

/// Percentile readout of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (bucket resolution).
    pub p50: u64,
    /// 90th percentile (bucket resolution).
    pub p90: u64,
    /// 99th percentile (bucket resolution).
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

/// Exact nearest-rank percentile over raw durations (`p` in
/// `0.0..=1.0`). This is the reference the bucketed
/// [`Histogram::percentile`] approximates; `loadgen` uses it for final
/// reports where all samples are retained.
pub fn percentile(latencies: impl Iterator<Item = Duration>, p: f64) -> Duration {
    let mut v: Vec<Duration> = latencies.collect();
    if v.is_empty() {
        return Duration::ZERO;
    }
    v.sort_unstable();
    v[(((v.len() - 1) as f64) * p.clamp(0.0, 1.0)).round() as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_limit(0), 0);
        assert_eq!(Histogram::bucket_limit(3), 7);
        assert_eq!(Histogram::bucket_limit(64), u64::MAX);
    }

    #[test]
    fn summary_of_uniform_samples() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // Nearest-rank at bucket resolution: the true p50 is 500, which
        // lives in bucket 9 (256..=511).
        assert_eq!(s.p50, 511);
        assert_eq!(s.p99, 1000); // bucket limit 1023 clamped to max
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_clamps_to_max_and_handles_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(0.5), 0);
        h.record(5);
        assert_eq!(h.percentile(0.0), 5);
        assert_eq!(h.percentile(1.0), 5);
    }

    #[test]
    fn merge_is_lossless_and_saturating() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0u64, 1, 7, 8, 1 << 40] {
            a.record(v);
            b.record(v * 2);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), a.count() + b.count());
        assert_eq!(m.max(), b.max());

        let mut near = Histogram { counts: [0; HIST_BUCKETS], count: 0, sum: u64::MAX - 1, max: 0 };
        near.record(100);
        assert_eq!(near.sum(), u64::MAX);
    }

    #[test]
    fn exact_percentile_is_nearest_rank() {
        let v = [1u64, 2, 3, 4].map(Duration::from_secs);
        assert_eq!(percentile(v.iter().copied(), 0.0), Duration::from_secs(1));
        assert_eq!(percentile(v.iter().copied(), 1.0), Duration::from_secs(4));
        assert_eq!(percentile(v.iter().copied(), 0.5), Duration::from_secs(3));
        assert_eq!(percentile(std::iter::empty(), 0.5), Duration::ZERO);
    }
}
