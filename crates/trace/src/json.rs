//! A tiny recursive-descent JSON reader.
//!
//! The workspace emits all of its JSON by hand (the build is offline, so
//! there is no serde); this module is the matching *checker* side — just
//! enough of RFC 8259 to validate exported traces and metrics snapshots
//! in tests and smoke jobs. Objects preserve member order so tests can
//! assert fixed field layouts.

use std::fmt;

/// A parsed JSON value. Object members keep their source order.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What was wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { at: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: \uD800-\uDBFF must be
                            // followed by a low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // encoding is already valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("unterminated \\u escape"))?;
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.bytes[digits_start] == b'0' && self.pos > digits_start + 1 {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(JsonValue::Number).map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Number(-1250.0));
        assert_eq!(parse(r#""a\nbA""#).unwrap(), JsonValue::String("a\nbA".into()));
    }

    #[test]
    fn object_preserves_member_order() {
        let v = parse(r#"{"z":1,"a":2,"m":[3,{"k":null}]}"#).unwrap();
        let members = v.as_object().unwrap();
        let keys: Vec<_> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.get("a").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("m").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\":}", "01", "\"abc", "{} x", "{'a':1}", "[1 2]"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse(r#""😀""#).unwrap(), JsonValue::String("😀".into()));
        assert!(parse(r#""\ud83d""#).is_err());
    }
}
